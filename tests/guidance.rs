//! Selection-order regressions for the guidance hot path: on the
//! paper-default scenario the guided validation must pick the same object
//! sequence regardless of execution mode (serial vs. parallel fan-out, §5.4)
//! and scoring mode (exact vs. delta-propagating hypothesis aggregation).
//! A silent reordering here would invalidate every effort-vs-precision
//! comparison between experiment runs.

use crowd_validation::prelude::*;
use crowdval_spammer::SpammerDetector;

/// Runs `steps` guided validations with the uncertainty-driven strategy and
/// returns the selected object sequence.
fn selection_sequence(parallel: bool, mode: ScoringMode, steps: usize) -> Vec<ObjectId> {
    let synth = SyntheticConfig {
        num_objects: 24,
        ..SyntheticConfig::paper_default(4242)
    }
    .generate();
    let answers = synth.dataset.answers().clone();
    let truth = synth.dataset.ground_truth().clone();
    let mut expert = ExpertValidation::empty(answers.num_objects());
    let aggregator = IncrementalEm::default();
    let detector = SpammerDetector::default();
    let mut current = aggregator.conclude(&answers, &expert, None);
    let mut strategy =
        UncertaintyDriven::with_engine(ScoringEngine::with_shortlist(10).with_mode(mode));

    let mut picked = Vec::new();
    for _ in 0..steps {
        let candidates = expert.unvalidated_objects();
        let ctx = StrategyContext {
            answers: &answers,
            expert: &expert,
            current: &current,
            aggregator: &aggregator,
            detector: &detector,
            candidates: &candidates,
            parallel,
            entropy_cache: None,
            guidance_cache: None,
        };
        let Some(object) = strategy.select(&ctx) else {
            break;
        };
        picked.push(object);
        expert.set(object, truth.label(object));
        current = aggregator.conclude_warm(&answers, &expert, &current);
    }
    picked
}

/// Serial/parallel × exact/delta must agree on the full selection sequence.
#[test]
fn serial_parallel_and_delta_select_identical_sequences() {
    let steps = 6;
    let reference = selection_sequence(false, ScoringMode::Exact, steps);
    assert_eq!(
        reference.len(),
        steps,
        "reference run selected fewer objects than requested"
    );
    let parallel_exact = selection_sequence(true, ScoringMode::Exact, steps);
    let serial_delta = selection_sequence(false, ScoringMode::Delta, steps);
    let parallel_delta = selection_sequence(true, ScoringMode::Delta, steps);
    assert_eq!(
        reference, parallel_exact,
        "parallel fan-out changed the exact selection order"
    );
    assert_eq!(
        reference, serial_delta,
        "delta scoring changed the selection order"
    );
    assert_eq!(
        reference, parallel_delta,
        "parallel delta scoring changed the selection order"
    );
}

/// The delta-scoped engine must produce information-gain *rankings* that
/// agree with the exact engine on the paper-default scenario — not just the
/// argmax (a weaker property that could mask systematic score drift).
#[test]
fn delta_and_exact_information_gain_rankings_agree() {
    let synth = SyntheticConfig {
        num_objects: 20,
        ..SyntheticConfig::paper_default(77)
    }
    .generate();
    let answers = synth.dataset.answers().clone();
    let truth = synth.dataset.ground_truth().clone();
    let mut expert = ExpertValidation::empty(answers.num_objects());
    for o in 0..4 {
        expert.set(ObjectId(o), truth.label(ObjectId(o)));
    }
    let aggregator = IncrementalEm::default();
    let detector = SpammerDetector::default();
    let current = aggregator.conclude(&answers, &expert, None);
    let candidates = expert.unvalidated_objects();
    let ctx = ScoringContext {
        answers: &answers,
        expert: &expert,
        current: &current,
        aggregator: &aggregator,
        detector: &detector,
        parallel: false,
        entropy_cache: None,
    };

    let exact_scores = ScoringEngine::exhaustive()
        .with_mode(ScoringMode::Exact)
        .information_gain_scores(&ctx, &candidates);
    let delta_scores = ScoringEngine::exhaustive()
        .with_mode(ScoringMode::Delta)
        .information_gain_scores(&ctx, &candidates);

    let ranking = |scores: &[(ObjectId, f64)]| {
        let mut order: Vec<(ObjectId, f64)> = scores.to_vec();
        order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        order.into_iter().map(|(o, _)| o).collect::<Vec<_>>()
    };
    assert_eq!(
        ranking(&exact_scores),
        ranking(&delta_scores),
        "delta scoring reordered the information-gain ranking"
    );
    for ((o1, s1), (_, s2)) in exact_scores.iter().zip(&delta_scores) {
        assert!(
            (s1 - s2).abs() < 1e-2,
            "IG of {o1} drifted between modes: exact {s1} vs delta {s2}"
        );
    }
}
