//! Triage decisions are identical whether the session scores candidates
//! serially or on the parallel path.
//!
//! Two full triage-enabled validation runs over the same streaming crowd:
//! one with `ProcessConfig::parallel = false` and the blocked-EM thread
//! override pinned to 1, one with `parallel = true` and 3 EM threads. The
//! selection order, the auto-finalize audit trail (which carries the
//! decide-time feature vectors), the counters, the predictor weights and
//! the final posterior must all match bit-for-bit — the parallelism knobs
//! change scheduling, never results (see the determinism contract in
//! `crowdval_aggregation::parblock`, asserted at kernel scale by that
//! crate's `parallel_identity` test; this test asserts the same contract
//! end-to-end through the triage policy).
//!
//! Everything lives in one `#[test]` because `set_em_threads` is a global
//! knob: concurrent tests flipping it would race each other. Integration
//! tests get their own process, so other suites are unaffected.

use crowd_validation::aggregation::set_em_threads;
use crowd_validation::prelude::*;

/// Triage thresholds aggressive enough to fire decisions on a small crowd;
/// mirrors the helper in `tests/properties.rs`.
fn aggressive_triage() -> TriageConfig {
    TriageConfig {
        enabled: true,
        finalize_threshold: 0.7,
        relaxed_threshold: 0.6,
        relax_after_validations: 4,
        confidence_floor: 0.7,
        min_votes: 1,
        min_margin: 0.0,
        contentious_ceiling: 0.55,
        warmup_validations: 1,
        ..TriageConfig::default()
    }
}

#[test]
fn triage_decisions_are_identical_serial_vs_parallel() {
    let scenario = StreamingConfig {
        base: SyntheticConfig {
            num_objects: 24,
            num_workers: 12,
            reliability: 0.8,
            mix: PopulationMix::all_reliable(),
            ..SyntheticConfig::paper_default(0x7a11)
        },
        initial_fraction: 0.3,
        batch_size: 40,
        late_object_fraction: 0.2,
        late_worker_fraction: 0.2,
    }
    .generate();
    let truth = scenario.truth.clone();

    let run = |parallel: bool| {
        let mut session = ValidationSessionBuilder::empty(scenario.num_labels)
            .strategy(Box::new(HybridStrategy::new(11)))
            .config(ProcessConfig {
                parallel,
                triage: aggressive_triage(),
                ..ProcessConfig::default()
            })
            .try_build()
            .unwrap();
        let mut picks = Vec::new();
        let validate = |session: &mut ValidationSession, picks: &mut Vec<ObjectId>| {
            if session.answers().num_objects() == 0 {
                return;
            }
            if let Some(o) = session.select_next() {
                picks.push(o);
                session.integrate(o, truth.label(o)).unwrap();
            }
        };
        session.ingest(&scenario.initial).unwrap();
        validate(&mut session, &mut picks);
        for batch in &scenario.batches {
            session.ingest(batch).unwrap();
            validate(&mut session, &mut picks);
        }
        // Drain the remaining pool so every triage verdict gets exercised.
        while !session.is_finished() {
            let before = picks.len();
            validate(&mut session, &mut picks);
            if picks.len() == before {
                break;
            }
        }
        (picks, session)
    };

    set_em_threads(1);
    let (serial_picks, serial) = run(false);
    set_em_threads(3);
    let (parallel_picks, parallel) = run(true);
    set_em_threads(0); // back to the environment default

    assert_eq!(serial_picks, parallel_picks, "selection order diverged");
    assert_eq!(
        serial.triage_audit(),
        parallel.triage_audit(),
        "audit trail diverged"
    );
    assert_eq!(
        serial.triage_counters(),
        parallel.triage_counters(),
        "counters diverged"
    );
    assert_eq!(
        serial.triage_state(),
        parallel.triage_state(),
        "predictor state diverged"
    );
    assert!(
        serial.triage_counters().auto_finalized > 0 || serial.triage_counters().contentious > 0,
        "the scenario never exercised a triage decision — thresholds too timid"
    );
    // The full snapshots differ only in the embedded `ProcessConfig`
    // (`parallel` is the independent variable here), so compare the result
    // state directly instead.
    assert_eq!(serial.current(), parallel.current(), "posterior diverged");
    assert_eq!(serial.trace(), parallel.trace(), "trace diverged");
    assert_eq!(
        serial.excluded_workers(),
        parallel.excluded_workers(),
        "exclusions diverged"
    );
}
