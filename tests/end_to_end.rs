//! End-to-end integration tests spanning the whole workspace: simulation →
//! aggregation → guidance → validation process → metrics.

use crowd_validation::prelude::*;

fn synthetic(seed: u64) -> SyntheticDataset {
    SyntheticConfig {
        num_objects: 40,
        ..SyntheticConfig::paper_default(seed)
    }
    .generate()
}

fn run_to_budget(
    data: &SyntheticDataset,
    strategy: Box<dyn SelectionStrategy>,
    budget: usize,
) -> ValidationTrace {
    let truth = data.dataset.ground_truth().clone();
    let mut process = ValidationProcess::builder(data.dataset.answers().clone())
        .strategy(strategy)
        .config(ProcessConfig {
            budget: Some(budget),
            ..ProcessConfig::default()
        })
        .ground_truth(truth.clone())
        .build();
    let mut expert = SimulatedExpert::perfect(truth, data.dataset.answers().num_labels());
    let mut provide = |o: ObjectId| expert.validate(o);
    process.run(&mut provide).unwrap();
    process.trace().clone()
}

#[test]
fn guided_validation_monotonically_never_hurts_precision_much() {
    let data = synthetic(1001);
    let trace = run_to_budget(&data, Box::new(HybridStrategy::new(5)), 20);
    let p0 = trace.initial_precision.unwrap();
    let p_final = trace.final_precision().unwrap();
    assert!(
        p_final >= p0 - 0.05,
        "validation degraded precision from {p0:.3} to {p_final:.3}"
    );
    assert_eq!(trace.len(), 20);
}

#[test]
fn validating_everything_yields_perfect_precision() {
    let data = synthetic(1002);
    let trace = run_to_budget(&data, Box::new(EntropyBaseline), 40);
    assert_eq!(trace.final_precision(), Some(1.0));
}

#[test]
fn guided_strategies_beat_random_selection_on_average() {
    // Averaged over a few seeds to keep the comparison stable: at a 30 %
    // effort budget, hybrid guidance should reach at least the precision of
    // random selection.
    //
    // The comparison runs at worker reliability 0.8 (one of the paper's
    // reliability-sweep settings). At the harshest setting (r = 0.65 with
    // 57 % faulty workers, ≈ 52 % per-answer accuracy) the label orientation
    // of the aggregate is statistically unidentifiable at small budgets, and
    // information gain computed under a miscalibrated posterior carries no
    // advantage over unbiased random anchors — no guidance policy can win
    // there consistently. Once the crowd is reliable enough for the posterior
    // to be calibrated, guidance pays off exactly as the paper claims.
    let budget = 12;
    let mut hybrid_sum = 0.0;
    let mut random_sum = 0.0;
    let seeds = [2001, 2002, 2003, 2004, 2005];
    for seed in seeds {
        let data = SyntheticConfig {
            num_objects: 40,
            reliability: 0.8,
            ..SyntheticConfig::paper_default(seed)
        }
        .generate();
        hybrid_sum += run_to_budget(&data, Box::new(HybridStrategy::new(seed)), budget)
            .final_precision()
            .unwrap();
        random_sum += run_to_budget(&data, Box::new(RandomSelection::new(seed)), budget)
            .final_precision()
            .unwrap();
    }
    assert!(
        hybrid_sum >= random_sum - 0.05,
        "hybrid average {:.3} clearly below random average {:.3}",
        hybrid_sum / seeds.len() as f64,
        random_sum / seeds.len() as f64
    );
}

#[test]
fn separate_expert_integration_beats_combined_at_equal_effort() {
    // Fig. 5: treating expert input as ground truth is more effective than
    // adding it as one more crowd answer.
    let data = synthetic(1003);
    let answers = data.dataset.answers();
    let truth = data.dataset.ground_truth();
    let mut expert = ExpertValidation::empty(answers.num_objects());
    for o in 0..12 {
        expert.set(ObjectId(o), truth.label(ObjectId(o)));
    }

    let separate = IncrementalEm::default().conclude(answers, &expert, None);
    let combined = aggregate_combined(answers, &expert, &BatchEm::default());
    let p_sep = truth.precision(&separate.instantiate());
    let p_comb = truth.precision(&combined.instantiate());
    assert!(
        p_sep >= p_comb,
        "separate integration ({p_sep:.3}) should not lose to combined ({p_comb:.3})"
    );
    // Separate integration is exact on the validated objects.
    for o in 0..12 {
        assert_eq!(
            separate.instantiate().label(ObjectId(o)),
            truth.label(ObjectId(o))
        );
    }
}

#[test]
fn spammer_heavy_crowds_are_cleaned_up_by_worker_driven_guidance() {
    let data = SyntheticConfig {
        num_objects: 40,
        num_workers: 20,
        mix: PopulationMix::with_spammer_ratio(0.35),
        ..SyntheticConfig::paper_default(1004)
    }
    .generate();
    let truth = data.dataset.ground_truth().clone();
    let spammers = data.spammer_workers();

    let mut process = ValidationProcess::builder(data.dataset.answers().clone())
        .strategy(Box::new(WorkerDriven))
        .config(ProcessConfig {
            budget: Some(28),
            ..ProcessConfig::default()
        })
        .ground_truth(truth.clone())
        .build();
    let initial_precision = process.precision().unwrap();
    let mut expert = SimulatedExpert::perfect(truth.clone(), 2);
    let mut provide = |o: ObjectId| expert.validate(o);
    process.run(&mut provide).unwrap();

    // Result correctness went up, and by the end most true spammers are
    // detected (even if they were occasionally accompanied by false alarms
    // early on — the paper accepts that trade-off and re-includes cleared
    // workers).
    assert!(
        process.precision().unwrap() >= initial_precision - 0.03,
        "precision regressed: {:.3} -> {:.3}",
        initial_precision,
        process.precision().unwrap()
    );
    let detection = SpammerDetector::default().detect(
        data.dataset.answers(),
        process.expert(),
        process.current().priors(),
    );
    let recall = detection.recall(&spammers);
    assert!(
        recall >= 0.5,
        "only {recall:.2} of the true spammers were detected"
    );
}

#[test]
fn uncertainty_and_precision_are_anticorrelated_over_a_run() {
    // Appendix B: uncertainty is a truthful proxy for (lack of) correctness.
    let data = synthetic(1005);
    let trace = run_to_budget(&data, Box::new(UncertaintyDriven::new()), 40);
    let pairs = trace.precision_uncertainty_pairs();
    let (precisions, uncertainties): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
    let r = crowd_validation::numerics::pearson_correlation(&precisions, &uncertainties)
        .expect("enough points for a correlation");
    assert!(
        r < -0.3,
        "expected a clear negative correlation, got {r:.3}"
    );
}

#[test]
fn replicas_integrate_with_the_validation_process() {
    // Smoke test on the smallest replica (val): a short guided run improves
    // precision and the trace bookkeeping is consistent.
    let data = replica(ReplicaName::Valence);
    let trace = run_to_budget(&data, Box::new(HybridStrategy::new(9)), 10);
    assert_eq!(trace.num_objects, 100);
    assert_eq!(trace.len(), 10);
    assert!(trace.final_precision().unwrap() >= trace.initial_precision.unwrap() - 0.02);
    assert!((trace.effort() - 0.1).abs() < 1e-9);
}

#[test]
fn expert_validation_reaches_perfect_precision_where_more_crowd_answers_cannot() {
    // The qualitative claim behind Fig. 12: with faulty workers in the pool,
    // piling on more crowd answers (WO) plateaus below perfect correctness,
    // whereas spending the budget on expert validation (EV) can reach 1.0.
    use crowdval_sim::augment::augment_with_answers;

    let source = SyntheticConfig {
        num_objects: 40,
        num_workers: 20,
        reliability: 0.65,
        mix: PopulationMix::with_spammer_ratio(0.35),
        answers_per_object: Some(8),
        ..SyntheticConfig::paper_default(1006)
    }
    .generate();
    let truth = source.dataset.ground_truth().clone();
    let cost = CostModel::paper_default(40);

    // WO: buy every answer the worker pool can provide.
    let wo = augment_with_answers(&source, 20, 4);
    let wo_precision = truth.precision(
        &BatchEm::default()
            .conclude(wo.answers(), &ExpertValidation::empty(40), None)
            .instantiate(),
    );

    // EV: keep the initial 8 answers per object and validate everything.
    let mut process = ValidationProcess::builder(source.dataset.answers().clone())
        .strategy(Box::new(EntropyBaseline))
        .config(ProcessConfig {
            goal: ValidationGoal::TargetPrecision(1.0),
            ..ProcessConfig::default()
        })
        .ground_truth(truth.clone())
        .build();
    let mut expert = SimulatedExpert::perfect(truth, 2);
    let mut provide = |o: ObjectId| expert.validate(o);
    process.run(&mut provide).unwrap();

    assert_eq!(process.precision(), Some(1.0));
    assert!(
        wo_precision < 1.0,
        "WO unexpectedly reached perfect precision"
    );
    // The cost model reports a finite, strictly growing per-object cost as
    // validations accumulate.
    let validations = process.trace().len();
    assert!((1..=40).contains(&validations));
    assert!(cost.ev_cost_per_object(8.0, validations) > cost.ev_cost_per_object(8.0, 0));
}
