//! Property-based tests of the core invariants, driven by proptest over
//! randomly generated answer sets and validation patterns.

use crowd_validation::prelude::*;
use proptest::prelude::*;

/// Strategy generating a random but well-formed answer set together with a
/// ground truth: up to `max_objects` objects, `max_workers` workers,
/// 2–4 labels, and a random subset of cells filled.
fn arb_answer_set(
    max_objects: usize,
    max_workers: usize,
) -> impl Strategy<Value = (AnswerSet, GroundTruth)> {
    (
        2usize..=max_objects,
        2usize..=max_workers,
        2usize..=4,
        any::<u64>(),
    )
        .prop_flat_map(|(objects, workers, labels, seed)| {
            // Per-cell: Some(label) with ~70 % probability.
            let cells = proptest::collection::vec(
                proptest::option::weighted(0.7, 0..labels),
                objects * workers,
            );
            let truth = proptest::collection::vec(0..labels, objects);
            (Just((objects, workers, labels, seed)), cells, truth).prop_map(
                |((objects, workers, labels, _seed), cells, truth)| {
                    let mut answers = AnswerSet::new(objects, workers, labels);
                    for o in 0..objects {
                        for w in 0..workers {
                            if let Some(l) = cells[o * workers + w] {
                                answers
                                    .record_answer(ObjectId(o), WorkerId(w), LabelId(l))
                                    .unwrap();
                            }
                        }
                    }
                    let truth = GroundTruth::new(truth.into_iter().map(LabelId).collect());
                    (answers, truth)
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The EM aggregators always produce well-formed probabilistic answer
    /// sets: row-stochastic assignment and confusion matrices, priors that
    /// sum to one, and non-negative uncertainty.
    #[test]
    fn aggregation_always_produces_valid_distributions(
        (answers, _truth) in arb_answer_set(12, 6)
    ) {
        let expert = ExpertValidation::empty(answers.num_objects());
        for aggregator in [
            Box::new(MajorityVoting) as Box<dyn Aggregator>,
            Box::new(BatchEm::default()),
            Box::new(IncrementalEm::default()),
        ] {
            let p = aggregator.conclude(&answers, &expert, None);
            prop_assert!(p.assignment().matrix().is_row_stochastic(1e-6));
            for c in p.confusions() {
                prop_assert!(c.matrix().is_row_stochastic(1e-6));
            }
            let prior_sum: f64 = p.priors().iter().sum();
            prop_assert!((prior_sum - 1.0).abs() < 1e-6);
            prop_assert!(p.uncertainty() >= -1e-9);
            prop_assert!(p.uncertainty()
                <= answers.num_objects() as f64 * (answers.num_labels() as f64).ln() + 1e-9);
        }
    }

    /// Expert validations are always honoured exactly, whatever the crowd
    /// says: the assignment pins validated objects and the deterministic
    /// result reports the validated label.
    #[test]
    fn expert_validations_are_always_honoured(
        (answers, truth) in arb_answer_set(10, 5),
        validate_count in 1usize..5
    ) {
        let mut expert = ExpertValidation::empty(answers.num_objects());
        for o in 0..validate_count.min(answers.num_objects()) {
            expert.set(ObjectId(o), truth.label(ObjectId(o)));
        }
        let p = IncrementalEm::default().conclude(&answers, &expert, None);
        for (o, l) in expert.iter() {
            prop_assert!((p.assignment().prob(o, l) - 1.0).abs() < 1e-9);
            prop_assert_eq!(p.instantiate().label(o), l);
            prop_assert!(p.object_uncertainty(o) < 1e-9);
        }
    }

    /// Incremental warm starts never invalidate the state: re-running i-EM
    /// from a previous probabilistic answer set still yields distributions.
    #[test]
    fn warm_started_iem_is_always_valid(
        (answers, truth) in arb_answer_set(10, 5)
    ) {
        let iem = IncrementalEm::default();
        let mut expert = ExpertValidation::empty(answers.num_objects());
        let mut state = iem.conclude(&answers, &expert, None);
        for o in 0..answers.num_objects().min(4) {
            expert.set(ObjectId(o), truth.label(ObjectId(o)));
            state = iem.conclude(&answers, &expert, Some(&state));
            prop_assert!(state.assignment().matrix().is_row_stochastic(1e-6));
        }
    }

    /// The spammer score is always finite, non-negative and bounded by the
    /// Frobenius norm of the confusion matrix.
    #[test]
    fn spammer_scores_are_bounded(
        (answers, truth) in arb_answer_set(10, 5)
    ) {
        let mut expert = ExpertValidation::empty(answers.num_objects());
        for (o, l) in truth.iter() {
            expert.set(o, l);
        }
        let detector = SpammerDetector::default();
        for w in answers.workers() {
            if let Some(confusion) = detector.validation_confusion(&answers, &expert, w) {
                let score = crowdval_spammer::spammer_score(&confusion);
                prop_assert!(score.is_finite());
                prop_assert!(score >= -1e-12);
                prop_assert!(score <= confusion.matrix().frobenius_norm() + 1e-9);
            }
        }
    }

    /// Partitioning covers every object exactly once and respects the block
    /// size cap, for any answer set and cap.
    #[test]
    fn partitioning_is_a_partition(
        (answers, _truth) in arb_answer_set(14, 6),
        cap in 1usize..8
    ) {
        let partition = partition_answer_matrix(&answers, cap);
        let mut seen = vec![false; answers.num_objects()];
        for block in &partition.blocks {
            prop_assert!(block.objects.len() <= cap);
            for o in &block.objects {
                prop_assert!(!seen[o.index()]);
                seen[o.index()] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// Majority voting never assigns a label nobody voted for (unless the
    /// object has no votes at all).
    #[test]
    fn majority_vote_only_uses_cast_votes(
        (answers, _truth) in arb_answer_set(12, 6)
    ) {
        let result = MajorityVoting::vote(&answers);
        for o in answers.objects() {
            let votes: Vec<_> = answers.matrix().answers_for_object(o).collect();
            if !votes.is_empty() {
                let assigned = result.label(o);
                prop_assert!(votes.iter().any(|&(_, l)| l == assigned));
            }
        }
    }

    /// Precision improvement is always within [-inf, 1] and equals 1 when the
    /// final precision is perfect.
    #[test]
    fn precision_improvement_bounds(p0 in 0.0f64..1.0, p in 0.0f64..=1.0) {
        let r = GroundTruth::precision_improvement(p0, p);
        prop_assert!(r <= 1.0 + 1e-12);
        if (p - 1.0).abs() < 1e-12 {
            prop_assert!((r - 1.0).abs() < 1e-9);
        }
    }

    /// Streaming ingestion is batch-order invariant: feeding the same votes
    /// through a [`ValidationSession`] in arbitrary batch orders and sizes
    /// reaches the same posterior as building the answer set up front and
    /// aggregating once, within the shared EM convergence tolerance.
    ///
    /// Two ground-truth validations (from the first batch) anchor the
    /// Dawid–Skene label orientation on both paths. Two assertions, by
    /// strength:
    ///
    /// 1. **Always**: the streamed final state is a genuine fixed point of
    ///    the *full* corpus — re-running the warm aggregation over all votes
    ///    must not move it beyond the convergence tolerance. This is the
    ///    order-invariant certificate (a session that dropped votes,
    ///    mis-grew the matrix, or ended in a mis-anchored orientation fails
    ///    it).
    /// 2. The posterior matches the batch build, *except* on genuinely
    ///    bifurcating likelihoods: EM fixed points are not unique, and a
    ///    streamed trajectory may legitimately settle in an alternative
    ///    optimum of near-equal likelihood (measured: ≤ ~11 % relative gap,
    ///    versus ≥ ~90 % for the degenerate states the session's doubling
    ///    re-anchor exists to escape). Those near-ties are skipped; a
    ///    materially worse likelihood still fails.
    ///
    /// Runs that exhaust the EM iteration budget are skipped outright (an
    /// oscillating estimation has no fixed point for the paths to agree on).
    #[test]
    fn streamed_ingestion_is_batch_order_invariant(
        seed in any::<u64>(),
        order_seed in any::<u64>(),
        num_objects in 10usize..28,
        num_workers in 8usize..20,
        reliability in 0.75f64..0.95,
        batch_size in 1usize..70
    ) {
        use crowd_validation::aggregation::em::log_likelihood;
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;

        let synth = SyntheticConfig {
            num_objects,
            num_workers,
            reliability,
            mix: PopulationMix::all_reliable(),
            ..SyntheticConfig::paper_default(seed)
        }
        .generate();
        let answers = synth.dataset.answers().clone();
        let truth = synth.dataset.ground_truth().clone();
        let config = EmConfig::paper_default();
        let tolerance = 100.0 * config.tolerance;

        // Shuffle the votes into an arbitrary arrival order.
        let mut votes: Vec<Vote> = answers
            .matrix()
            .iter()
            .map(|(o, w, l)| Vote::new(o, w, l))
            .collect();
        votes.shuffle(&mut StdRng::seed_from_u64(order_seed));

        // Stream them through a session; after the first batch, two
        // validations anchor the orientation.
        let mut session = ValidationSessionBuilder::empty(answers.num_labels())
            .strategy(Box::new(EntropyBaseline))
            .build();
        let mut anchors: Vec<ObjectId> = Vec::new();
        let mut last_iterations = 0usize;
        for (i, batch) in votes.chunks(batch_size).enumerate() {
            let update = session.ingest(batch).unwrap();
            last_iterations = update.em_iterations;
            if i == 0 {
                anchors = batch.iter().map(|v| v.object).take(2).collect();
                anchors.sort();
                anchors.dedup();
                for &o in &anchors {
                    session.integrate(o, truth.label(o)).unwrap();
                }
            }
        }

        prop_assert_eq!(session.answers().num_objects(), answers.num_objects());
        prop_assert_eq!(session.answers().num_workers(), answers.num_workers());
        prop_assert_eq!(
            session.answers().matrix().num_answers(),
            answers.matrix().num_answers()
        );
        prop_assert!(session
            .current()
            .assignment()
            .matrix()
            .is_row_stochastic(1e-6));

        let mut expert = ExpertValidation::empty(answers.num_objects());
        for &o in &anchors {
            expert.set(o, truth.label(o));
        }
        let iem = IncrementalEm::default();

        // (1) Fixed-point re-certification over the full corpus.
        let streamed = session.current();
        let recertified = iem.conclude_warm(&answers, &expert, streamed);
        if recertified.em_iterations() < config.max_iterations {
            let recert_diff = recertified.assignment().max_abs_diff(streamed.assignment());
            prop_assert!(
                recert_diff <= tolerance,
                "streamed state is not a fixed point of the full corpus: moved {} on re-aggregation",
                recert_diff
            );
        }

        // (2) Posterior match against the batch build, modulo bifurcation.
        let reference = iem.conclude(&answers, &expert, None);
        if reference.em_iterations() >= config.max_iterations
            || last_iterations >= config.max_iterations
        {
            return;
        }
        let diff = reference.assignment().max_abs_diff(streamed.assignment());
        if diff > tolerance {
            let ll_ref = log_likelihood(&answers, &expert, reference.confusions(), reference.priors());
            let ll_stream = log_likelihood(&answers, &expert, streamed.confusions(), streamed.priors());
            prop_assert!(
                ll_stream >= ll_ref - 0.3 * ll_ref.abs(),
                "streamed posterior diverged by {} AND its likelihood is materially worse \
                 ({ll_stream} vs {ll_ref}; batch size {})",
                diff, batch_size
            );
        }
    }

    /// Delta-scoped and exact warm-started hypothesis evaluation agree
    /// within the EM tolerance across random *scenarios* — reliability,
    /// spammer mix and answer sparsity all vary. Both paths must also honour
    /// the pinned hypothesis exactly and stay row-stochastic.
    ///
    /// Runs that exhaust the EM iteration budget are skipped: a
    /// non-converged (oscillating) estimation has no fixed point for the two
    /// paths to agree on, in either mode.
    #[test]
    fn delta_and_exact_hypothesis_scoring_agree(
        seed in any::<u64>(),
        num_objects in 12usize..28,
        num_workers in 6usize..14,
        reliability in 0.6f64..0.95,
        spammer_ratio in 0.0f64..0.4,
        answers_per_object in 4usize..10,
        validate_count in 2usize..6
    ) {
        let synth = SyntheticConfig {
            num_objects,
            num_workers,
            reliability,
            mix: PopulationMix::with_spammer_ratio(spammer_ratio),
            answers_per_object: Some(answers_per_object.min(num_workers)),
            ..SyntheticConfig::paper_default(seed)
        }
        .generate();
        let answers = synth.dataset.answers().clone();
        let truth = synth.dataset.ground_truth().clone();
        let mut expert = ExpertValidation::empty(num_objects);
        for o in 0..validate_count {
            expert.set(ObjectId(o), truth.label(ObjectId(o)));
        }
        let iem = IncrementalEm::default();
        let current = iem.conclude(&answers, &expert, None);
        let config = EmConfig::paper_default();
        // Both paths converge the full model map to `config.tolerance`; the
        // residual between them is trajectory noise (they approach the fixed
        // point from different directions), so the bound is a small multiple
        // of the per-iteration tolerance, not exact equality. Measured worst
        // case over 400 scenarios (2.8k comparisons): ~6e-3, so the 1e-2
        // bound has <2x headroom — do not tighten it without re-running
        // crates/aggregation/examples/delta_sweep.rs.
        let tolerance = 100.0 * config.tolerance;

        for object in expert.unvalidated_objects().into_iter().take(4) {
            for l in 0..answers.num_labels() {
                let label = LabelId(l);
                if current.assignment().prob(object, label) <= 1e-6 {
                    continue;
                }
                let hypothesis = HypothesisOverlay::new(&expert, object, label);
                let exact =
                    iem.conclude_hypothesis(&answers, &hypothesis, &current, ScoringMode::Exact);
                let delta =
                    iem.conclude_hypothesis(&answers, &hypothesis, &current, ScoringMode::Delta);
                prop_assert_eq!(exact.assignment().prob(object, label), 1.0);
                prop_assert_eq!(delta.assignment().prob(object, label), 1.0);
                prop_assert!(delta.assignment().matrix().is_row_stochastic(1e-6));
                if exact.em_iterations() >= config.max_iterations
                    || delta.em_iterations() >= config.max_iterations
                {
                    continue;
                }
                let diff = exact.assignment().max_abs_diff(delta.assignment());
                prop_assert!(
                    diff <= tolerance,
                    "hypothesis ({}, {}): delta/exact differ by {}", object, label, diff
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Cross-step guidance caching is invisible in the selection order: a
    /// session with the [`crowdval_core::guidance_cache`] lazy path enabled
    /// picks **bit-identically** the same objects as one that eagerly
    /// re-scores the entire shortlist every step, across random streaming
    /// scenarios — paper-default worker mixes (spammers included), object
    /// and worker churn, arrival batches interleaved with validations, runs
    /// that cross the corpus-doubling cold re-anchor
    /// (`initial_fraction 0.25` guarantees one mid-stream), and a
    /// snapshot/restore of the cached session mid-budget (the cache is
    /// dropped on snapshot, so the restored session's next selection is a
    /// full re-score — which must *still* agree with the warm-cached
    /// uninterrupted run).
    ///
    /// The budget is driven to exhaustion (every object validated), so the
    /// comparison covers the volatile early phase, the settled tail, and
    /// every invalidation guard in between.
    /// `defense` additionally runs the whole comparison with the online
    /// trust ledger enforcing (auto-exclusions mid-stream): the defense
    /// must stay cache-coherent — a tombstone flipped on the cached path
    /// invalidates exactly what the eager path recomputes.
    #[test]
    fn cached_selection_order_is_bit_identical_to_eager(
        seed in any::<u64>(),
        num_objects in 12usize..24,
        num_workers in 8usize..16,
        reliability in 0.6f64..0.9,
        batch_size in 20usize..60,
        snap_numerator in any::<u64>(),
        defense in any::<bool>()
    ) {
        let scenario = StreamingConfig {
            base: SyntheticConfig {
                num_objects,
                num_workers,
                reliability,
                ..SyntheticConfig::paper_default(seed)
            },
            // 0.25 makes the session's doubling re-anchor fire mid-stream,
            // exercising the global-invalidation path.
            initial_fraction: 0.25,
            batch_size,
            late_object_fraction: 0.3,
            late_worker_fraction: 0.25,
        }
        .generate();
        let truth = scenario.truth.clone();

        let build = |cached: bool| {
            ValidationSessionBuilder::empty(scenario.num_labels)
                .strategy(Box::new(UncertaintyDriven::with_engine(
                    ScoringEngine::with_shortlist(8),
                )))
                .config(ProcessConfig {
                    guidance_cache: cached,
                    trust: if defense {
                        TrustConfig::streaming_default()
                    } else {
                        TrustConfig::default()
                    },
                    ..ProcessConfig::default()
                })
                .try_build()
                .unwrap()
        };
        let validate = |session: &mut ValidationSession, picks: &mut Vec<ObjectId>| {
            if let Some(o) = session.select_next() {
                picks.push(o);
                session.integrate(o, truth.label(o)).unwrap();
            }
        };

        let mut eager = build(false);
        let mut eager_picks = Vec::new();
        let mut cached = build(true);
        let mut cached_picks = Vec::new();
        let total_steps = scenario.batches.len() + scenario.config.base.num_objects;
        let snap_at = (snap_numerator % (total_steps as u64 + 1)) as usize;

        // Identical schedules: ingest the initial snapshot, then one
        // validation per arrival batch, then drain until every object is
        // validated. The cached session is snapshotted/restored through
        // JSON after `snap_at` validations.
        eager.ingest(&scenario.initial).unwrap();
        cached.ingest(&scenario.initial).unwrap();
        let mut snapped = false;
        for batch in &scenario.batches {
            eager.ingest(batch).unwrap();
            cached.ingest(batch).unwrap();
            validate(&mut eager, &mut eager_picks);
            validate(&mut cached, &mut cached_picks);
            prop_assert_eq!(&cached_picks, &eager_picks);
            if !snapped && cached_picks.len() >= snap_at {
                snapped = true;
                let json = serde_json::to_string(&cached.snapshot().unwrap()).unwrap();
                let snapshot: crowd_validation::core::SessionSnapshot =
                    serde_json::from_str(&json).unwrap();
                cached = ValidationSession::restore(snapshot).unwrap();
            }
        }
        while eager_picks.len() < eager.answers().num_objects() {
            let before = eager_picks.len();
            validate(&mut eager, &mut eager_picks);
            validate(&mut cached, &mut cached_picks);
            prop_assert_eq!(&cached_picks, &eager_picks);
            if eager_picks.len() == before {
                break;
            }
        }

        prop_assert_eq!(&cached_picks, &eager_picks);
        // The two paths performed identical operations, so the posteriors
        // must be identical too — any divergence would mean the cache
        // changed more than evaluation order.
        prop_assert_eq!(cached.current(), eager.current());
        prop_assert_eq!(cached.trace().len(), eager.trace().len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Snapshot/restore is transparent: interrupt a streaming validation
    /// session at a random point of a PR-3 arrival schedule (object and
    /// worker churn included), serialize the snapshot through JSON, restore,
    /// and continue — the final posterior, the trace and the selection order
    /// must be **bit-identical** to the uninterrupted session. The hybrid
    /// strategy's roulette RNG makes this sensitive to any lost state: a
    /// single skipped or replayed draw changes the selection sequence.
    #[test]
    fn snapshot_restore_is_transparent_mid_stream(
        seed in any::<u64>(),
        snap_numerator in any::<u64>(),
        strategy_seed in any::<u64>()
    ) {
        let scenario = StreamingConfig {
            base: SyntheticConfig {
                num_objects: 14,
                num_workers: 9,
                reliability: 0.85,
                mix: PopulationMix::all_reliable(),
                ..SyntheticConfig::paper_default(seed)
            },
            initial_fraction: 0.3,
            batch_size: 30,
            late_object_fraction: 0.3,
            late_worker_fraction: 0.25,
        }
        .generate();
        let truth = scenario.truth.clone();

        let build = || {
            ValidationSessionBuilder::empty(scenario.num_labels)
                .strategy(Box::new(HybridStrategy::new(strategy_seed)))
                .try_build()
                .unwrap()
        };
        // One validation between arrival batches, once votes exist.
        let validate = |session: &mut ValidationSession, picks: &mut Vec<ObjectId>| {
            if session.answers().num_objects() == 0 {
                return;
            }
            if let Some(o) = session.select_next() {
                picks.push(o);
                session.integrate(o, truth.label(o)).unwrap();
            }
        };

        // Uninterrupted reference.
        let mut reference = build();
        let mut ref_picks = Vec::new();
        reference.ingest(&scenario.initial).unwrap();
        validate(&mut reference, &mut ref_picks);
        for batch in &scenario.batches {
            reference.ingest(batch).unwrap();
            validate(&mut reference, &mut ref_picks);
        }

        // Interrupted run: snapshot after a random batch, restore from JSON.
        let snap_after = (snap_numerator % (scenario.batches.len() as u64 + 1)) as usize;
        let mut live = build();
        let mut picks = Vec::new();
        live.ingest(&scenario.initial).unwrap();
        validate(&mut live, &mut picks);
        for batch in &scenario.batches[..snap_after] {
            live.ingest(batch).unwrap();
            validate(&mut live, &mut picks);
        }
        let snapshot = live.snapshot().unwrap();
        drop(live);
        let json = serde_json::to_string(&snapshot).unwrap();
        let snapshot: crowd_validation::core::SessionSnapshot =
            serde_json::from_str(&json).unwrap();
        let mut restored = ValidationSession::restore(snapshot).unwrap();
        for batch in &scenario.batches[snap_after..] {
            restored.ingest(batch).unwrap();
            validate(&mut restored, &mut picks);
        }

        prop_assert_eq!(picks, ref_picks);
        prop_assert_eq!(restored.current(), reference.current());
        prop_assert_eq!(restored.trace(), reference.trace());
        prop_assert_eq!(restored.votes_ingested(), reference.votes_ingested());
        prop_assert_eq!(
            restored.excluded_workers(),
            reference.excluded_workers()
        );
        // And the restored session still checkpoints cleanly.
        prop_assert_eq!(
            restored.snapshot().unwrap(),
            reference.snapshot().unwrap()
        );
    }

    /// Delta checkpoints replay to the live session bit-for-bit: anchor a
    /// full snapshot at a random point of a streaming schedule, keep going
    /// (arrival batches, roulette-driven validations, a manual tombstone
    /// flip), then take a [`SessionDelta`] and replay it on the anchor —
    /// posterior, trace, exclusions and the next full snapshot must all be
    /// **bit-identical** to the uninterrupted session, even though the delta
    /// carries only the event log, never the corpus.
    #[test]
    fn delta_snapshot_replays_to_the_live_session(
        seed in any::<u64>(),
        anchor_numerator in any::<u64>(),
        strategy_seed in any::<u64>(),
        flip_numerator in any::<u64>()
    ) {
        let scenario = StreamingConfig {
            base: SyntheticConfig {
                num_objects: 14,
                num_workers: 9,
                reliability: 0.85,
                mix: PopulationMix::all_reliable(),
                ..SyntheticConfig::paper_default(seed)
            },
            initial_fraction: 0.3,
            batch_size: 30,
            late_object_fraction: 0.3,
            late_worker_fraction: 0.25,
        }
        .generate();
        let truth = scenario.truth.clone();

        let mut live = ValidationSessionBuilder::empty(scenario.num_labels)
            .strategy(Box::new(HybridStrategy::new(strategy_seed)))
            .try_build()
            .unwrap();
        live.enable_delta_log();
        let validate = |session: &mut ValidationSession| {
            if session.answers().num_objects() == 0 {
                return;
            }
            if let Some(o) = session.select_next() {
                session.integrate(o, truth.label(o)).unwrap();
            }
        };

        live.ingest(&scenario.initial).unwrap();
        validate(&mut live);
        let anchor_after = (anchor_numerator % (scenario.batches.len() as u64 + 1)) as usize;
        for batch in &scenario.batches[..anchor_after] {
            live.ingest(batch).unwrap();
            validate(&mut live);
        }
        // The full snapshot is the anchor; taking it re-anchors the log.
        let anchor = live.snapshot().unwrap();

        // Keep the live session going past the anchor.
        for batch in &scenario.batches[anchor_after..] {
            live.ingest(batch).unwrap();
            validate(&mut live);
        }
        let victim = WorkerId(
            (flip_numerator % live.answers().num_workers() as u64) as usize,
        );
        live.set_worker_excluded(victim, true).unwrap();

        // Deltas are plain serde values, like full snapshots.
        let delta = live.delta_snapshot().unwrap();
        let json = serde_json::to_string(&delta).unwrap();
        let delta: crowd_validation::core::SessionDelta =
            serde_json::from_str(&json).unwrap();
        let replayed = ValidationSession::restore_with_delta(anchor, delta).unwrap();

        prop_assert_eq!(replayed.current(), live.current());
        prop_assert_eq!(replayed.trace(), live.trace());
        prop_assert_eq!(replayed.votes_ingested(), live.votes_ingested());
        prop_assert_eq!(replayed.excluded_workers(), live.excluded_workers());
        prop_assert_eq!(replayed.snapshot().unwrap(), live.snapshot().unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tombstoning purges a worker completely: stream a scenario to the
    /// end, exclude one random worker via
    /// [`ValidationSession::set_worker_excluded`] (which re-anchors the
    /// aggregation cold over the masked answers), and the posterior must
    /// match a fresh session that ingested the same stream with that
    /// worker's votes filtered out — the mask plus cold re-anchor leaves
    /// no trace of the excluded worker's votes in the EM state.
    #[test]
    fn excluding_a_worker_equals_never_having_seen_them(
        seed in any::<u64>(),
        num_objects in 10usize..20,
        num_workers in 6usize..12,
        reliability in 0.6f64..0.9,
        worker_numerator in any::<u64>()
    ) {
        let scenario = StreamingConfig {
            base: SyntheticConfig {
                num_objects,
                num_workers,
                reliability,
                ..SyntheticConfig::paper_default(seed)
            },
            initial_fraction: 0.3,
            batch_size: 30,
            late_object_fraction: 0.3,
            late_worker_fraction: 0.25,
        }
        .generate();

        // Streamed session: warm incremental aggregation throughout, then
        // one worker tombstoned at the end.
        let mut streamed = ValidationSessionBuilder::empty(scenario.num_labels)
            .try_build()
            .unwrap();
        streamed.ingest(&scenario.initial).unwrap();
        for batch in &scenario.batches {
            streamed.ingest(batch).unwrap();
        }
        let victim = WorkerId(
            (worker_numerator % streamed.answers().num_workers() as u64) as usize,
        );
        prop_assert!(streamed.set_worker_excluded(victim, true).unwrap());
        prop_assert_eq!(streamed.excluded_workers(), vec![victim]);

        // Fresh session: the victim's votes never existed.
        let filtered: Vec<Vote> = scenario
            .all_votes()
            .into_iter()
            .filter(|v| v.worker != victim)
            .collect();
        if filtered.len() < 2 {
            return;
        }
        let mut fresh = ValidationSessionBuilder::empty(scenario.num_labels)
            .try_build()
            .unwrap();
        fresh.ingest(&filtered).unwrap();

        let a = streamed.current().assignment();
        let b = fresh.current().assignment();
        for o in 0..a.num_objects().min(b.num_objects()) {
            for l in 0..scenario.num_labels {
                let (object, label) = (ObjectId(o), LabelId(l));
                prop_assert!(
                    (a.prob(object, label) - b.prob(object, label)).abs() <= 1e-9,
                    "posterior diverged at object {o} label {l}: {} vs {}",
                    a.prob(object, label),
                    b.prob(object, label)
                );
            }
        }
    }

    /// The compact CSR mirrors are invisible to the estimation: aggregating
    /// an answer set with synced flat views yields **bit-identical**
    /// posteriors, confusions and priors to the same answer set with the
    /// mirrors disabled (pure paged-chain iteration), across random
    /// streaming scenarios — object/worker churn, a mid-stream corpus
    /// doubling re-anchor (`initial_fraction 0.25`), and an optional
    /// worker-exclusion flip (the tombstone mask is orthogonal to the
    /// mirrors and must filter identically on both paths).
    #[test]
    fn csr_views_leave_posteriors_bit_identical(
        seed in any::<u64>(),
        num_objects in 10usize..20,
        num_workers in 6usize..12,
        reliability in 0.6f64..0.9,
        worker_numerator in any::<u64>(),
        flip in any::<bool>()
    ) {
        let scenario = StreamingConfig {
            base: SyntheticConfig {
                num_objects,
                num_workers,
                reliability,
                ..SyntheticConfig::paper_default(seed)
            },
            initial_fraction: 0.25,
            batch_size: 30,
            late_object_fraction: 0.3,
            late_worker_fraction: 0.25,
        }
        .generate();
        let mut session = ValidationSessionBuilder::empty(scenario.num_labels)
            .try_build()
            .unwrap();
        session.ingest(&scenario.initial).unwrap();
        for batch in &scenario.batches {
            session.ingest(batch).unwrap();
        }
        if flip && session.answers().num_workers() > 0 {
            let victim = WorkerId(
                (worker_numerator % session.answers().num_workers() as u64) as usize,
            );
            session.set_worker_excluded(victim, true).unwrap();
        }

        let mut csr = session.answers().clone();
        csr.sync_compact_views();
        let mut paged = session.answers().clone();
        paged.set_compact_enabled(false);

        let expert = ExpertValidation::empty(csr.num_objects());
        let iem = IncrementalEm::default();
        let cold_csr = iem.conclude(&csr, &expert, None);
        let cold_paged = iem.conclude(&paged, &expert, None);
        prop_assert_eq!(&cold_csr, &cold_paged);
        let warm_csr = iem.conclude_warm(&csr, &expert, &cold_csr);
        let warm_paged = iem.conclude_warm(&paged, &expert, &cold_paged);
        prop_assert_eq!(warm_csr, warm_paged);
    }

    /// Exclusion and reinstatement survive snapshot/restore bit-identically:
    /// a session that tombstones a worker mid-stream and later reinstates
    /// them, interrupted by a JSON snapshot round trip at a random point,
    /// must finish with the same picks, posterior, trace, exclusion mask
    /// and checkpoint bytes as the uninterrupted run — the trust ledger is
    /// session state like any other, and both defense flips re-anchor
    /// deterministically after a restore.
    #[test]
    fn defense_flips_round_trip_through_snapshots(
        seed in any::<u64>(),
        snap_numerator in any::<u64>(),
        strategy_seed in any::<u64>(),
        worker_numerator in any::<u64>()
    ) {
        let scenario = StreamingConfig {
            base: SyntheticConfig {
                num_objects: 14,
                num_workers: 9,
                reliability: 0.85,
                mix: PopulationMix::all_reliable(),
                ..SyntheticConfig::paper_default(seed)
            },
            initial_fraction: 0.3,
            batch_size: 30,
            late_object_fraction: 0.3,
            late_worker_fraction: 0.25,
        }
        .generate();
        let truth = scenario.truth.clone();
        let batches = scenario.batches.len();
        if batches < 2 {
            return;
        }
        let flip_on = 0;
        let flip_off = batches / 2;

        let build = || {
            ValidationSessionBuilder::empty(scenario.num_labels)
                .strategy(Box::new(HybridStrategy::new(strategy_seed)))
                .config(ProcessConfig {
                    trust: TrustConfig::streaming_default(),
                    ..ProcessConfig::default()
                })
                .try_build()
                .unwrap()
        };
        let validate = |session: &mut ValidationSession, picks: &mut Vec<ObjectId>| {
            if session.answers().num_objects() == 0 {
                return;
            }
            if let Some(o) = session.select_next() {
                picks.push(o);
                session.integrate(o, truth.label(o)).unwrap();
            }
        };
        // The manual override schedule, identical in both runs: tombstone
        // a worker right after the first batch, exonerate them halfway
        // through. (The streaming defense may flip other workers on its
        // own — deterministically, so the runs still agree.)
        let flip = |session: &mut ValidationSession, batch: usize| {
            let num_workers = session.answers().num_workers();
            if num_workers == 0 {
                return;
            }
            let victim = WorkerId((worker_numerator % num_workers as u64) as usize);
            if batch == flip_on {
                session.set_worker_excluded(victim, true).unwrap();
            } else if batch == flip_off {
                session.set_worker_excluded(victim, false).unwrap();
            }
        };

        // Uninterrupted reference.
        let mut reference = build();
        let mut ref_picks = Vec::new();
        reference.ingest(&scenario.initial).unwrap();
        for (i, batch) in scenario.batches.iter().enumerate() {
            reference.ingest(batch).unwrap();
            flip(&mut reference, i);
            validate(&mut reference, &mut ref_picks);
        }

        // Interrupted run: snapshot after a random batch, restore from
        // JSON, keep flipping and validating on the same schedule.
        let snap_after = (snap_numerator % (batches as u64 + 1)) as usize;
        let mut live = build();
        let mut picks = Vec::new();
        live.ingest(&scenario.initial).unwrap();
        for (i, batch) in scenario.batches[..snap_after].iter().enumerate() {
            live.ingest(batch).unwrap();
            flip(&mut live, i);
            validate(&mut live, &mut picks);
        }
        let json = serde_json::to_string(&live.snapshot().unwrap()).unwrap();
        drop(live);
        let snapshot: crowd_validation::core::SessionSnapshot =
            serde_json::from_str(&json).unwrap();
        let mut restored = ValidationSession::restore(snapshot).unwrap();
        for (i, batch) in scenario.batches[snap_after..].iter().enumerate() {
            restored.ingest(batch).unwrap();
            flip(&mut restored, snap_after + i);
            validate(&mut restored, &mut picks);
        }

        prop_assert_eq!(picks, ref_picks);
        prop_assert_eq!(restored.current(), reference.current());
        prop_assert_eq!(restored.trace(), reference.trace());
        prop_assert_eq!(restored.excluded_workers(), reference.excluded_workers());
        prop_assert_eq!(
            restored.snapshot().unwrap(),
            reference.snapshot().unwrap()
        );
    }
}

/// Triage thresholds aggressive enough to fire auto-finalizations and
/// contentious holds on property-scale crowds (a dozen objects, a handful
/// of anchors). Production uses [`TriageConfig::calibrated`]; these tests
/// are about decision *replayability*, not about the calibration itself.
fn aggressive_triage() -> TriageConfig {
    TriageConfig {
        enabled: true,
        finalize_threshold: 0.7,
        relaxed_threshold: 0.6,
        relax_after_validations: 4,
        confidence_floor: 0.7,
        min_votes: 1,
        min_margin: 0.0,
        contentious_ceiling: 0.55,
        warmup_validations: 1,
        ..TriageConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Triage decisions are bit-identical across snapshot/restore: interrupt
    /// a triage-enabled streaming session at a random batch boundary,
    /// serialize the full snapshot through JSON, restore, and continue — the
    /// selection order, the auto-finalize audit trail, the counters and the
    /// predictor weights must all equal the uninterrupted session's exactly.
    /// The audit trail carries the decide-time feature vectors, so this
    /// asserts that every *input* to every decision replayed identically,
    /// not just the verdicts.
    #[test]
    fn triage_decisions_survive_snapshot_restore(
        seed in any::<u64>(),
        snap_numerator in any::<u64>(),
        strategy_seed in any::<u64>()
    ) {
        let scenario = StreamingConfig {
            base: SyntheticConfig {
                num_objects: 14,
                num_workers: 9,
                reliability: 0.85,
                mix: PopulationMix::all_reliable(),
                ..SyntheticConfig::paper_default(seed)
            },
            initial_fraction: 0.3,
            batch_size: 30,
            late_object_fraction: 0.3,
            late_worker_fraction: 0.25,
        }
        .generate();
        let truth = scenario.truth.clone();

        let build = || {
            ValidationSessionBuilder::empty(scenario.num_labels)
                .strategy(Box::new(HybridStrategy::new(strategy_seed)))
                .config(ProcessConfig {
                    triage: aggressive_triage(),
                    ..ProcessConfig::default()
                })
                .try_build()
                .unwrap()
        };
        let validate = |session: &mut ValidationSession, picks: &mut Vec<ObjectId>| {
            if session.answers().num_objects() == 0 {
                return;
            }
            if let Some(o) = session.select_next() {
                picks.push(o);
                session.integrate(o, truth.label(o)).unwrap();
            }
        };

        // Uninterrupted reference.
        let mut reference = build();
        let mut ref_picks = Vec::new();
        reference.ingest(&scenario.initial).unwrap();
        validate(&mut reference, &mut ref_picks);
        for batch in &scenario.batches {
            reference.ingest(batch).unwrap();
            validate(&mut reference, &mut ref_picks);
        }

        // Interrupted run: snapshot after a random batch, restore from JSON.
        let snap_after = (snap_numerator % (scenario.batches.len() as u64 + 1)) as usize;
        let mut live = build();
        let mut picks = Vec::new();
        live.ingest(&scenario.initial).unwrap();
        validate(&mut live, &mut picks);
        for batch in &scenario.batches[..snap_after] {
            live.ingest(batch).unwrap();
            validate(&mut live, &mut picks);
        }
        let json = serde_json::to_string(&live.snapshot().unwrap()).unwrap();
        drop(live);
        let snapshot: crowd_validation::core::SessionSnapshot =
            serde_json::from_str(&json).unwrap();
        let mut restored = ValidationSession::restore(snapshot).unwrap();
        for batch in &scenario.batches[snap_after..] {
            restored.ingest(batch).unwrap();
            validate(&mut restored, &mut picks);
        }

        prop_assert_eq!(picks, ref_picks);
        prop_assert_eq!(restored.triage_state(), reference.triage_state());
        prop_assert_eq!(restored.triage_audit(), reference.triage_audit());
        prop_assert_eq!(restored.triage_counters(), reference.triage_counters());
        prop_assert_eq!(
            restored.snapshot().unwrap(),
            reference.snapshot().unwrap()
        );
    }

    /// Triage decisions are bit-identical through the WAL/delta-replay path:
    /// anchor a full snapshot mid-schedule on a triage-enabled session with
    /// the delta log on, keep validating, then replay the
    /// [`crowd_validation::core::SessionDelta`] (serialized through JSON) on
    /// the anchor. The replayed session re-runs the triage passes from the
    /// event log — audit trail, counters and predictor weights must come out
    /// exactly as in the live session.
    #[test]
    fn triage_decisions_survive_delta_replay(
        seed in any::<u64>(),
        anchor_numerator in any::<u64>(),
        strategy_seed in any::<u64>()
    ) {
        let scenario = StreamingConfig {
            base: SyntheticConfig {
                num_objects: 14,
                num_workers: 9,
                reliability: 0.85,
                mix: PopulationMix::all_reliable(),
                ..SyntheticConfig::paper_default(seed)
            },
            initial_fraction: 0.3,
            batch_size: 30,
            late_object_fraction: 0.3,
            late_worker_fraction: 0.25,
        }
        .generate();
        let truth = scenario.truth.clone();

        let mut live = ValidationSessionBuilder::empty(scenario.num_labels)
            .strategy(Box::new(HybridStrategy::new(strategy_seed)))
            .config(ProcessConfig {
                triage: aggressive_triage(),
                ..ProcessConfig::default()
            })
            .try_build()
            .unwrap();
        live.enable_delta_log();
        let validate = |session: &mut ValidationSession| {
            if session.answers().num_objects() == 0 {
                return;
            }
            if let Some(o) = session.select_next() {
                session.integrate(o, truth.label(o)).unwrap();
            }
        };

        live.ingest(&scenario.initial).unwrap();
        validate(&mut live);
        let anchor_after = (anchor_numerator % (scenario.batches.len() as u64 + 1)) as usize;
        for batch in &scenario.batches[..anchor_after] {
            live.ingest(batch).unwrap();
            validate(&mut live);
        }
        let anchor = live.snapshot().unwrap();

        for batch in &scenario.batches[anchor_after..] {
            live.ingest(batch).unwrap();
            validate(&mut live);
        }

        let delta = live.delta_snapshot().unwrap();
        let json = serde_json::to_string(&delta).unwrap();
        let delta: crowd_validation::core::SessionDelta =
            serde_json::from_str(&json).unwrap();
        let replayed = ValidationSession::restore_with_delta(anchor, delta).unwrap();

        prop_assert_eq!(replayed.triage_state(), live.triage_state());
        prop_assert_eq!(replayed.triage_audit(), live.triage_audit());
        prop_assert_eq!(replayed.triage_counters(), live.triage_counters());
        prop_assert_eq!(replayed.trace(), live.trace());
        prop_assert_eq!(replayed.snapshot().unwrap(), live.snapshot().unwrap());
    }

    /// The triage feature extraction is deterministic, finite and — for the
    /// multiset features — invariant under worker-arrival reordering of the
    /// same vote multiset ingested as one batch. `votes` and `margin` are
    /// pure functions of the visible vote multiset, so they must match
    /// bit-for-bit across orders. `trust` reads the streaming ledger (whose
    /// copy evidence is arrival-order-dependent by design) and `entropy` /
    /// `churn` read the EM posterior, whose floating-point summation follows
    /// arrival order — for those three, this asserts exact determinism
    /// (same order → same bits) plus finiteness and range, not cross-order
    /// bit-equality.
    #[test]
    fn triage_features_are_deterministic_finite_and_order_invariant(
        seed in any::<u64>(),
        order_seed in any::<u64>(),
        num_objects in 8usize..20,
        num_workers in 6usize..14,
        reliability in 0.7f64..0.95
    ) {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;

        let synth = SyntheticConfig {
            num_objects,
            num_workers,
            reliability,
            mix: PopulationMix::all_reliable(),
            ..SyntheticConfig::paper_default(seed)
        }
        .generate();
        let answers = synth.dataset.answers().clone();
        let mut votes: Vec<Vote> = answers
            .matrix()
            .iter()
            .map(|(o, w, l)| Vote::new(o, w, l))
            .collect();

        let features_of = |votes: &[Vote]| -> Vec<TriageFeatures> {
            let mut session = ValidationSessionBuilder::empty(answers.num_labels())
                .strategy(Box::new(EntropyBaseline))
                .build();
            session.ingest(votes).unwrap();
            (0..answers.num_objects())
                .map(|o| session.triage_features(ObjectId(o)).unwrap())
                .collect()
        };

        let bits = |f: &TriageFeatures| {
            (
                f.entropy.to_bits(),
                f.votes,
                f.margin.to_bits(),
                f.trust.to_bits(),
                f.churn.to_bits(),
            )
        };

        let original = features_of(&votes);
        // Determinism: the identical arrival order reproduces every feature
        // bit-for-bit.
        let repeat = features_of(&votes);
        for (a, b) in original.iter().zip(&repeat) {
            prop_assert_eq!(bits(a), bits(b));
        }

        votes.shuffle(&mut StdRng::seed_from_u64(order_seed));
        let reordered = features_of(&votes);
        for (o, (a, b)) in original.iter().zip(&reordered).enumerate() {
            // Multiset features: bit-identical across arrival orders.
            prop_assert_eq!(a.votes, b.votes, "votes diverged on object {}", o);
            prop_assert_eq!(
                a.margin.to_bits(), b.margin.to_bits(),
                "margin diverged on object {}", o
            );
            // Posterior-path features: finite and in range in both orders.
            for f in [a, b] {
                prop_assert!(f.is_finite());
                prop_assert!((0.0..=1.0).contains(&f.entropy));
                prop_assert!((0.0..=1.0).contains(&f.margin));
                prop_assert!((0.0..=1.0).contains(&f.trust));
                prop_assert!((0.0..=1.0).contains(&f.churn));
            }
            // And the normalized vector the predictor consumes is bounded.
            for x in a.vector() {
                prop_assert!((0.0..=1.0).contains(&x));
            }
        }
    }
}
