//! Offline stand-in for [`rayon`](https://docs.rs/rayon).
//!
//! The build environment for this workspace has no access to crates.io, so
//! this shim provides the (small) subset of rayon's parallel-iterator API the
//! workspace actually uses — `slice.par_iter().map(f).collect()` — with the
//! same semantics: the closure runs on multiple OS threads and the results
//! come back in input order.
//!
//! Work is distributed dynamically: worker threads pull the next unclaimed
//! index from a shared atomic counter, so an expensive item (a slow EM run)
//! does not stall the items behind it the way static chunking would. This
//! matters for the guidance hot path, where per-candidate aggregation cost
//! varies with how contested the candidate is.
//!
//! Swapping the real rayon back in is a one-line change in the workspace
//! manifest; no source file mentions this shim by name.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelIterator};
}

pub mod iter {
    use super::parallel_map_ordered;

    /// Conversion of `&self` into a parallel iterator (`.par_iter()`).
    pub trait IntoParallelRefIterator<'data> {
        /// The parallel-iterator type produced.
        type Iter;

        /// Returns a parallel iterator over borrowed items.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = ParIter<'data, T>;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = ParIter<'data, T>;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// Marker trait mirroring rayon's `ParallelIterator`; the adapters below
    /// implement it so `use rayon::prelude::*` keeps working.
    pub trait ParallelIterator {}

    /// Parallel iterator over `&[T]`.
    pub struct ParIter<'data, T: Sync> {
        pub(crate) items: &'data [T],
    }

    impl<T: Sync> ParallelIterator for ParIter<'_, T> {}

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Maps every item through `f` on the worker threads.
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap {
                items: self.items,
                f,
            }
        }

        /// Collects the borrowed items in order.
        pub fn collect<C: FromIterator<&'data T>>(self) -> C {
            self.items.iter().collect()
        }
    }

    /// The result of [`ParIter::map`].
    pub struct ParMap<'data, T: Sync, F> {
        items: &'data [T],
        f: F,
    }

    impl<T: Sync, F> ParallelIterator for ParMap<'_, T, F> {}

    impl<'data, T: Sync, F> ParMap<'data, T, F> {
        /// Runs the map on all available threads and collects the results in
        /// input order.
        pub fn collect<R, C>(self) -> C
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
            C: FromIterator<R>,
        {
            parallel_map_ordered(self.items, &self.f)
                .into_iter()
                .collect()
        }
    }
}

/// Number of worker threads used for parallel maps. Honors the real rayon's
/// `RAYON_NUM_THREADS` environment variable, falling back to the hardware
/// parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(forced) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = forced.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs every task on a fixed scoped thread pool of `threads` workers and
/// waits for all of them; `f` consumes each task by value. Tasks are claimed
/// dynamically from a shared queue so uneven per-task cost still balances.
///
/// This is the primitive behind the blocked (cache-sized row chunk) parallel
/// EM kernels: a task typically carries an exclusive `&mut` sub-slice of a
/// shared buffer, which is `Send`, so disjoint blocks are processed
/// concurrently with no `unsafe` and no locking beyond queue claims. With
/// `threads <= 1` (or one task) everything runs inline on the caller's
/// thread — bit-identical results are up to the caller keeping each task's
/// work independent, which row-disjoint blocks are by construction.
pub fn run_scoped_tasks<T, F>(tasks: Vec<T>, threads: usize, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let threads = threads.min(tasks.len()).max(1);
    if threads <= 1 {
        for task in tasks {
            f(task);
        }
        return;
    }
    let queue = std::sync::Mutex::new(tasks.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().expect("task queue poisoned").next();
                match next {
                    Some(task) => f(task),
                    None => break,
                }
            });
        }
    });
}

/// Maps `f` over `items` on all available threads, returning the results in
/// input order. Indices are claimed dynamically from an atomic counter so
/// uneven per-item cost still balances across threads.
fn parallel_map_ordered<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            indexed.extend(handle.join().expect("rayon-shim worker panicked"));
        }
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        let out: Vec<u64> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u64];
        let out: Vec<u64> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn scoped_tasks_cover_disjoint_mut_blocks() {
        let mut data = vec![0u64; 1000];
        let tasks: Vec<(usize, &mut [u64])> = data.chunks_mut(64).enumerate().collect();
        crate::run_scoped_tasks(tasks, 4, |(chunk, block)| {
            for (i, v) in block.iter_mut().enumerate() {
                *v = (chunk * 64 + i) as u64;
            }
        });
        assert_eq!(data, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn scoped_tasks_run_inline_on_one_thread() {
        let mut hits = [false; 10];
        let tasks: Vec<&mut bool> = hits.iter_mut().collect();
        crate::run_scoped_tasks(tasks, 1, |hit| *hit = true);
        assert!(hits.iter().all(|&h| h));
    }

    #[test]
    fn par_map_actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u64> = (0..256).collect();
        let _: Vec<u64> = items
            .par_iter()
            .map(|&x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                // A little busywork so the scheduler actually spreads items.
                (0..1000u64).fold(x, |a, b| a.wrapping_add(b))
            })
            .collect();
        if crate::current_num_threads() > 1 {
            assert!(
                seen.lock().unwrap().len() > 1,
                "expected more than one worker thread"
            );
        }
    }
}
