//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json).
//!
//! Renders the serde shim's [`serde::Value`] data model to JSON and parses
//! JSON text back into it. Covers the subset the workspace needs:
//! `to_string`, `to_string_pretty` and `from_str`.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by parsing or by the typed conversion after parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error(err.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0).expect("writing to a String cannot fail");
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0).expect("writing to a String cannot fail");
    Ok(out)
}

/// Serializes `value` as compact JSON into an [`std::io::Write`] sink —
/// the real crate's buffer-reusing entry point. The JSON streams straight
/// into the sink (no intermediate `String`), so callers reusing a cleared
/// per-line buffer genuinely avoid per-value allocations.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    writer: W,
    value: &T,
) -> Result<(), Error> {
    struct IoSink<W: std::io::Write> {
        writer: W,
        error: Option<std::io::Error>,
    }
    impl<W: std::io::Write> fmt::Write for IoSink<W> {
        fn write_str(&mut self, s: &str) -> fmt::Result {
            self.writer.write_all(s.as_bytes()).map_err(|e| {
                self.error = Some(e);
                fmt::Error
            })
        }
    }
    let mut sink = IoSink {
        writer,
        error: None,
    };
    write_value(&mut sink, &value.to_value(), None, 0).map_err(|_| match sink.error {
        Some(e) => Error::new(e),
        None => Error::new("formatting failed"),
    })
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value<W: fmt::Write>(
    out: &mut W,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> fmt::Result {
    match value {
        Value::Null => out.write_str("null"),
        Value::Bool(true) => out.write_str("true"),
        Value::Bool(false) => out.write_str("false"),
        Value::Int(i) => write!(out, "{i}"),
        Value::UInt(u) => write!(out, "{u}"),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip formatting; integral floats keep
                // a `.0` so they read back as floats semantically (either way
                // our reader coerces).
                write!(out, "{f}")
            } else {
                out.write_str("null")
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                return out.write_str("[]");
            }
            out.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                newline_indent(out, indent, depth + 1)?;
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth)?;
            out.write_char(']')
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                return out.write_str("{}");
            }
            out.write_char('{')?;
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                newline_indent(out, indent, depth + 1)?;
                write_string(out, key)?;
                out.write_char(':')?;
                if indent.is_some() {
                    out.write_char(' ')?;
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth)?;
            out.write_char('}')
        }
    }
}

fn newline_indent<W: fmt::Write>(out: &mut W, indent: Option<usize>, depth: usize) -> fmt::Result {
    if let Some(width) = indent {
        out.write_char('\n')?;
        for _ in 0..width * depth {
            out.write_char(' ')?;
        }
    }
    Ok(())
}

fn write_string<W: fmt::Write>(out: &mut W, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::new)?,
                                16,
                            )
                            .map_err(Error::new)?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(Error::new)?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?;
        if text.is_empty() {
            return Err(Error::new(format!("expected value at offset {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_compact_and_pretty_json() {
        let value = Value::Object(vec![
            ("id".to_string(), Value::Str("fig 8 — \"warm\"".to_string())),
            ("n".to_string(), Value::UInt(42)),
            ("neg".to_string(), Value::Int(-3)),
            ("pi".to_string(), Value::Float(3.25)),
            ("flag".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
            (
                "rows".to_string(),
                Value::Array(vec![Value::Str("a\nb".to_string()), Value::Float(0.5)]),
            ),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        struct Wrapper(Value);
        impl Serialize for Wrapper {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        impl Deserialize for Wrapper {
            fn from_value(value: &Value) -> Result<Self, serde::Error> {
                Ok(Wrapper(value.clone()))
            }
        }
        for text in [
            to_string(&Wrapper(value.clone())).unwrap(),
            to_string_pretty(&Wrapper(value.clone())).unwrap(),
        ] {
            let parsed: Wrapper = from_str(&text).unwrap();
            assert_eq!(parsed.0, value);
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<String>("42 garbage").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
    }
}
