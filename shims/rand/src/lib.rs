//! Offline stand-in for [`rand`](https://docs.rs/rand) 0.9.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of the rand 0.9 API the workspace uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{random, random_range, random_bool}`
//! and `seq::SliceRandom::shuffle`.
//!
//! The generator is SplitMix64 — not cryptographic, but statistically solid
//! for simulation workloads, `Copy`-cheap and trivially seedable. Streams are
//! fully determined by the seed, which is all the reproducibility the
//! experiments need. (The streams differ from the real `StdRng`'s ChaCha12;
//! nothing in the workspace depends on specific draws.)

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, mirroring rand 0.9 naming.
pub trait Rng: RngCore {
    /// A random value of a type with a standard uniform distribution.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A random value in `range` (half-open).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn from the standard uniform distribution.
pub trait StandardUniform {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<usize> for Range<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        self.start + bounded_u64(rng.next_u64(), span) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        self.start + bounded_u64(rng.next_u64(), span)
    }
}

impl SampleRange<u32> for Range<u32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        self.start + bounded_u64(rng.next_u64(), span) as u32
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform value in `[0, span)` via the widening-multiply trick.
pub(crate) fn bounded_u64(bits: u64, span: u64) -> u64 {
    ((bits as u128 * span as u128) >> 64) as u64
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// The generator's current internal state. Together with
        /// [`super::SeedableRng::seed_from_u64`] (which installs a state
        /// verbatim) this makes the stream checkpointable: a generator
        /// rebuilt from `state()` continues with exactly the draws the
        /// original would have produced. Snapshot/restore of validation
        /// sessions relies on this.
        pub fn state(&self) -> u64 {
            self.state
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }
}

pub mod seq {
    use super::{bounded_u64, RngCore};

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng.next_u64(), (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.random_range(3..17usize);
            assert!((3..17).contains(&u));
            let f = rng.random_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left the slice untouched"
        );
    }
}
