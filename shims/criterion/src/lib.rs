//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! The build environment has no access to crates.io, so this shim provides a
//! wall-clock harness behind the criterion API surface the workspace's
//! benches use: `Criterion`, `benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros (benches keep
//! `harness = false`, exactly as with the real crate).
//!
//! Each benchmark runs a short warm-up, then collects timing samples (one
//! closure invocation per sample, capped by sample count and a per-bench time
//! budget) and prints `min / mean / max`, which is enough to compare serial
//! vs. parallel and warm vs. cold variants at a glance.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-bench wall-clock budget; keeps full `cargo bench` runs bounded.
const TIME_BUDGET: Duration = Duration::from_secs(5);
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Identifier combining a function name and an optional parameter, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// The timing loop handed to every benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `f`, collecting up to `sample_size` samples within the time
    /// budget (always at least one).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let started = Instant::now();
        // Warm-up: one untimed invocation (fills caches, spawns thread pools).
        black_box(f());
        loop {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if self.samples.len() >= self.sample_size || started.elapsed() >= TIME_BUDGET {
                break;
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_bench(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size: sample_size.max(1),
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{label:<50} time: [{} {} {}]  ({} samples)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
        bencher.samples.len(),
    );
}

/// Entry point created by `criterion_group!`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, DEFAULT_SAMPLE_SIZE, |b| f(b));
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, self.sample_size, |b| f(b));
        self
    }

    /// Runs one benchmark that receives a shared input by reference.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (separator line, mirroring criterion's report break).
    pub fn finish(self) {
        println!();
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 5usize), &5usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }
}
