//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! Provides the strategy combinators and the `proptest!` macro surface the
//! workspace's property tests use. Differences from the real crate, all
//! acceptable for these tests:
//!
//! * cases are generated from a deterministic per-test seed (derived from the
//!   test name), so runs are reproducible without a persistence file;
//! * there is **no shrinking** — a failing case panics with the case number;
//! * `prop_assert!` / `prop_assert_eq!` are plain assertions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-test random source.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from the test name so every test gets a stable, distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of test values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy it selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_numeric_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_numeric_range!(usize, u32, u64, f64);

impl Strategy for RangeInclusive<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.rng().random_range(*self.start()..*self.end() + 1)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Closed float ranges are sampled from the half-open range; hitting
        // the exact upper endpoint has probability ~0 anyway.
        if self.start() == self.end() {
            return *self.start();
        }
        rng.rng().random_range(*self.start()..*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().random()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().random()
    }
}

/// Strategy producing arbitrary values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Sizes accepted by [`vec`]: exact or ranged.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi_inclusive: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(!range.is_empty(), "empty size range");
            Self {
                lo: range.start,
                hi_inclusive: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            Self {
                lo: *range.start(),
                hi_inclusive: *range.end(),
            }
        }
    }

    /// Vector of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi_inclusive {
                self.size.lo
            } else {
                rng.rng()
                    .random_range(self.size.lo..self.size.hi_inclusive + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::weighted`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// `Some(value)` with probability `p`, `None` otherwise.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> Weighted<S> {
        Weighted { p, inner }
    }

    pub struct Weighted<S> {
        p: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.rng().random_bool(self.p) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Declares deterministic property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr; ) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let ($($pat,)+) = ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                $body
            }
        }
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
}

/// Plain assertion (the shim does not collect failures for shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Plain equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds(
            (a, b) in (0usize..10, 1.0f64..2.0),
            v in crate::collection::vec(0usize..5, 1..=4usize),
            opt in crate::option::weighted(0.5, 0u64..9)
        ) {
            prop_assert!(a < 10);
            prop_assert!((1.0..2.0).contains(&b));
            prop_assert!((1..=4).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
            if let Some(x) = opt {
                prop_assert!(x < 9);
            }
        }

        #[test]
        fn flat_map_chains_strategies(n in (1usize..4).prop_flat_map(|n| (Just(n), crate::collection::vec(0usize..10, n)))) {
            let (len, items) = n;
            prop_assert_eq!(items.len(), len);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let s = (0usize..100).generate(&mut a);
        let t = (0usize..100).generate(&mut b);
        assert_eq!(s, t);
    }
}
