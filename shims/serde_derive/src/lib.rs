//! Offline stand-in for [`serde_derive`](https://docs.rs/serde_derive).
//!
//! Generates implementations of the serde *shim*'s value-based `Serialize` /
//! `Deserialize` traits (see `shims/serde`). Because neither `syn` nor
//! `quote` is available offline, the item is parsed by walking raw
//! `proc_macro` token trees. Supported shapes — which cover everything this
//! workspace derives — are:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently, wider ones as
//!   arrays),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged: unit
//!   variants become strings, the rest `{"Variant": ...}` objects).
//!
//! Generic type parameters are not supported and produce a compile error;
//! `#[serde(...)]` helper attributes are accepted and ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_serialize(&shape)
        .parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_deserialize(&shape)
        .parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Token-tree parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (including doc comments) and visibility.
    let keyword = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    break word;
                }
                panic!("serde_derive shim: unexpected token `{word}` before struct/enum");
            }
            other => panic!("serde_derive shim: unexpected input {other:?}"),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };

    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }

    if keyword == "enum" {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive shim: expected enum body, found {other:?}"),
        }
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("serde_derive shim: expected struct body, found {other:?}"),
        }
    }
}

/// Parses `name: Type, ...` sequences, returning the field names. Types are
/// skipped with angle-bracket depth tracking so `HashMap<K, V>` fields do not
/// split on their inner comma.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility in front of the field name.
        let name = loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                other => panic!("serde_derive shim: unexpected token in fields: {other:?}"),
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde_derive shim: expected `:` after field `{name}`, found {other:?}")
            }
        }
        fields.push(name);
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Counts the fields of a tuple struct/variant (top-level comma-separated
/// segments, ignoring a trailing comma).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut segment_has_tokens = false;
    let mut angle_depth = 0i32;
    for token in stream {
        match token {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    angle_depth += 1;
                    segment_has_tokens = true;
                }
                '>' => {
                    angle_depth -= 1;
                    segment_has_tokens = true;
                }
                ',' if angle_depth == 0 => {
                    if segment_has_tokens {
                        arity += 1;
                    }
                    segment_has_tokens = false;
                }
                _ => segment_has_tokens = true,
            },
            _ => segment_has_tokens = true,
        }
    }
    if segment_has_tokens {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes in front of the variant.
        let name = loop {
            match tokens.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                other => panic!("serde_derive shim: unexpected token in enum body: {other:?}"),
            }
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Consume up to and including the separating comma (skips explicit
        // discriminants, which the workspace does not use on serde enums).
        loop {
            match tokens.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}",
                entries = entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec![{items}])\n\
                     }}\n\
                 }}",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\"))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), \
                              ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binders: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binders}) => \
                                 ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                  ::serde::Value::Array(::std::vec![{items}]))])",
                                binders = binders.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {fields} }} => \
                                 ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                  ::serde::Value::Object(::std::vec![{entries}]))])",
                                fields = fields.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                arms = arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::get_field(__entries, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __entries = __value.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for `{name}`\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})",
                inits = inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for `{name}`\"))?;\n\
                 if __items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                     \"wrong tuple arity for `{name}`\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!("::std::result::Result::Ok({name})"),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname})",
                        vname = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__content)?))"
                        )),
                        VariantKind::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __items = __content.as_array().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected array for `{name}::{vname}`\"))?;\n\
                                     if __items.len() != {arity} {{\n\
                                         return ::std::result::Result::Err(::serde::Error::custom(\
                                         \"wrong arity for `{name}::{vname}`\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({items}))\n\
                                 }}",
                                items = items.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::get_field(__inner, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __inner = __content.as_object().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected object for `{name}::{vname}`\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                                 }}",
                                inits = inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __value {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__tagged) if __tagged.len() == 1 => {{\n\
                         let (__tag, __content) = &__tagged[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                     \"expected string or single-key object for enum `{name}`\")),\n\
                 }}",
                unit_arms = if unit_arms.is_empty() {
                    String::new()
                } else {
                    unit_arms.join(",\n") + ","
                },
                tagged_arms = if tagged_arms.is_empty() {
                    String::new()
                } else {
                    tagged_arms.join(",\n") + ","
                },
            )
        }
    };
    let name = match shape {
        Shape::NamedStruct { name, .. }
        | Shape::TupleStruct { name, .. }
        | Shape::UnitStruct { name }
        | Shape::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
