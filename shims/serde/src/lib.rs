//! Offline stand-in for [`serde`](https://docs.rs/serde).
//!
//! The build environment has no access to crates.io, so this shim provides a
//! small self-describing data model ([`Value`]) plus [`Serialize`] /
//! [`Deserialize`] traits and derive macros under the names the workspace
//! imports. The derives (re-exported from the sibling `serde_derive` shim)
//! cover the shapes the workspace uses: named-field structs, tuple/newtype
//! structs, and enums with unit, tuple and struct variants (externally tagged,
//! like real serde's default representation).
//!
//! `serde_json` (also shimmed) renders [`Value`] to JSON and parses it back,
//! which is all the persistence the experiment reports need.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (also produced by the JSON parser for negative ints).
    Int(i64),
    /// Unsigned integers (covers `u64` seeds beyond `i64::MAX`).
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs (stable JSON output).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] cannot be turned back into a type.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    pub fn custom(message: impl fmt::Display) -> Self {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a required field in an object's entries (used by derived code).
pub fn get_field<'v>(entries: &'v [(String, Value)], key: &str) -> Result<&'v Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom("expected 2-element array"))?;
        if items.len() != 2 {
            return Err(Error::custom("expected 2-element array"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom("expected 3-element array"))?;
        if items.len() != 3 {
            return Err(Error::custom("expected 3-element array"));
        }
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u64>::from_value(&vec![1u64, 2].to_value()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn ints_coerce_to_floats_but_not_strings() {
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert!(f64::from_value(&Value::Str("3".into())).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn field_lookup_reports_missing_keys() {
        let entries = vec![("a".to_string(), Value::Int(1))];
        assert!(get_field(&entries, "a").is_ok());
        let err = get_field(&entries, "b").unwrap_err();
        assert!(err.to_string().contains("`b`"));
    }
}
