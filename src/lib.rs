//! # crowd-validation
//!
//! A library for **guided validation of crowdsourced answers**, reproducing
//! the system described in *"Minimizing Efforts in Validating Crowd Answers"*
//! (SIGMOD 2015).
//!
//! Crowd workers label objects; their answers are noisy and the worker pool
//! may contain sloppy workers and spammers. This crate aggregates the answers
//! probabilistically (estimating per-worker confusion matrices with an
//! incremental EM algorithm that treats expert validations as ground truth),
//! quantifies the remaining uncertainty, and guides a validating expert to
//! the objects whose validation is most beneficial — either because it
//! maximally reduces uncertainty (information gain) or because it exposes
//! faulty workers, with a hybrid strategy that balances the two dynamically.
//!
//! ## Quick start
//!
//! ```
//! use crowd_validation::prelude::*;
//!
//! // Simulate a small crowdsourcing task: 30 objects, 20 workers, 2 labels.
//! let synthetic = SyntheticConfig { num_objects: 30, ..SyntheticConfig::paper_default(7) }
//!     .generate();
//! let answers = synthetic.dataset.answers().clone();
//! let truth = synthetic.dataset.ground_truth().clone();
//!
//! // Build the validation process: i-EM aggregation + hybrid guidance.
//! let mut process = ValidationProcess::builder(answers)
//!     .strategy(Box::new(HybridStrategy::new(42)))
//!     .config(ProcessConfig { budget: Some(6), ..ProcessConfig::default() })
//!     .ground_truth(truth.clone())
//!     .build();
//!
//! // Drive it with a simulated expert (in production the labels would come
//! // from a human validator).
//! let mut expert = SimulatedExpert::perfect(truth, 2);
//! while !process.is_finished() {
//!     let Some(object) = process.select_next() else { break };
//!     let label = expert.validate(object);
//!     process.integrate(object, label).expect("oracle labels are in range");
//! }
//!
//! let result = process.deterministic_assignment();
//! assert_eq!(result.len(), 30);
//! assert!(process.trace().len() <= 6);
//! ```
//!
//! ## Crate layout
//!
//! | Crate | Contents |
//! |---|---|
//! | [`crowdval_model`] | answer sets, confusion matrices, assignments, datasets, CSV I/O |
//! | [`crowdval_aggregation`] | majority voting, batch EM, incremental i-EM |
//! | [`crowdval_spammer`] | spammer scores, sloppy-worker detection, exclusion handling |
//! | [`crowdval_core`] | uncertainty, guidance strategies, the validation process, cost model |
//! | [`crowdval_service`] | the multi-tenant service API: versioned protocol, external-id interning, snapshot/restore |
//! | [`crowdval_sim`] | worker simulation, synthetic datasets, dataset replicas, simulated experts |
//! | [`crowdval_numerics`] | matrices, rank-one distance, entropy, statistics |
//!
//! This umbrella crate re-exports the public API of all of them and provides
//! a [`prelude`] for applications.

pub use crowdval_aggregation as aggregation;
pub use crowdval_core as core;
pub use crowdval_model as model;
pub use crowdval_numerics as numerics;
pub use crowdval_service as service;
pub use crowdval_sim as sim;
pub use crowdval_spammer as spammer;

/// Commonly used types, ready for a single glob import.
pub mod prelude {
    pub use crowdval_aggregation::{
        aggregate_combined, Aggregator, BatchEm, EmConfig, EmWorkspace, ExpertIntegration,
        IncrementalEm, InitStrategy, MajorityVoting, ScoringMode,
    };
    pub use crowdval_core::{
        partition_answer_matrix, AuditRecord, ConfirmationCheck, ConvergencePredictor, CostModel,
        EntropyBaseline, EntropyShortlist, ExpertSource, GuidanceCache, GuidanceTelemetry,
        HybridStrategy, ProcessConfig, RandomSelection, ScoringContext, ScoringEngine,
        SelectionStrategy, SessionUpdate, StrategyContext, StrategyKind, TriageConfig,
        TriageCounters, TriageDecision, TriageFeatures, TriageState, TriageVerdict,
        UncertaintyDriven, ValidationGoal, ValidationProcess, ValidationSession,
        ValidationSessionBuilder, ValidationTrace, WorkerDriven,
    };
    pub use crowdval_model::{
        AnswerMatrix, AnswerSet, AssignmentMatrix, ConfusionMatrix, Dataset,
        DeterministicAssignment, ExpertValidation, GroundTruth, HypothesisOverlay, IdInterner,
        LabelId, ModelError, ObjectId, ProbabilisticAnswerSet, ValidationView, Vote, WorkerId,
    };
    pub use crowdval_sim::{
        all_replicas, replica, AdversarialConfig, AdversarialScenario, AttackKind, PopulationMix,
        ReplicaName, SimulatedExpert, StreamingConfig, StreamingScenario, SyntheticConfig,
        SyntheticDataset, WorkerKind, WorkerProfile,
    };
    pub use crowdval_spammer::{
        DefenseTelemetry, DetectorConfig, FaultyWorkerHandler, SpammerDetector, TrustConfig,
        TrustReport, WorkerTrustLedger,
    };
}
