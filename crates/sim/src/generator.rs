//! Deterministic synthetic dataset generation (paper Appendix A).
//!
//! A [`SyntheticConfig`] mirrors the paper's simulation parameters: the number
//! of objects `n`, workers `k`, labels `m`, the reliability `r` of normal
//! workers, the population mix (including the spammer ratio `σ`), the question
//! difficulty model and the matrix sparsity. Generation is fully deterministic
//! given a seed.

use crate::difficulty::DifficultyModel;
use crate::population::PopulationMix;
use crate::worker_profile::{WorkerKind, WorkerProfile};
use crowdval_model::{AnswerSet, Dataset, GroundTruth, LabelId, ObjectId, WorkerId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a synthetic crowdsourcing dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Dataset name used for reports.
    pub name: String,
    /// Application-domain label used for reports (Table 4's "Domain" column).
    pub domain: String,
    /// Number of objects `n`.
    pub num_objects: usize,
    /// Number of workers `k`.
    pub num_workers: usize,
    /// Number of labels `m`.
    pub num_labels: usize,
    /// Reliability of normal/reliable workers (the paper's `r`).
    pub reliability: f64,
    /// Population composition.
    pub mix: PopulationMix,
    /// Question difficulty model.
    pub difficulty: DifficultyModel,
    /// Fraction of objects that are *deceptive*: their phrasing pulls honest
    /// workers toward one specific wrong label, so the crowd is
    /// systematically (not randomly) wrong on them. Used to calibrate the
    /// real-world replicas; the plain synthetic experiments keep it at 0.
    pub deceptive_fraction: f64,
    /// If set, every object receives exactly this many answers from randomly
    /// chosen distinct workers; otherwise every worker answers every object.
    pub answers_per_object: Option<usize>,
    /// If set, caps the number of questions any single worker answers
    /// (used for the sparsity experiment of Table 5).
    pub max_answers_per_worker: Option<usize>,
    /// RNG seed; the same seed always yields the same dataset.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The 50-object / 20-worker / 2-label setup used by most of the paper's
    /// synthetic experiments, with reliability `r = 0.65` and the default
    /// population mix.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            name: "synthetic".into(),
            domain: "synthetic".into(),
            num_objects: 50,
            num_workers: 20,
            num_labels: 2,
            reliability: 0.65,
            mix: PopulationMix::paper_default(),
            difficulty: DifficultyModel::easy(),
            deceptive_fraction: 0.0,
            answers_per_object: None,
            max_answers_per_worker: None,
            seed,
        }
    }

    /// Generates the dataset described by this configuration.
    pub fn generate(&self) -> SyntheticDataset {
        assert!(self.num_labels > 0, "need at least one label");
        assert!(self.num_objects > 0, "need at least one object");
        assert!(self.num_workers > 0, "need at least one worker");
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Ground truth: labels drawn uniformly.
        let truth: Vec<LabelId> = (0..self.num_objects)
            .map(|_| LabelId(rng.random_range(0..self.num_labels)))
            .collect();

        // Worker profiles according to the population mix; the per-worker
        // order is shuffled so worker ids are not correlated with types.
        let mut kinds = self.mix.allocate(self.num_workers);
        kinds.shuffle(&mut rng);
        let profiles: Vec<WorkerProfile> = kinds
            .iter()
            .map(|&kind| {
                // Reliable workers in the paper's synthetic setup answer with
                // the configured reliability `r` (the paper varies a single
                // reliability knob for the non-faulty population).
                let accuracy = match kind {
                    WorkerKind::Reliable | WorkerKind::Normal => self.reliability,
                    _ => 0.0,
                };
                let fixed = LabelId(rng.random_range(0..self.num_labels));
                match kind {
                    WorkerKind::Reliable | WorkerKind::Normal => {
                        WorkerProfile::new(kind, accuracy, fixed)
                    }
                    _ => WorkerProfile::with_defaults(kind, self.reliability, fixed),
                }
            })
            .collect();

        // Per-object difficulties and (for deceptive objects) trap labels.
        let difficulties = self.difficulty.sample_many(&mut rng, self.num_objects);
        let traps: Vec<Option<LabelId>> = (0..self.num_objects)
            .map(|o| {
                if self.num_labels > 1
                    && self.deceptive_fraction > 0.0
                    && rng.random_bool(self.deceptive_fraction.clamp(0.0, 1.0))
                {
                    let wrong = rng.random_range(0..self.num_labels - 1);
                    let wrong = if wrong >= truth[o].index() {
                        wrong + 1
                    } else {
                        wrong
                    };
                    Some(LabelId(wrong))
                } else {
                    None
                }
            })
            .collect();

        // Decide which worker answers which object.
        let mut answers = AnswerSet::new(self.num_objects, self.num_workers, self.num_labels);
        let mut per_worker_count = vec![0usize; self.num_workers];
        let worker_cap = self.max_answers_per_worker.unwrap_or(usize::MAX);

        for o in 0..self.num_objects {
            let object = ObjectId(o);
            let mut eligible: Vec<usize> = (0..self.num_workers)
                .filter(|&w| per_worker_count[w] < worker_cap)
                .collect();
            let chosen: Vec<usize> = match self.answers_per_object {
                Some(k) => {
                    eligible.shuffle(&mut rng);
                    eligible.into_iter().take(k).collect()
                }
                None => eligible,
            };
            for w in chosen {
                let label = profiles[w].answer_with_trap(
                    &mut rng,
                    truth[o],
                    traps[o],
                    self.num_labels,
                    difficulties[o],
                );
                answers
                    .record_answer(object, WorkerId(w), label)
                    .expect("generated indices are always in range");
                per_worker_count[w] += 1;
            }
        }

        let dataset = Dataset::new(
            self.name.clone(),
            self.domain.clone(),
            answers,
            GroundTruth::new(truth),
        )
        .expect("generator always produces consistent datasets");

        SyntheticDataset {
            dataset,
            profiles,
            difficulties,
            traps,
            config: self.clone(),
        }
    }
}

/// A generated dataset plus the hidden simulation state (worker profiles and
/// question difficulties) needed to evaluate detection quality and to
/// generate additional answers later.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The observable dataset (answers + ground truth).
    pub dataset: Dataset,
    /// The true profile of every worker (hidden from the algorithms).
    pub profiles: Vec<WorkerProfile>,
    /// The true difficulty of every object (hidden from the algorithms).
    pub difficulties: Vec<f64>,
    /// For deceptive objects, the wrong label the crowd is drawn toward
    /// (hidden from the algorithms).
    pub traps: Vec<Option<LabelId>>,
    /// The configuration that produced this dataset.
    pub config: SyntheticConfig,
}

impl SyntheticDataset {
    /// Ids of the workers that are truly faulty (sloppy or spammer), the
    /// reference set for spammer-detection precision/recall (Fig. 9).
    pub fn faulty_workers(&self) -> Vec<WorkerId> {
        self.profiles
            .iter()
            .enumerate()
            .filter_map(|(w, p)| {
                if p.kind().is_faulty() {
                    Some(WorkerId(w))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Ids of the workers that are spammers in the narrow sense.
    pub fn spammer_workers(&self) -> Vec<WorkerId> {
        self.profiles
            .iter()
            .enumerate()
            .filter_map(|(w, p)| {
                if p.kind().is_spammer() {
                    Some(WorkerId(w))
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cfg = SyntheticConfig::paper_default(7);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.profiles, b.profiles);
        assert_eq!(a.difficulties, b.difficulties);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticConfig::paper_default(1).generate();
        let b = SyntheticConfig::paper_default(2).generate();
        assert_ne!(a.dataset, b.dataset);
    }

    #[test]
    fn default_config_has_paper_shape() {
        let d = SyntheticConfig::paper_default(3).generate();
        let stats = d.dataset.stats();
        assert_eq!(stats.objects, 50);
        assert_eq!(stats.workers, 20);
        assert_eq!(stats.labels, 2);
        // dense matrix: everyone answers everything
        assert_eq!(stats.answers, 50 * 20);
        // 25 % spammers of 20 workers
        assert_eq!(d.spammer_workers().len(), 5);
        assert!(d.faulty_workers().len() >= d.spammer_workers().len());
    }

    #[test]
    fn answers_per_object_limits_coverage() {
        let cfg = SyntheticConfig {
            answers_per_object: Some(5),
            ..SyntheticConfig::paper_default(11)
        };
        let d = cfg.generate();
        for o in d.dataset.answers().objects() {
            assert_eq!(d.dataset.answers().matrix().object_answer_count(o), 5);
        }
    }

    #[test]
    fn max_answers_per_worker_is_respected() {
        let cfg = SyntheticConfig {
            num_objects: 40,
            num_workers: 30,
            answers_per_object: Some(10),
            max_answers_per_worker: Some(15),
            ..SyntheticConfig::paper_default(13)
        };
        let d = cfg.generate();
        for w in d.dataset.answers().workers() {
            assert!(d.dataset.answers().matrix().worker_answer_count(w) <= 15);
        }
    }

    #[test]
    fn majority_vote_on_easy_dense_data_is_mostly_correct() {
        // Sanity check of the generative model: with 65 % reliable answers and
        // 20 workers, the per-object majority should be correct most of the
        // time even with 25 % spammers.
        let d = SyntheticConfig::paper_default(7).generate();
        let answers = d.dataset.answers();
        let mut correct = 0;
        for o in answers.objects() {
            let mut counts = vec![0usize; answers.num_labels()];
            for (_, l) in answers.matrix().answers_for_object(o) {
                counts[l.index()] += 1;
            }
            let max = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(l, _)| LabelId(l))
                .unwrap();
            if max == d.dataset.ground_truth().label(o) {
                correct += 1;
            }
        }
        // With r = 0.65, 32 % sloppy and 25 % spammers the per-answer correct
        // rate is barely above chance, so majority voting is expected to land
        // around 0.6–0.75 precision (matching the starting points of the
        // paper's Fig. 17/19 curves), clearly above the 0.5 chance level.
        assert!(correct >= 30, "majority voting got only {correct}/50 right");
    }
}
