//! Worker-population mixes (paper Appendix A).
//!
//! The paper distributes the simulated population into α % reliable workers,
//! β % sloppy workers and γ % spammers with defaults α = 43, β = 32, γ = 25
//! (following the CIKM'11 study of real crowds), and controls the reliability
//! of the non-spammer ("normal") workers through the parameter `r`.

use crate::worker_profile::WorkerKind;
use serde::{Deserialize, Serialize};

/// Relative shares of the five worker types. Shares are normalized before
/// sampling, so they do not need to sum to one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationMix {
    pub reliable: f64,
    pub normal: f64,
    pub sloppy: f64,
    pub uniform_spammer: f64,
    pub random_spammer: f64,
}

impl PopulationMix {
    /// The paper's default mix: 43 % reliable, 32 % sloppy, 25 % spammers
    /// (split evenly between uniform and random spammers).
    pub fn paper_default() -> Self {
        Self {
            reliable: 0.43,
            normal: 0.0,
            sloppy: 0.32,
            uniform_spammer: 0.125,
            random_spammer: 0.125,
        }
    }

    /// A mix with the given overall spammer ratio `sigma`; the remaining mass
    /// keeps the paper's 43:32 split between reliable and sloppy workers.
    /// Used for the `σ ∈ {15 %, 25 %, 35 %}` sweeps (Fig. 20, Fig. 22).
    pub fn with_spammer_ratio(sigma: f64) -> Self {
        let sigma = sigma.clamp(0.0, 1.0);
        let honest = 1.0 - sigma;
        let reliable = honest * 0.43 / 0.75;
        let sloppy = honest * 0.32 / 0.75;
        Self {
            reliable,
            normal: 0.0,
            sloppy,
            uniform_spammer: sigma / 2.0,
            random_spammer: sigma / 2.0,
        }
    }

    /// A population without any faulty workers (used for the ethical-worker
    /// assumption of the uncertainty-driven strategy's analysis).
    pub fn all_reliable() -> Self {
        Self {
            reliable: 1.0,
            normal: 0.0,
            sloppy: 0.0,
            uniform_spammer: 0.0,
            random_spammer: 0.0,
        }
    }

    /// Total (unnormalized) weight.
    fn total(&self) -> f64 {
        self.reliable + self.normal + self.sloppy + self.uniform_spammer + self.random_spammer
    }

    /// Fraction of spammers (uniform + random) after normalization.
    pub fn spammer_ratio(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (self.uniform_spammer + self.random_spammer) / t
        }
    }

    /// Fraction of faulty workers (sloppy + spammers) after normalization.
    pub fn faulty_ratio(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (self.sloppy + self.uniform_spammer + self.random_spammer) / t
        }
    }

    /// Deterministically expands the mix into `count` worker kinds using
    /// largest-remainder apportionment, so a 20-worker population with the
    /// default mix always contains the same type counts regardless of RNG.
    pub fn allocate(&self, count: usize) -> Vec<WorkerKind> {
        let kinds = [
            (WorkerKind::Reliable, self.reliable),
            (WorkerKind::Normal, self.normal),
            (WorkerKind::Sloppy, self.sloppy),
            (WorkerKind::UniformSpammer, self.uniform_spammer),
            (WorkerKind::RandomSpammer, self.random_spammer),
        ];
        let total = self.total();
        if count == 0 {
            return Vec::new();
        }
        if total <= 0.0 {
            return vec![WorkerKind::Normal; count];
        }

        // Integer part of each quota first, then distribute the remainder by
        // the largest fractional parts.
        let quotas: Vec<f64> = kinds
            .iter()
            .map(|(_, w)| w / total * count as f64)
            .collect();
        let mut counts: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
        let assigned: usize = counts.iter().sum();
        let mut remainders: Vec<(usize, f64)> = quotas
            .iter()
            .enumerate()
            .map(|(i, q)| (i, q - q.floor()))
            .collect();
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (i, _) in remainders.into_iter().take(count - assigned) {
            counts[i] += 1;
        }

        let mut out = Vec::with_capacity(count);
        for ((kind, _), n) in kinds.iter().zip(&counts) {
            out.extend(std::iter::repeat_n(*kind, *n));
        }
        out
    }
}

impl Default for PopulationMix {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_ratios() {
        let mix = PopulationMix::paper_default();
        assert!((mix.spammer_ratio() - 0.25).abs() < 1e-9);
        assert!((mix.faulty_ratio() - 0.57).abs() < 1e-9);
    }

    #[test]
    fn with_spammer_ratio_hits_requested_sigma() {
        for sigma in [0.15, 0.25, 0.35] {
            let mix = PopulationMix::with_spammer_ratio(sigma);
            assert!((mix.spammer_ratio() - sigma).abs() < 1e-9, "sigma {sigma}");
        }
    }

    #[test]
    fn allocate_produces_exact_count_and_expected_composition() {
        let mix = PopulationMix::paper_default();
        let kinds = mix.allocate(20);
        assert_eq!(kinds.len(), 20);
        let spammers = kinds.iter().filter(|k| k.is_spammer()).count();
        // 25 % of 20 = 5 spammers
        assert_eq!(spammers, 5);
        let reliable = kinds.iter().filter(|&&k| k == WorkerKind::Reliable).count();
        assert!((8..=9).contains(&reliable), "reliable = {reliable}");
    }

    #[test]
    fn allocate_is_deterministic() {
        let mix = PopulationMix::paper_default();
        assert_eq!(mix.allocate(37), mix.allocate(37));
    }

    #[test]
    fn allocate_handles_edge_cases() {
        assert!(PopulationMix::paper_default().allocate(0).is_empty());
        let zero = PopulationMix {
            reliable: 0.0,
            normal: 0.0,
            sloppy: 0.0,
            uniform_spammer: 0.0,
            random_spammer: 0.0,
        };
        assert_eq!(zero.allocate(3), vec![WorkerKind::Normal; 3]);
        assert_eq!(zero.spammer_ratio(), 0.0);
        assert_eq!(zero.faulty_ratio(), 0.0);
    }

    #[test]
    fn all_reliable_has_no_faulty_workers() {
        let mix = PopulationMix::all_reliable();
        assert_eq!(mix.faulty_ratio(), 0.0);
        assert!(mix.allocate(10).iter().all(|&k| k == WorkerKind::Reliable));
    }
}
