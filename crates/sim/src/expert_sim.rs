//! Simulated validating expert (paper §6.1 and §6.7).
//!
//! Most of the paper's experiments "mimic the validating expert by using the
//! ground-truth provided in the datasets". The robustness experiments (§6.7)
//! additionally flip a validation to a wrong label with probability `p` to
//! model erroneous expert input.

use crowdval_model::{GroundTruth, LabelId, ObjectId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An expert that answers validation questions from the ground truth,
/// optionally making mistakes with a fixed probability.
#[derive(Debug, Clone)]
pub struct SimulatedExpert {
    truth: GroundTruth,
    num_labels: usize,
    mistake_probability: f64,
    rng: StdRng,
    mistakes_made: usize,
    validations: usize,
}

impl SimulatedExpert {
    /// A perfect expert.
    pub fn perfect(truth: GroundTruth, num_labels: usize) -> Self {
        Self::with_mistakes(truth, num_labels, 0.0, 0)
    }

    /// An expert that answers incorrectly with probability
    /// `mistake_probability` (the wrong label is chosen uniformly).
    pub fn with_mistakes(
        truth: GroundTruth,
        num_labels: usize,
        mistake_probability: f64,
        seed: u64,
    ) -> Self {
        assert!(num_labels > 0, "need at least one label");
        Self {
            truth,
            num_labels,
            mistake_probability: mistake_probability.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
            mistakes_made: 0,
            validations: 0,
        }
    }

    /// The correct label of `object` (without any mistake model), as the
    /// expert would answer when re-considering a flagged validation.
    pub fn correct_label(&self, object: ObjectId) -> LabelId {
        self.truth.label(object)
    }

    /// Answers a validation request for `object`.
    pub fn validate(&mut self, object: ObjectId) -> LabelId {
        self.validations += 1;
        let truth = self.truth.label(object);
        if self.num_labels > 1
            && self.mistake_probability > 0.0
            && self.rng.random_bool(self.mistake_probability)
        {
            self.mistakes_made += 1;
            let wrong = self.rng.random_range(0..self.num_labels - 1);
            if wrong >= truth.index() {
                LabelId(wrong + 1)
            } else {
                LabelId(wrong)
            }
        } else {
            truth
        }
    }

    /// Number of validations answered so far.
    pub fn validations(&self) -> usize {
        self.validations
    }

    /// Number of erroneous validations produced so far.
    pub fn mistakes_made(&self) -> usize {
        self.mistakes_made
    }

    /// The configured mistake probability.
    pub fn mistake_probability(&self) -> f64 {
        self.mistake_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        GroundTruth::new((0..100).map(|i| LabelId(i % 2)).collect())
    }

    #[test]
    fn perfect_expert_always_returns_the_truth() {
        let mut e = SimulatedExpert::perfect(truth(), 2);
        for o in 0..100 {
            assert_eq!(e.validate(ObjectId(o)), LabelId(o % 2));
        }
        assert_eq!(e.mistakes_made(), 0);
        assert_eq!(e.validations(), 100);
    }

    #[test]
    fn erroneous_expert_makes_roughly_p_mistakes() {
        let mut e = SimulatedExpert::with_mistakes(truth(), 2, 0.3, 99);
        let mut wrong = 0;
        for round in 0..20 {
            for o in 0..100 {
                if e.validate(ObjectId(o)) != LabelId(o % 2) {
                    wrong += 1;
                }
            }
            let _ = round;
        }
        let rate = wrong as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "observed mistake rate {rate}");
        assert_eq!(e.mistakes_made(), wrong);
    }

    #[test]
    fn mistakes_never_return_the_correct_label() {
        let mut e = SimulatedExpert::with_mistakes(truth(), 4, 1.0, 7);
        for o in 0..100 {
            assert_ne!(e.validate(ObjectId(o)), e.correct_label(ObjectId(o)));
        }
    }

    #[test]
    fn single_label_expert_cannot_err() {
        let t = GroundTruth::new(vec![LabelId(0); 5]);
        let mut e = SimulatedExpert::with_mistakes(t, 1, 1.0, 7);
        assert_eq!(e.validate(ObjectId(0)), LabelId(0));
        assert_eq!(e.mistakes_made(), 0);
    }

    #[test]
    fn mistake_probability_is_clamped_and_reported() {
        let e = SimulatedExpert::with_mistakes(truth(), 2, 7.0, 1);
        assert_eq!(e.mistake_probability(), 1.0);
    }
}
