//! Answer augmentation: asking the crowd for more answers.
//!
//! The cost study (§6.8) compares validating answers with an expert (EV)
//! against simply collecting more crowd answers (WO). The WO strategy needs a
//! way to add answers to an existing dataset from the same (hidden) worker
//! population; this module provides it.

use crate::generator::SyntheticDataset;
use crowdval_model::{Dataset, WorkerId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Returns a copy of the dataset in which every object has answers from (up
/// to) `target_answers_per_object` distinct workers; missing answers are
/// sampled from the hidden worker profiles of the synthetic dataset.
///
/// Objects that already have at least the target number of answers are left
/// untouched. If the worker population is smaller than the target the object
/// simply ends up fully covered.
pub fn augment_with_answers(
    source: &SyntheticDataset,
    target_answers_per_object: usize,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dataset = source.dataset.clone();
    let num_labels = dataset.answers().num_labels();
    let num_workers = dataset.answers().num_workers();
    let truth = source.dataset.ground_truth().clone();

    for o in source.dataset.answers().objects() {
        let existing: Vec<WorkerId> = source
            .dataset
            .answers()
            .matrix()
            .answers_for_object(o)
            .map(|(w, _)| w)
            .collect();
        if existing.len() >= target_answers_per_object {
            continue;
        }
        let mut candidates: Vec<usize> = (0..num_workers)
            .filter(|w| !existing.contains(&WorkerId(*w)))
            .collect();
        candidates.shuffle(&mut rng);
        let missing = target_answers_per_object - existing.len();
        let difficulty = source.difficulties[o.index()];
        let trap = source.traps[o.index()];
        for w in candidates.into_iter().take(missing) {
            let label = source.profiles[w].answer_with_trap(
                &mut rng,
                truth.label(o),
                trap,
                num_labels,
                difficulty,
            );
            dataset
                .answers_mut()
                .record_answer(o, WorkerId(w), label)
                .expect("augmentation uses in-range indices");
        }
    }
    dataset
}

/// Returns a copy of the dataset thinned to exactly `answers_per_object`
/// answers per object (dropping surplus answers deterministically). Used to
/// build the "initial cost φ₀" starting points of the cost experiments.
pub fn thin_to_answers_per_object(
    source: &SyntheticDataset,
    answers_per_object: usize,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dataset = source.dataset.clone();
    for o in source.dataset.answers().objects() {
        let mut answered: Vec<WorkerId> = dataset
            .answers()
            .matrix()
            .answers_for_object(o)
            .map(|(w, _)| w)
            .collect();
        if answered.len() <= answers_per_object {
            continue;
        }
        answered.shuffle(&mut rng);
        for w in answered.into_iter().skip(answers_per_object) {
            dataset.answers_mut().remove_answer(o, w);
        }
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticConfig;

    fn sparse_source() -> SyntheticDataset {
        SyntheticConfig {
            answers_per_object: Some(5),
            ..SyntheticConfig::paper_default(21)
        }
        .generate()
    }

    #[test]
    fn augmentation_raises_answers_per_object() {
        let src = sparse_source();
        let augmented = augment_with_answers(&src, 12, 1);
        for o in augmented.answers().objects() {
            assert_eq!(augmented.answers().matrix().object_answer_count(o), 12);
        }
        // Original untouched.
        for o in src.dataset.answers().objects() {
            assert_eq!(src.dataset.answers().matrix().object_answer_count(o), 5);
        }
    }

    #[test]
    fn augmentation_never_duplicates_a_worker_answer() {
        let src = sparse_source();
        let augmented = augment_with_answers(&src, 20, 2);
        for o in augmented.answers().objects() {
            let mut workers: Vec<_> = augmented
                .answers()
                .matrix()
                .answers_for_object(o)
                .map(|(w, _)| w)
                .collect();
            workers.sort();
            let mut dedup = workers.clone();
            dedup.dedup();
            assert_eq!(workers.len(), dedup.len());
        }
    }

    #[test]
    fn augmentation_is_capped_by_population_size() {
        let src = sparse_source();
        let augmented = augment_with_answers(&src, 1000, 3);
        for o in augmented.answers().objects() {
            assert_eq!(
                augmented.answers().matrix().object_answer_count(o),
                src.dataset.answers().num_workers()
            );
        }
    }

    #[test]
    fn thinning_reduces_answers_per_object() {
        let src = SyntheticConfig::paper_default(22).generate();
        let thinned = thin_to_answers_per_object(&src, 7, 4);
        for o in thinned.answers().objects() {
            assert_eq!(thinned.answers().matrix().object_answer_count(o), 7);
        }
    }

    #[test]
    fn thinning_is_a_noop_when_already_sparse() {
        let src = sparse_source();
        let thinned = thin_to_answers_per_object(&src, 9, 4);
        assert_eq!(thinned, src.dataset);
    }
}
