//! Behavioural models for the five worker types of the paper's §2 / Fig. 1.

use crowdval_model::LabelId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The worker-type taxonomy from [Kazai et al.] used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkerKind {
    /// Deep domain knowledge; answers with very high reliability.
    Reliable,
    /// General knowledge; correct most of the time but makes occasional
    /// mistakes. The synthetic-data parameter `r` controls this accuracy.
    Normal,
    /// Very little knowledge; often wrong, but unintentionally.
    Sloppy,
    /// Intentionally gives the same answer to every question.
    UniformSpammer,
    /// Carelessly gives a uniformly random answer to every question.
    RandomSpammer,
}

impl WorkerKind {
    /// Faulty workers are the three problematic types targeted by the
    /// worker-driven guidance strategy (§5.3).
    pub fn is_faulty(self) -> bool {
        matches!(
            self,
            WorkerKind::Sloppy | WorkerKind::UniformSpammer | WorkerKind::RandomSpammer
        )
    }

    /// Spammers in the narrow sense (uniform + random).
    pub fn is_spammer(self) -> bool {
        matches!(self, WorkerKind::UniformSpammer | WorkerKind::RandomSpammer)
    }
}

/// A concrete worker: a type plus the parameters governing its answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerProfile {
    kind: WorkerKind,
    /// Probability of answering correctly on a question of zero difficulty
    /// (ignored for spammers).
    accuracy: f64,
    /// The label a uniform spammer always gives (ignored for other types).
    fixed_label: LabelId,
}

/// Default accuracy of a reliable worker when not overridden.
pub const RELIABLE_ACCURACY: f64 = 0.95;
/// Default accuracy of a sloppy worker (mostly wrong, per §2).
pub const SLOPPY_ACCURACY: f64 = 0.35;

impl WorkerProfile {
    /// Creates a profile with an explicit accuracy.
    pub fn new(kind: WorkerKind, accuracy: f64, fixed_label: LabelId) -> Self {
        Self {
            kind,
            accuracy: accuracy.clamp(0.0, 1.0),
            fixed_label,
        }
    }

    /// Creates a profile using the default accuracy of the worker type.
    /// `normal_reliability` is the paper's `r` parameter for normal workers.
    pub fn with_defaults(kind: WorkerKind, normal_reliability: f64, fixed_label: LabelId) -> Self {
        let accuracy = match kind {
            WorkerKind::Reliable => RELIABLE_ACCURACY,
            WorkerKind::Normal => normal_reliability,
            WorkerKind::Sloppy => SLOPPY_ACCURACY,
            WorkerKind::UniformSpammer | WorkerKind::RandomSpammer => 0.0,
        };
        Self::new(kind, accuracy, fixed_label)
    }

    /// The worker's type.
    pub fn kind(&self) -> WorkerKind {
        self.kind
    }

    /// Nominal accuracy on zero-difficulty questions.
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// The label this worker gives when it is a uniform spammer.
    pub fn fixed_label(&self) -> LabelId {
        self.fixed_label
    }

    /// Effective probability of a correct answer on a question of the given
    /// `difficulty ∈ [0, 1]`: difficulty pulls the accuracy linearly toward
    /// the random-guess rate `1/m` (so a maximally difficult question is
    /// answered at chance level even by reliable workers).
    pub fn effective_accuracy(&self, difficulty: f64, num_labels: usize) -> f64 {
        let chance = 1.0 / num_labels.max(1) as f64;
        let d = difficulty.clamp(0.0, 1.0);
        chance + (self.accuracy - chance) * (1.0 - d)
    }

    /// Samples this worker's answer for an object whose correct label is
    /// `truth`, on a question of the given difficulty.
    pub fn answer<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        truth: LabelId,
        num_labels: usize,
        difficulty: f64,
    ) -> LabelId {
        self.answer_with_trap(rng, truth, None, num_labels, difficulty)
    }

    /// Samples this worker's answer for an object that may be *deceptive*: a
    /// question whose surface reading pulls honest workers toward one
    /// specific wrong label (`trap`). Deceptive questions are how the replica
    /// datasets model the hard cases of the real benchmarks, where the crowd
    /// is systematically — not randomly — wrong.
    ///
    /// Honest workers answer the trap label with probability 0.75 minus a
    /// small bonus for their accuracy; spammers ignore the trap entirely.
    pub fn answer_with_trap<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        truth: LabelId,
        trap: Option<LabelId>,
        num_labels: usize,
        difficulty: f64,
    ) -> LabelId {
        debug_assert!(num_labels > 0, "need at least one label");
        match self.kind {
            WorkerKind::UniformSpammer => LabelId(self.fixed_label.index() % num_labels),
            WorkerKind::RandomSpammer => LabelId(rng.random_range(0..num_labels)),
            _ => {
                if num_labels == 1 {
                    return truth;
                }
                if let Some(trap) = trap {
                    // Deceptive question: the majority of honest workers leans
                    // toward the trap label (roughly 60/40 for a typical
                    // worker), so the aggregated answer tends to be wrong but
                    // remains visibly contested — matching how hard questions
                    // behave in the real benchmark datasets.
                    let p_correct = (0.20 + 0.20 * self.accuracy).clamp(0.0, 1.0);
                    let roll: f64 = rng.random();
                    return if roll < p_correct {
                        truth
                    } else if roll < p_correct + 0.75 || num_labels == 2 {
                        LabelId(trap.index() % num_labels)
                    } else {
                        // Residual mass: some other wrong label.
                        let wrong = rng.random_range(0..num_labels - 1);
                        if wrong >= truth.index() {
                            LabelId(wrong + 1)
                        } else {
                            LabelId(wrong)
                        }
                    };
                }
                let p_correct = self.effective_accuracy(difficulty, num_labels);
                if rng.random_bool(p_correct.clamp(0.0, 1.0)) {
                    truth
                } else {
                    // Pick a wrong label uniformly.
                    let wrong = rng.random_range(0..num_labels - 1);
                    if wrong >= truth.index() {
                        LabelId(wrong + 1)
                    } else {
                        LabelId(wrong)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn faulty_and_spammer_classification() {
        assert!(!WorkerKind::Reliable.is_faulty());
        assert!(!WorkerKind::Normal.is_faulty());
        assert!(WorkerKind::Sloppy.is_faulty());
        assert!(WorkerKind::UniformSpammer.is_faulty());
        assert!(WorkerKind::RandomSpammer.is_spammer());
        assert!(!WorkerKind::Sloppy.is_spammer());
    }

    #[test]
    fn uniform_spammer_always_gives_fixed_label() {
        let w = WorkerProfile::with_defaults(WorkerKind::UniformSpammer, 0.7, LabelId(1));
        let mut r = rng();
        for _ in 0..20 {
            assert_eq!(w.answer(&mut r, LabelId(0), 3, 0.0), LabelId(1));
        }
    }

    #[test]
    fn random_spammer_covers_all_labels() {
        let w = WorkerProfile::with_defaults(WorkerKind::RandomSpammer, 0.7, LabelId(0));
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[w.answer(&mut r, LabelId(0), 4, 0.0).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn reliable_worker_is_mostly_correct() {
        let w = WorkerProfile::with_defaults(WorkerKind::Reliable, 0.7, LabelId(0));
        let mut r = rng();
        let correct = (0..1000)
            .filter(|_| w.answer(&mut r, LabelId(1), 2, 0.0) == LabelId(1))
            .count();
        assert!(
            correct > 900,
            "reliable worker was correct only {correct}/1000 times"
        );
    }

    #[test]
    fn normal_worker_tracks_reliability_parameter() {
        let w = WorkerProfile::with_defaults(WorkerKind::Normal, 0.65, LabelId(0));
        assert!((w.accuracy() - 0.65).abs() < 1e-12);
        let mut r = rng();
        let correct = (0..4000)
            .filter(|_| w.answer(&mut r, LabelId(0), 2, 0.0) == LabelId(0))
            .count() as f64
            / 4000.0;
        assert!(
            (correct - 0.65).abs() < 0.05,
            "empirical accuracy {correct}"
        );
    }

    #[test]
    fn difficulty_pulls_accuracy_toward_chance() {
        let w = WorkerProfile::with_defaults(WorkerKind::Reliable, 0.7, LabelId(0));
        assert!((w.effective_accuracy(0.0, 2) - RELIABLE_ACCURACY).abs() < 1e-12);
        assert!((w.effective_accuracy(1.0, 2) - 0.5).abs() < 1e-12);
        assert!((w.effective_accuracy(1.0, 4) - 0.25).abs() < 1e-12);
        let mid = w.effective_accuracy(0.5, 2);
        assert!(mid < RELIABLE_ACCURACY && mid > 0.5);
    }

    #[test]
    fn wrong_answers_never_equal_the_truth_for_binary() {
        let w = WorkerProfile::new(WorkerKind::Sloppy, 0.0, LabelId(0));
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(w.answer(&mut r, LabelId(1), 2, 0.0), LabelId(0));
        }
    }

    #[test]
    fn single_label_tasks_are_always_answered_correctly() {
        let w = WorkerProfile::new(WorkerKind::Sloppy, 0.0, LabelId(0));
        let mut r = rng();
        assert_eq!(w.answer(&mut r, LabelId(0), 1, 0.9), LabelId(0));
    }

    #[test]
    fn deceptive_questions_pull_honest_workers_toward_the_trap() {
        let w = WorkerProfile::with_defaults(WorkerKind::Reliable, 0.9, LabelId(0));
        let mut r = rng();
        let mut trap_answers = 0;
        let mut correct = 0;
        for _ in 0..2000 {
            match w.answer_with_trap(&mut r, LabelId(0), Some(LabelId(1)), 2, 0.0) {
                LabelId(1) => trap_answers += 1,
                LabelId(0) => correct += 1,
                _ => {}
            }
        }
        assert!(
            trap_answers > correct,
            "trap {trap_answers} vs correct {correct}"
        );
        assert!(
            correct > 0,
            "even deceptive questions are answered correctly sometimes"
        );
    }

    #[test]
    fn spammers_ignore_traps() {
        let w = WorkerProfile::with_defaults(WorkerKind::UniformSpammer, 0.9, LabelId(0));
        let mut r = rng();
        assert_eq!(
            w.answer_with_trap(&mut r, LabelId(1), Some(LabelId(1)), 2, 0.0),
            LabelId(0)
        );
    }
}
