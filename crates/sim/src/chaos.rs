//! Chaos workload generation: the paper crowd sliced into deterministic
//! multi-tenant request scripts for fault-injection harnesses.
//!
//! The chaos bench needs traffic that (a) exercises every mutating surface
//! of the validation session — ingest, guidance, expert validation — so a
//! mid-stream crash can land inside any of them, (b) spreads across enough
//! tenants that every shard of a small runtime owns at least one, and
//! (c) is bit-reproducible from a seed, because the harness proves
//! crash-recovery equality against a serial replay of the same script.
//!
//! Everything here is plain data (strings and enums): the harness that
//! drives a service lives in another crate and translates [`ChaosStep`]s
//! into its own wire types, so this crate never depends on the service.
//! The per-tenant crowds are down-scaled copies of the paper's synthetic
//! setup ([`SyntheticConfig::paper_default`]): the same population mix and
//! reliability, fewer objects and workers so a multi-tenant chaos run
//! stays CI-sized.

use crate::generator::SyntheticConfig;
use crowdval_model::ObjectId;
use serde::{Deserialize, Serialize};

/// Parameters of a multi-tenant chaos workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Master seed; tenant `t` draws its crowd from `seed + t`.
    pub seed: u64,
    /// Number of tenant tasks. Keep this at least twice the shard count of
    /// the runtime under test so every shard owns work to lose.
    pub tenants: usize,
    /// Objects per tenant crowd.
    pub objects_per_tenant: usize,
    /// Workers per tenant crowd.
    pub workers_per_tenant: usize,
    /// Votes per ingest batch; guidance and validation are interleaved
    /// between batches.
    pub batch_size: usize,
    /// Expert validations issued after each ingest batch.
    pub validations_per_round: usize,
}

impl ChaosConfig {
    /// The paper-default population scaled for a multi-tenant chaos run.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            seed,
            tenants: 6,
            objects_per_tenant: 24,
            workers_per_tenant: 12,
            batch_size: 48,
            validations_per_round: 2,
        }
    }

    /// A trimmed workload for CI smoke runs.
    pub fn quick(seed: u64) -> Self {
        Self {
            tenants: 4,
            objects_per_tenant: 12,
            workers_per_tenant: 8,
            batch_size: 32,
            validations_per_round: 1,
            ..Self::paper_default(seed)
        }
    }

    /// Generates the full deterministic workload.
    pub fn generate(&self) -> ChaosWorkload {
        assert!(self.tenants > 0, "a chaos workload needs tenants");
        assert!(self.batch_size > 0, "batches must hold at least one vote");
        let tenants = (0..self.tenants).map(|t| self.generate_tenant(t)).collect();
        ChaosWorkload {
            tenants,
            config: self.clone(),
        }
    }

    fn generate_tenant(&self, tenant: usize) -> ChaosTenant {
        let mut base = SyntheticConfig::paper_default(self.seed.wrapping_add(tenant as u64));
        base.name = format!("chaos-tenant-{tenant}");
        base.num_objects = self.objects_per_tenant;
        base.num_workers = self.workers_per_tenant;
        let synth = base.generate();
        let answers = synth.dataset.answers();
        let truth_ref = synth.dataset.ground_truth();

        let label_name = |l: usize| format!("l{l}");
        let labels: Vec<String> = (0..base.num_labels).map(label_name).collect();
        let truth: Vec<(String, String)> = (0..answers.num_objects())
            .map(|o| {
                (
                    format!("o{o}"),
                    label_name(truth_ref.label(ObjectId(o)).index()),
                )
            })
            .collect();

        // Flatten the answer matrix in (object, worker) order — the
        // deterministic arrival order of the script.
        let mut votes = Vec::new();
        for o in 0..answers.num_objects() {
            for w in 0..answers.num_workers() {
                if let Some(label) = answers
                    .matrix()
                    .answer(ObjectId(o), crowdval_model::WorkerId(w))
                {
                    votes.push(ChaosVote {
                        worker: format!("w{w}"),
                        object: format!("o{o}"),
                        label: label_name(label.index()),
                    });
                }
            }
        }

        // Batches of ingest, each followed by a guidance call, a couple of
        // ground-truth expert validations and a posterior probe — so a
        // crash at any arrival index lands inside a different kind of
        // mutation for different seeds.
        let mut steps = Vec::new();
        let mut validated = 0usize;
        for (probed, batch) in votes.chunks(self.batch_size).enumerate() {
            steps.push(ChaosStep::Votes(batch.to_vec()));
            steps.push(ChaosStep::Guidance);
            for _ in 0..self.validations_per_round {
                let (object, label) = &truth[validated % truth.len()];
                steps.push(ChaosStep::Validate {
                    object: object.clone(),
                    label: label.clone(),
                });
                validated += 1;
            }
            steps.push(ChaosStep::Probe {
                object: format!("o{}", probed % answers.num_objects()),
            });
        }

        ChaosTenant {
            task: format!("tenant-{tenant}"),
            labels,
            truth,
            steps,
        }
    }
}

/// One vote as plain data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosVote {
    pub worker: String,
    pub object: String,
    pub label: String,
}

/// One scripted step of a tenant's traffic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosStep {
    /// Ingest a batch of crowd votes.
    Votes(Vec<ChaosVote>),
    /// Ask the session which object the expert should validate next.
    Guidance,
    /// Expert validation with the ground-truth label.
    Validate { object: String, label: String },
    /// Read the posterior of one object (non-mutating probe traffic).
    Probe { object: String },
}

impl ChaosStep {
    /// Whether the step changes session state (probes and guidance reads
    /// do not — guidance *requests* are sheddable in the runtime exactly
    /// because of this).
    pub fn is_mutating(&self) -> bool {
        matches!(self, ChaosStep::Votes(_) | ChaosStep::Validate { .. })
    }
}

/// One tenant's complete script plus the hidden truth for accuracy checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosTenant {
    /// Task name, unique across the workload.
    pub task: String,
    /// The tenant's label vocabulary.
    pub labels: Vec<String>,
    /// Ground truth `(object, label)` pairs, for accuracy deltas.
    pub truth: Vec<(String, String)>,
    /// The scripted traffic in arrival order.
    pub steps: Vec<ChaosStep>,
}

/// A full multi-tenant chaos workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosWorkload {
    pub tenants: Vec<ChaosTenant>,
    pub config: ChaosConfig,
}

impl ChaosWorkload {
    /// Total scripted steps across all tenants (excluding task creation).
    pub fn total_steps(&self) -> usize {
        self.tenants.iter().map(|t| t.steps.len()).sum()
    }

    /// Total votes across all tenants.
    pub fn total_votes(&self) -> usize {
        self.tenants
            .iter()
            .flat_map(|t| &t.steps)
            .map(|s| match s {
                ChaosStep::Votes(batch) => batch.len(),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_workload() {
        let a = ChaosConfig::paper_default(7).generate();
        let b = ChaosConfig::paper_default(7).generate();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChaosConfig::quick(1).generate();
        let b = ChaosConfig::quick(2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn scripts_cover_every_mutation_kind() {
        let workload = ChaosConfig::quick(3).generate();
        assert_eq!(workload.tenants.len(), 4);
        assert!(workload.total_votes() > 0);
        for tenant in &workload.tenants {
            assert!(!tenant.labels.is_empty());
            assert_eq!(tenant.truth.len(), 12);
            let mut kinds = [false; 4];
            for step in &tenant.steps {
                match step {
                    ChaosStep::Votes(batch) => {
                        assert!(!batch.is_empty());
                        kinds[0] = true;
                    }
                    ChaosStep::Guidance => kinds[1] = true,
                    ChaosStep::Validate { object, label } => {
                        kinds[2] = true;
                        // Validations carry the ground-truth label.
                        assert!(tenant.truth.iter().any(|(o, l)| o == object && l == label));
                    }
                    ChaosStep::Probe { .. } => kinds[3] = true,
                }
            }
            assert!(kinds.iter().all(|k| *k), "missing step kind in script");
        }
    }

    #[test]
    fn validations_stay_inside_the_vocabulary() {
        let workload = ChaosConfig::quick(9).generate();
        for tenant in &workload.tenants {
            for step in &tenant.steps {
                if let ChaosStep::Validate { label, .. } = step {
                    assert!(tenant.labels.contains(label));
                }
            }
        }
    }
}
