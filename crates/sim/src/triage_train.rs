//! Training and evaluation harness for the triage convergence predictor.
//!
//! The predictor (`crowdval_triage::ConvergencePredictor`) learns "will the
//! crowd converge to the right label without an expert?" — a question only
//! answerable where ground truth exists, which is exactly what this crate
//! simulates. The harness runs *observe-only* validation sessions
//! ([`crowdval_triage::TriageConfig::observe_only`]: features assembled and
//! churn tracked, but nothing finalized or pre-filtered) over synthetic
//! corpora, harvests one labeled example per object — the session's own
//! [`crowdval_core::TriageFeatures`] vector, labeled by whether the
//! unaided posterior's modal label matches the ground truth — and fits the
//! logistic model by SGD with a deterministic seed and a deterministic
//! shuffle. Same config, same report, bit for bit.
//!
//! The calibrated defaults baked into
//! `crowdval_triage::ConvergencePredictor::calibrated()` were derived with
//! this harness (see ROADMAP.md for the methodology and the numbers).

use crate::generator::SyntheticConfig;
use crowdval_core::{
    ConvergencePredictor, ProcessConfig, TriageConfig, TriageFeatures, ValidationSessionBuilder,
};
use crowdval_model::{ObjectId, Vote};
use serde::{Deserialize, Serialize};

/// One labeled training example: the triage features of an object and
/// whether the unaided crowd converged to its true label.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingExample {
    pub features: TriageFeatures,
    pub converged: bool,
}

/// Harness configuration. Everything is seeded; two runs with the same
/// config produce bit-identical reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriageTrainingConfig {
    /// Training corpora (each a synthetic dataset under a derived seed).
    pub corpora: usize,
    /// Objects per corpus.
    pub objects: usize,
    /// Ingest chunks per corpus — each chunk is one re-aggregation round,
    /// which is what gives the churn feature a history to decay over.
    pub batches: usize,
    /// SGD epochs over the shuffled example pool.
    pub epochs: usize,
    /// Triage knobs: `learning_rate` and `seed` drive the SGD; the
    /// thresholds are forced to observe-only inside the harness.
    pub triage: TriageConfig,
    /// Base seed for corpus generation; corpus `i` uses `seed + i` and the
    /// hold-out corpus `seed + corpora`.
    pub seed: u64,
}

impl TriageTrainingConfig {
    /// The calibration setup: four paper-default training corpora plus one
    /// hold-out, with enough ingest rounds for churn histories to settle.
    pub fn paper_default() -> Self {
        Self {
            corpora: 4,
            objects: 48,
            batches: 4,
            epochs: 30,
            triage: TriageConfig::observe_only(),
            seed: 0x7419_0001,
        }
    }
}

/// What a training run produced: the fitted model, the data shape and the
/// hold-out quality. `weights`/`bias` duplicate the predictor's internals
/// for the calibration report (serializable as plain JSON numbers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    pub predictor: ConvergencePredictor,
    pub examples: usize,
    pub positives: usize,
    pub holdout_examples: usize,
    pub holdout_accuracy: f64,
    pub holdout_log_loss: f64,
    pub weights: Vec<f64>,
    pub bias: f64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic Fisher–Yates over the index range.
fn shuffled_indices(len: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut idx: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

/// Runs one observe-only session over a synthetic corpus and harvests one
/// labeled example per object. The session ingests the votes in `batches`
/// chunks so the churn tracker sees a real round history.
pub fn collect_examples(
    objects: usize,
    batches: usize,
    corpus_seed: u64,
    triage: &TriageConfig,
) -> Vec<TrainingExample> {
    let synth = SyntheticConfig {
        num_objects: objects,
        ..SyntheticConfig::paper_default(corpus_seed)
    }
    .generate();
    let answers = synth.dataset.answers();
    let truth = synth.dataset.ground_truth();
    let votes: Vec<Vote> = answers
        .matrix()
        .iter()
        .map(|(o, w, l)| Vote::new(o, w, l))
        .collect();
    let observe = TriageConfig {
        learning_rate: triage.learning_rate,
        seed: triage.seed,
        ..TriageConfig::observe_only()
    };
    let mut session = ValidationSessionBuilder::empty(answers.num_labels())
        .config(ProcessConfig {
            triage: observe,
            ..ProcessConfig::default()
        })
        .build();
    let chunk = votes.len().div_ceil(batches.max(1)).max(1);
    for batch in votes.chunks(chunk) {
        session.ingest(batch).expect("synthetic votes are in range");
    }
    let unaided = session.current().instantiate();
    (0..objects)
        .map(|o| {
            let object = ObjectId(o);
            TrainingExample {
                features: session
                    .triage_features(object)
                    .expect("object within corpus"),
                converged: unaided.label(object) == truth.label(object),
            }
        })
        .collect()
}

/// Binary log-loss of a score against a boolean label, with the usual
/// clamping away from 0/1.
fn log_loss(score: f64, converged: bool) -> f64 {
    let p = score.clamp(1e-9, 1.0 - 1e-9);
    if converged {
        -p.ln()
    } else {
        -(1.0 - p).ln()
    }
}

/// Trains a fresh predictor by SGD over the pooled training corpora and
/// evaluates it on a hold-out corpus none of the training saw.
/// Deterministic end to end.
pub fn train_convergence_predictor(config: &TriageTrainingConfig) -> TrainingReport {
    let mut pool: Vec<TrainingExample> = Vec::new();
    for i in 0..config.corpora {
        pool.extend(collect_examples(
            config.objects,
            config.batches,
            config.seed + i as u64,
            &config.triage,
        ));
    }
    let positives = pool.iter().filter(|e| e.converged).count();
    let mut predictor = ConvergencePredictor::new(config.triage.seed);
    for epoch in 0..config.epochs {
        let order = shuffled_indices(
            pool.len(),
            config.triage.seed ^ (epoch as u64).wrapping_mul(0x9e37_79b9),
        );
        for i in order {
            let e = &pool[i];
            predictor.train(&e.features, e.converged, config.triage.learning_rate);
        }
    }
    let holdout = collect_examples(
        config.objects,
        config.batches,
        config.seed + config.corpora as u64,
        &config.triage,
    );
    let mut correct = 0usize;
    let mut loss = 0.0;
    for e in &holdout {
        let p = predictor.score(&e.features);
        if (p >= 0.5) == e.converged {
            correct += 1;
        }
        loss += log_loss(p, e.converged);
    }
    let holdout_examples = holdout.len();
    TrainingReport {
        weights: predictor.weights().to_vec(),
        bias: predictor.bias(),
        examples: pool.len(),
        positives,
        holdout_examples,
        holdout_accuracy: correct as f64 / holdout_examples.max(1) as f64,
        holdout_log_loss: loss / holdout_examples.max(1) as f64,
        predictor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> TriageTrainingConfig {
        TriageTrainingConfig {
            corpora: 2,
            objects: 24,
            batches: 3,
            epochs: 10,
            ..TriageTrainingConfig::paper_default()
        }
    }

    #[test]
    fn examples_are_finite_and_labeled() {
        let examples = collect_examples(16, 3, 5, &TriageConfig::observe_only());
        assert_eq!(examples.len(), 16);
        for e in &examples {
            assert!(e.features.is_finite());
            assert!((0.0..=1.0).contains(&e.features.entropy));
        }
        // A small paper-default crowd (spammers included) converges on
        // roughly half its objects unaided — both classes must be present,
        // or the harness could not train anything.
        let positives = examples.iter().filter(|e| e.converged).count();
        assert!(positives > 0 && positives < examples.len());
    }

    #[test]
    fn training_is_deterministic() {
        let a = train_convergence_predictor(&quick());
        let b = train_convergence_predictor(&quick());
        assert_eq!(a, b);
        for (x, y) in a.weights.iter().zip(b.weights.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn trained_model_beats_chance_on_the_holdout() {
        let report = train_convergence_predictor(&quick());
        assert!(report.examples > 0 && report.positives > 0);
        assert!(
            report.holdout_accuracy > 0.6,
            "hold-out accuracy {}",
            report.holdout_accuracy
        );
        assert!(report.holdout_log_loss.is_finite());
    }
}
