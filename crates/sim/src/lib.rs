//! Crowd simulation substrate.
//!
//! The paper's evaluation mixes five real-world datasets with synthetic
//! datasets whose worker population follows the characterization of [Kazai et
//! al., CIKM'11]: reliable workers, normal workers, sloppy workers, uniform
//! spammers and random spammers (Fig. 1 and Appendix A). This crate implements
//!
//! * the worker behaviour models and population mixes,
//! * a deterministic synthetic dataset generator (objects × workers × labels,
//!   worker reliability, spammer ratio, question difficulty, sparsity),
//! * *replicas* of the five real-world datasets of Table 4 (`bb`, `rte`,
//!   `val`, `twt`, `art`) — same shapes, worker-quality profiles tuned so the
//!   starting precision matches the paper's figures (see DESIGN.md §5),
//! * a simulated validating expert, optionally making mistakes with a fixed
//!   probability (§5.5 / §6.7),
//! * answer augmentation used by the "workers-only" cost strategy (§6.8).

pub mod augment;
pub mod chaos;
pub mod difficulty;
pub mod expert_sim;
pub mod generator;
pub mod population;
pub mod replicas;
pub mod streaming;
pub mod triage_train;
pub mod worker_profile;

pub use augment::augment_with_answers;
pub use chaos::{ChaosConfig, ChaosStep, ChaosTenant, ChaosVote, ChaosWorkload};
pub use difficulty::DifficultyModel;
pub use expert_sim::SimulatedExpert;
pub use generator::{SyntheticConfig, SyntheticDataset};
pub use population::PopulationMix;
pub use replicas::{all_replicas, replica, ReplicaName};
pub use streaming::{
    AdversarialConfig, AdversarialScenario, AttackKind, StreamingConfig, StreamingScenario,
};
pub use triage_train::{
    collect_examples, train_convergence_predictor, TrainingExample, TrainingReport,
    TriageTrainingConfig,
};
pub use worker_profile::{WorkerKind, WorkerProfile};
