//! Question-difficulty models (paper Appendix C, "Effects of question
//! difficulty").
//!
//! Difficulty is a per-object value in `[0, 1]`: `0` means even a sloppy
//! worker answers at their nominal accuracy, `1` means every worker answers at
//! chance level. The `art` dataset (scientific-article sentiment) is modelled
//! with a larger share of hard questions than `twt` (tweet sentiment).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How per-object difficulties are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DifficultyModel {
    /// Every object has the same difficulty.
    Constant(f64),
    /// Difficulty is drawn uniformly from `[lo, hi]`.
    Uniform { lo: f64, hi: f64 },
    /// A fraction `hard_fraction` of objects is hard (difficulty
    /// `hard_difficulty`), the rest is easy (difficulty `easy_difficulty`).
    /// This is the knob used to calibrate the real-world replicas: the
    /// aggregated precision plateaus roughly at
    /// `1 − hard_fraction · (1 − 1/m)` for `m` labels.
    Bimodal {
        hard_fraction: f64,
        easy_difficulty: f64,
        hard_difficulty: f64,
    },
}

impl DifficultyModel {
    /// All questions trivially easy.
    pub fn easy() -> Self {
        DifficultyModel::Constant(0.0)
    }

    /// Samples the difficulty of one object.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            DifficultyModel::Constant(d) => d.clamp(0.0, 1.0),
            DifficultyModel::Uniform { lo, hi } => {
                let (lo, hi) = (lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0));
                if hi <= lo {
                    lo
                } else {
                    rng.random_range(lo..hi)
                }
            }
            DifficultyModel::Bimodal {
                hard_fraction,
                easy_difficulty,
                hard_difficulty,
            } => {
                if rng.random_bool(hard_fraction.clamp(0.0, 1.0)) {
                    hard_difficulty.clamp(0.0, 1.0)
                } else {
                    easy_difficulty.clamp(0.0, 1.0)
                }
            }
        }
    }

    /// Samples difficulties for `n` objects.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_model_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = DifficultyModel::Constant(0.3).sample_many(&mut rng, 10);
        assert!(d.iter().all(|&x| (x - 0.3).abs() < 1e-12));
        assert_eq!(DifficultyModel::easy().sample(&mut rng), 0.0);
    }

    #[test]
    fn uniform_model_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = DifficultyModel::Uniform { lo: 0.2, hi: 0.6 }.sample_many(&mut rng, 500);
        assert!(d.iter().all(|&x| (0.2..0.6).contains(&x)));
        // degenerate range collapses to lo
        assert_eq!(
            DifficultyModel::Uniform { lo: 0.4, hi: 0.4 }.sample(&mut rng),
            0.4
        );
    }

    #[test]
    fn bimodal_model_produces_roughly_the_requested_hard_share() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = DifficultyModel::Bimodal {
            hard_fraction: 0.3,
            easy_difficulty: 0.0,
            hard_difficulty: 1.0,
        };
        let d = model.sample_many(&mut rng, 5000);
        let hard = d.iter().filter(|&&x| x > 0.5).count() as f64 / 5000.0;
        assert!((hard - 0.3).abs() < 0.03, "hard share {hard}");
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(DifficultyModel::Constant(7.0).sample(&mut rng), 1.0);
        assert_eq!(DifficultyModel::Constant(-3.0).sample(&mut rng), 0.0);
    }
}
