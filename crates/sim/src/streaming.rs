//! Streaming scenario generation: arrival schedules over synthetic crowds.
//!
//! The batch generator ([`crate::generator`]) materializes a finished answer
//! matrix. Live platforms never see that matrix at once — votes arrive over
//! time, new questions open mid-run, and workers join (and drift away) while
//! the expert validates (§3, §5.4 view maintenance). A [`StreamingConfig`]
//! turns a synthetic dataset into exactly that shape: a deterministic
//! *arrival schedule* over the dataset's votes, split into an initial
//! snapshot plus a sequence of ingestion batches, with configurable object
//! and worker churn.
//!
//! The schedule is simulated with per-entity activation times: every object
//! and every worker is either present from the start or activates at a
//! random point of the stream (the churn knobs), and a vote becomes visible
//! at `max(object activation, worker activation, jitter)`. Sorting by that
//! arrival time yields the stream; everything is deterministic given the
//! seed.

use crate::generator::{SyntheticConfig, SyntheticDataset};
use crowdval_model::{GroundTruth, Vote};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a streaming arrival schedule over a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingConfig {
    /// The underlying crowd and task (objects, workers, reliability, mix).
    pub base: SyntheticConfig,
    /// Fraction of the vote stream already present when the session starts
    /// (the "warm snapshot"); `0.0` starts from an empty session.
    pub initial_fraction: f64,
    /// Votes per arrival batch after the initial snapshot.
    pub batch_size: usize,
    /// Fraction of objects that enter the task only after the stream
    /// started (new questions opening mid-session).
    pub late_object_fraction: f64,
    /// Fraction of workers that join only after the stream started (worker
    /// churn: their votes — including votes on old objects — arrive late).
    pub late_worker_fraction: f64,
}

impl StreamingConfig {
    /// The paper-default crowd as a stream: a quarter of the votes up front,
    /// moderate object and worker churn.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            base: SyntheticConfig::paper_default(seed),
            initial_fraction: 0.25,
            batch_size: 50,
            late_object_fraction: 0.3,
            late_worker_fraction: 0.25,
        }
    }

    /// Generates the dataset and lays its votes out on the arrival schedule.
    pub fn generate(&self) -> StreamingScenario {
        assert!(
            (0.0..=1.0).contains(&self.initial_fraction),
            "initial_fraction must be in [0, 1]"
        );
        assert!(self.batch_size > 0, "batches must hold at least one vote");
        let synth = self.base.generate();
        // A distinct stream from the answer-content stream: arrival times
        // must not correlate with the votes themselves.
        let mut rng = StdRng::seed_from_u64(self.base.seed.wrapping_add(0x5eed_517e));

        let activation = |rng: &mut StdRng, count: usize, late_fraction: f64| -> Vec<f64> {
            (0..count)
                .map(|_| {
                    if rng.random_range(0.0..1.0) < late_fraction {
                        rng.random_range(0.0..1.0)
                    } else {
                        0.0
                    }
                })
                .collect()
        };
        let object_act = activation(
            &mut rng,
            synth.dataset.answers().num_objects(),
            self.late_object_fraction,
        );
        let worker_act = activation(
            &mut rng,
            synth.dataset.answers().num_workers(),
            self.late_worker_fraction,
        );

        let mut timed: Vec<(f64, Vote)> = synth
            .dataset
            .answers()
            .matrix()
            .iter()
            .map(|(o, w, l)| {
                let jitter = rng.random_range(0.0..1.0);
                let t = object_act[o.index()].max(worker_act[w.index()]).max(jitter);
                (t, Vote::new(o, w, l))
            })
            .collect();
        timed.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(a.1.object.cmp(&b.1.object))
                .then(a.1.worker.cmp(&b.1.worker))
        });
        let stream: Vec<Vote> = timed.into_iter().map(|(_, v)| v).collect();

        let initial_len = (self.initial_fraction * stream.len() as f64).floor() as usize;
        let initial = stream[..initial_len].to_vec();
        let batches: Vec<Vec<Vote>> = stream[initial_len..]
            .chunks(self.batch_size)
            .map(<[Vote]>::to_vec)
            .collect();

        StreamingScenario {
            truth: synth.dataset.ground_truth().clone(),
            num_labels: synth.dataset.answers().num_labels(),
            initial,
            batches,
            synth,
            config: self.clone(),
        }
    }
}

/// A synthetic dataset laid out as a vote stream.
#[derive(Debug, Clone)]
pub struct StreamingScenario {
    /// Ground truth over the full eventual object set (known to the
    /// evaluation, not to the session).
    pub truth: GroundTruth,
    /// Label-space size the session must be created with.
    pub num_labels: usize,
    /// Votes present before the session starts.
    pub initial: Vec<Vote>,
    /// Arrival batches, in stream order.
    pub batches: Vec<Vec<Vote>>,
    /// The underlying batch dataset (hidden worker profiles included), for
    /// baselines that get to see everything at once.
    pub synth: SyntheticDataset,
    /// The configuration that produced this scenario.
    pub config: StreamingConfig,
}

impl StreamingScenario {
    /// Total votes across the snapshot and every batch.
    pub fn total_votes(&self) -> usize {
        self.initial.len() + self.batches.iter().map(Vec::len).sum::<usize>()
    }

    /// The whole stream flattened back into one vote list, in arrival order.
    pub fn all_votes(&self) -> Vec<Vote> {
        let mut all = self.initial.clone();
        for batch in &self.batches {
            all.extend_from_slice(batch);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn schedule_is_deterministic_and_complete() {
        let cfg = StreamingConfig::paper_default(9);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.batches, b.batches);
        // Every vote of the batch dataset appears exactly once.
        assert_eq!(
            a.total_votes(),
            a.synth.dataset.answers().matrix().num_answers()
        );
        let seen: BTreeSet<(usize, usize)> = a
            .all_votes()
            .iter()
            .map(|v| (v.object.index(), v.worker.index()))
            .collect();
        assert_eq!(
            seen.len(),
            a.total_votes(),
            "duplicate (object, worker) vote"
        );
    }

    #[test]
    fn initial_fraction_and_batch_size_shape_the_stream() {
        let cfg = StreamingConfig {
            initial_fraction: 0.5,
            batch_size: 100,
            ..StreamingConfig::paper_default(10)
        };
        let s = cfg.generate();
        assert_eq!(s.initial.len(), s.total_votes() / 2);
        for batch in &s.batches[..s.batches.len() - 1] {
            assert_eq!(batch.len(), 100);
        }
    }

    #[test]
    fn churn_delays_late_entities_past_the_snapshot() {
        let cfg = StreamingConfig {
            initial_fraction: 0.2,
            late_object_fraction: 0.5,
            late_worker_fraction: 0.5,
            ..StreamingConfig::paper_default(11)
        };
        let s = cfg.generate();
        let initial_objects: BTreeSet<usize> = s.initial.iter().map(|v| v.object.index()).collect();
        let initial_workers: BTreeSet<usize> = s.initial.iter().map(|v| v.worker.index()).collect();
        let all_objects = s.synth.dataset.answers().num_objects();
        let all_workers = s.synth.dataset.answers().num_workers();
        // With heavy churn the snapshot cannot have seen everyone.
        assert!(initial_objects.len() < all_objects, "no object churn");
        assert!(initial_workers.len() < all_workers, "no worker churn");
    }

    #[test]
    fn zero_initial_fraction_streams_everything() {
        let cfg = StreamingConfig {
            initial_fraction: 0.0,
            ..StreamingConfig::paper_default(12)
        };
        let s = cfg.generate();
        assert!(s.initial.is_empty());
        assert_eq!(
            s.batches.iter().map(Vec::len).sum::<usize>(),
            s.total_votes()
        );
    }
}
