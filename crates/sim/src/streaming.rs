//! Streaming scenario generation: arrival schedules over synthetic crowds.
//!
//! The batch generator ([`crate::generator`]) materializes a finished answer
//! matrix. Live platforms never see that matrix at once — votes arrive over
//! time, new questions open mid-run, and workers join (and drift away) while
//! the expert validates (§3, §5.4 view maintenance). A [`StreamingConfig`]
//! turns a synthetic dataset into exactly that shape: a deterministic
//! *arrival schedule* over the dataset's votes, split into an initial
//! snapshot plus a sequence of ingestion batches, with configurable object
//! and worker churn.
//!
//! The schedule is simulated with per-entity activation times: every object
//! and every worker is either present from the start or activates at a
//! random point of the stream (the churn knobs), and a vote becomes visible
//! at `max(object activation, worker activation, jitter)`. Sorting by that
//! arrival time yields the stream; everything is deterministic given the
//! seed.

use crate::generator::{SyntheticConfig, SyntheticDataset};
use crowdval_model::{GroundTruth, LabelId, ObjectId, Vote, WorkerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Parameters of a streaming arrival schedule over a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingConfig {
    /// The underlying crowd and task (objects, workers, reliability, mix).
    pub base: SyntheticConfig,
    /// Fraction of the vote stream already present when the session starts
    /// (the "warm snapshot"); `0.0` starts from an empty session.
    pub initial_fraction: f64,
    /// Votes per arrival batch after the initial snapshot.
    pub batch_size: usize,
    /// Fraction of objects that enter the task only after the stream
    /// started (new questions opening mid-session).
    pub late_object_fraction: f64,
    /// Fraction of workers that join only after the stream started (worker
    /// churn: their votes — including votes on old objects — arrive late).
    pub late_worker_fraction: f64,
}

impl StreamingConfig {
    /// The paper-default crowd as a stream: a quarter of the votes up front,
    /// moderate object and worker churn.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            base: SyntheticConfig::paper_default(seed),
            initial_fraction: 0.25,
            batch_size: 50,
            late_object_fraction: 0.3,
            late_worker_fraction: 0.25,
        }
    }

    /// Generates the dataset and lays its votes out on the arrival schedule.
    pub fn generate(&self) -> StreamingScenario {
        assert!(
            (0.0..=1.0).contains(&self.initial_fraction),
            "initial_fraction must be in [0, 1]"
        );
        assert!(self.batch_size > 0, "batches must hold at least one vote");
        let synth = self.base.generate();
        // A distinct stream from the answer-content stream: arrival times
        // must not correlate with the votes themselves.
        let mut rng = StdRng::seed_from_u64(self.base.seed.wrapping_add(0x5eed_517e));

        let activation = |rng: &mut StdRng, count: usize, late_fraction: f64| -> Vec<f64> {
            (0..count)
                .map(|_| {
                    if rng.random_range(0.0..1.0) < late_fraction {
                        rng.random_range(0.0..1.0)
                    } else {
                        0.0
                    }
                })
                .collect()
        };
        let object_act = activation(
            &mut rng,
            synth.dataset.answers().num_objects(),
            self.late_object_fraction,
        );
        let worker_act = activation(
            &mut rng,
            synth.dataset.answers().num_workers(),
            self.late_worker_fraction,
        );

        let mut timed: Vec<(f64, Vote)> = synth
            .dataset
            .answers()
            .matrix()
            .iter()
            .map(|(o, w, l)| {
                let jitter = rng.random_range(0.0..1.0);
                let t = object_act[o.index()].max(worker_act[w.index()]).max(jitter);
                (t, Vote::new(o, w, l))
            })
            .collect();
        timed.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(a.1.object.cmp(&b.1.object))
                .then(a.1.worker.cmp(&b.1.worker))
        });
        let stream: Vec<Vote> = timed.into_iter().map(|(_, v)| v).collect();

        let initial_len = (self.initial_fraction * stream.len() as f64).floor() as usize;
        let initial = stream[..initial_len].to_vec();
        let batches: Vec<Vec<Vote>> = stream[initial_len..]
            .chunks(self.batch_size)
            .map(<[Vote]>::to_vec)
            .collect();

        StreamingScenario {
            truth: synth.dataset.ground_truth().clone(),
            num_labels: synth.dataset.answers().num_labels(),
            initial,
            batches,
            synth,
            config: self.clone(),
        }
    }
}

/// A synthetic dataset laid out as a vote stream.
#[derive(Debug, Clone)]
pub struct StreamingScenario {
    /// Ground truth over the full eventual object set (known to the
    /// evaluation, not to the session).
    pub truth: GroundTruth,
    /// Label-space size the session must be created with.
    pub num_labels: usize,
    /// Votes present before the session starts.
    pub initial: Vec<Vote>,
    /// Arrival batches, in stream order.
    pub batches: Vec<Vec<Vote>>,
    /// The underlying batch dataset (hidden worker profiles included), for
    /// baselines that get to see everything at once.
    pub synth: SyntheticDataset,
    /// The configuration that produced this scenario.
    pub config: StreamingConfig,
}

impl StreamingScenario {
    /// Total votes across the snapshot and every batch.
    pub fn total_votes(&self) -> usize {
        self.initial.len() + self.batches.iter().map(Vec::len).sum::<usize>()
    }

    /// The whole stream flattened back into one vote list, in arrival order.
    pub fn all_votes(&self) -> Vec<Vote> {
        let mut all = self.initial.clone();
        for batch in &self.batches {
            all.extend_from_slice(batch);
        }
        all
    }
}

/// The attack archetypes of the adversarial scenario library. Each one maps
/// to a documented failure mode of validation-guided aggregation and gives
/// the online defense a distinct signature to catch:
///
/// * [`AttackKind::Clique`] — a colluding group submits the *same* wrong
///   label everywhere, manufacturing fake consensus that majority-leaning
///   aggregation happily absorbs;
/// * [`AttackKind::Sleeper`] — workers answer honestly long enough to build
///   trust, then switch to constant junk labels (the cold-start blind spot
///   of lifetime approval rates);
/// * [`AttackKind::Drift`] — reliability decays gradually from honest to
///   near-random, defeating any one-shot screening done at sign-up;
/// * [`AttackKind::LabelCopier`] — workers echo the current modal label of
///   whatever object they touch, free-riding on the crowd's work while
///   adding zero information (and amplifying early mistakes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackKind {
    Clique,
    Sleeper,
    Drift,
    LabelCopier,
}

impl AttackKind {
    /// Stable scenario name used in benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Clique => "clique",
            AttackKind::Sleeper => "sleeper",
            AttackKind::Drift => "drift",
            AttackKind::LabelCopier => "copier",
        }
    }
}

/// Parameters of an adversarial streaming scenario: an honest substrate
/// stream with a group of attackers riding along on every arrival batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversarialConfig {
    /// The honest crowd and its arrival schedule.
    pub base: StreamingConfig,
    /// Which attack the riders execute.
    pub attack: AttackKind,
    /// Number of attacking workers (appended after the honest worker ids).
    pub num_attackers: usize,
    /// [`AttackKind::Sleeper`] only: honest answers per attacker before the
    /// switch to junk.
    pub sleeper_honest_votes: usize,
}

impl AdversarialConfig {
    /// A reliable honest substrate (so defended-vs-undefended differences
    /// are attributable to the attack) with a 4-worker attacking group.
    pub fn paper_default(attack: AttackKind, seed: u64) -> Self {
        Self {
            base: StreamingConfig {
                base: SyntheticConfig {
                    reliability: 0.8,
                    mix: crate::population::PopulationMix::all_reliable(),
                    ..SyntheticConfig::paper_default(seed)
                },
                // Attackers ride the batches, so most of the stream should
                // arrive as batches.
                initial_fraction: 0.1,
                ..StreamingConfig::paper_default(seed)
            },
            attack,
            num_attackers: 4,
            sleeper_honest_votes: 12,
        }
    }

    /// Generates the honest stream and splices the attackers' votes into
    /// every batch. Deterministic given the seed.
    pub fn generate(&self) -> AdversarialScenario {
        assert!(self.num_attackers > 0, "an attack needs attackers");
        let honest = self.base.generate();
        let num_labels = honest.num_labels;
        let honest_workers = honest.synth.dataset.answers().num_workers();
        let attackers: Vec<WorkerId> = (0..self.num_attackers)
            .map(|i| WorkerId(honest_workers + i))
            .collect();
        let mut rng = StdRng::seed_from_u64(self.base.base.seed.wrapping_add(0xadd_5eed));

        // Running per-object label histograms over everything generated so
        // far (the copier's view), and per-attacker state.
        let mut modal: Vec<Vec<u32>> = Vec::new();
        let observe = |modal: &mut Vec<Vec<u32>>, v: &Vote| {
            if modal.len() <= v.object.index() {
                modal.resize(v.object.index() + 1, vec![0; num_labels]);
            }
            modal[v.object.index()][v.label.index()] += 1;
        };
        for v in &honest.initial {
            observe(&mut modal, v);
        }

        let mut voted: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); self.num_attackers];
        let mut honest_given = vec![0usize; self.num_attackers];
        let total_batches = honest.batches.len().max(1);
        let mut batches: Vec<Vec<Vote>> = Vec::with_capacity(honest.batches.len());
        for (batch_idx, batch) in honest.batches.iter().enumerate() {
            let mut out = batch.clone();
            for v in batch {
                observe(&mut modal, v);
            }
            let mut objects: Vec<usize> = batch.iter().map(|v| v.object.index()).collect();
            objects.sort_unstable();
            objects.dedup();
            for (a, &attacker) in attackers.iter().enumerate() {
                for &o in &objects {
                    if !voted[a].insert(o) {
                        continue;
                    }
                    let truth = honest.truth.label(ObjectId(o));
                    let wrong = LabelId((truth.index() + 1) % num_labels);
                    let label = match self.attack {
                        AttackKind::Clique => {
                            // The clique agrees per object on a *random*
                            // wrong label, keyed on the scenario seed and
                            // shared by every member. Unlike a fixed
                            // truth→label mapping (which EM can learn and
                            // invert back into signal), the collusion has
                            // no consistent confusion structure — only the
                            // perfect within-clique agreement that breaks
                            // the conditional-independence assumption.
                            let mut h = self.base.base.seed.wrapping_add(0xc11c)
                                ^ (o as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                            h ^= h >> 33;
                            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
                            h ^= h >> 33;
                            let spread = (num_labels as u64 - 1).max(1);
                            LabelId((truth.index() + 1 + (h % spread) as usize) % num_labels)
                        }
                        AttackKind::Sleeper => {
                            if honest_given[a] < self.sleeper_honest_votes {
                                honest_given[a] += 1;
                                truth
                            } else {
                                LabelId(0)
                            }
                        }
                        AttackKind::Drift => {
                            // Reliability decays 0.9 → 0.2 across the stream.
                            let progress = batch_idx as f64 / total_batches as f64;
                            let p = 0.9 - 0.7 * progress;
                            if rng.random_range(0.0..1.0) < p {
                                truth
                            } else {
                                wrong
                            }
                        }
                        AttackKind::LabelCopier => modal
                            .get(o)
                            .and_then(|hist| {
                                let top = *hist.iter().max()?;
                                if top == 0 {
                                    return None;
                                }
                                hist.iter().position(|&c| c == top)
                            })
                            .map_or_else(|| LabelId(rng.random_range(0..num_labels)), LabelId),
                    };
                    let vote = Vote::new(ObjectId(o), attacker, label);
                    observe(&mut modal, &vote);
                    out.push(vote);
                }
            }
            batches.push(out);
        }

        AdversarialScenario {
            name: self.attack.name(),
            truth: honest.truth.clone(),
            num_labels,
            initial: honest.initial.clone(),
            batches,
            attackers,
            honest,
            config: self.clone(),
        }
    }
}

/// An honest vote stream with adversaries spliced into every batch, plus the
/// ground-truth attacker set for evaluating detection.
#[derive(Debug, Clone)]
pub struct AdversarialScenario {
    /// Stable attack name ([`AttackKind::name`]).
    pub name: &'static str,
    /// Ground truth over the honest object set.
    pub truth: GroundTruth,
    /// Label-space size the session must be created with.
    pub num_labels: usize,
    /// Votes present before the session starts (attacker-free — the riders
    /// join with the stream).
    pub initial: Vec<Vote>,
    /// Arrival batches with attacker votes spliced in.
    pub batches: Vec<Vec<Vote>>,
    /// The attacking worker ids (the detection ground truth).
    pub attackers: Vec<WorkerId>,
    /// The untouched honest scenario (the defended-vs-undefended baseline).
    pub honest: StreamingScenario,
    /// The configuration that produced this scenario.
    pub config: AdversarialConfig,
}

impl AdversarialScenario {
    /// Total votes across the snapshot and every batch.
    pub fn total_votes(&self) -> usize {
        self.initial.len() + self.batches.iter().map(Vec::len).sum::<usize>()
    }

    /// Votes cast by attackers across the whole stream.
    pub fn attacker_votes(&self) -> usize {
        let first = self.attackers.first().map_or(usize::MAX, |w| w.index());
        self.batches
            .iter()
            .flatten()
            .filter(|v| v.worker.index() >= first)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn schedule_is_deterministic_and_complete() {
        let cfg = StreamingConfig::paper_default(9);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.batches, b.batches);
        // Every vote of the batch dataset appears exactly once.
        assert_eq!(
            a.total_votes(),
            a.synth.dataset.answers().matrix().num_answers()
        );
        let seen: BTreeSet<(usize, usize)> = a
            .all_votes()
            .iter()
            .map(|v| (v.object.index(), v.worker.index()))
            .collect();
        assert_eq!(
            seen.len(),
            a.total_votes(),
            "duplicate (object, worker) vote"
        );
    }

    #[test]
    fn initial_fraction_and_batch_size_shape_the_stream() {
        let cfg = StreamingConfig {
            initial_fraction: 0.5,
            batch_size: 100,
            ..StreamingConfig::paper_default(10)
        };
        let s = cfg.generate();
        assert_eq!(s.initial.len(), s.total_votes() / 2);
        for batch in &s.batches[..s.batches.len() - 1] {
            assert_eq!(batch.len(), 100);
        }
    }

    #[test]
    fn churn_delays_late_entities_past_the_snapshot() {
        let cfg = StreamingConfig {
            initial_fraction: 0.2,
            late_object_fraction: 0.5,
            late_worker_fraction: 0.5,
            ..StreamingConfig::paper_default(11)
        };
        let s = cfg.generate();
        let initial_objects: BTreeSet<usize> = s.initial.iter().map(|v| v.object.index()).collect();
        let initial_workers: BTreeSet<usize> = s.initial.iter().map(|v| v.worker.index()).collect();
        let all_objects = s.synth.dataset.answers().num_objects();
        let all_workers = s.synth.dataset.answers().num_workers();
        // With heavy churn the snapshot cannot have seen everyone.
        assert!(initial_objects.len() < all_objects, "no object churn");
        assert!(initial_workers.len() < all_workers, "no worker churn");
    }

    #[test]
    fn adversarial_scenarios_are_deterministic_and_duplicate_free() {
        for attack in [
            AttackKind::Clique,
            AttackKind::Sleeper,
            AttackKind::Drift,
            AttackKind::LabelCopier,
        ] {
            let cfg = AdversarialConfig::paper_default(attack, 13);
            let a = cfg.generate();
            let b = cfg.generate();
            assert_eq!(a.batches, b.batches, "{} not deterministic", a.name);
            assert_eq!(a.attackers.len(), 4);
            assert!(a.attacker_votes() > 0, "{}: attackers never voted", a.name);
            // No (object, worker) pair appears twice anywhere in the stream.
            let mut seen = BTreeSet::new();
            for v in a.initial.iter().chain(a.batches.iter().flatten()) {
                assert!(
                    seen.insert((v.object.index(), v.worker.index())),
                    "{}: duplicate vote ({}, {})",
                    a.name,
                    v.object.index(),
                    v.worker.index()
                );
            }
            // The initial snapshot is attacker-free.
            let first_attacker = a.attackers[0].index();
            assert!(a.initial.iter().all(|v| v.worker.index() < first_attacker));
        }
    }

    #[test]
    fn clique_attackers_agree_on_the_wrong_label() {
        let s = AdversarialConfig::paper_default(AttackKind::Clique, 17).generate();
        let first_attacker = s.attackers[0].index();
        let mut attacker_votes = 0;
        let mut agreed: Vec<Option<crowdval_model::LabelId>> = vec![None; s.truth.len()];
        for v in s.batches.iter().flatten() {
            if v.worker.index() >= first_attacker {
                attacker_votes += 1;
                let truth = s.truth.label(v.object);
                assert_ne!(v.label, truth, "clique voted the truth");
                // Every clique member casts the same label per object.
                match &agreed[v.object.index()] {
                    Some(label) => assert_eq!(*label, v.label, "clique split its vote"),
                    None => agreed[v.object.index()] = Some(v.label),
                }
            }
        }
        assert!(attacker_votes > 0);
        // The agreed wrong label is not a deterministic function of the
        // truth: with >2 labels, both wrong alternatives must occur.
        let offsets: std::collections::BTreeSet<usize> = agreed
            .iter()
            .enumerate()
            .filter_map(|(o, l)| {
                l.map(|l| {
                    (l.index() + s.num_labels - s.truth.label(ObjectId(o)).index()) % s.num_labels
                })
            })
            .collect();
        assert!(
            s.num_labels == 2 || offsets.len() > 1,
            "clique is invertible"
        );
    }

    #[test]
    fn sleepers_answer_honestly_before_turning() {
        let cfg = AdversarialConfig::paper_default(AttackKind::Sleeper, 19);
        let s = cfg.generate();
        let first_attacker = s.attackers[0].index();
        let mut per_attacker: Vec<Vec<bool>> = vec![Vec::new(); s.attackers.len()];
        for v in s.batches.iter().flatten() {
            if v.worker.index() >= first_attacker {
                per_attacker[v.worker.index() - first_attacker]
                    .push(v.label == s.truth.label(v.object));
            }
        }
        for correct in &per_attacker {
            let honest_prefix = correct.iter().take_while(|&&c| c).count();
            assert!(
                honest_prefix >= cfg.sleeper_honest_votes.min(correct.len()),
                "sleeper turned early: {honest_prefix} honest votes"
            );
        }
    }

    #[test]
    fn drift_attackers_degrade_over_the_stream() {
        let s = AdversarialConfig::paper_default(AttackKind::Drift, 23).generate();
        let first_attacker = s.attackers[0].index();
        let half = s.batches.len() / 2;
        let accuracy = |batches: &[Vec<Vote>]| {
            let (mut correct, mut total) = (0usize, 0usize);
            for v in batches.iter().flatten() {
                if v.worker.index() >= first_attacker {
                    total += 1;
                    correct += usize::from(v.label == s.truth.label(v.object));
                }
            }
            correct as f64 / total.max(1) as f64
        };
        let early = accuracy(&s.batches[..half]);
        let late = accuracy(&s.batches[half..]);
        assert!(early > late, "no drift: early {early} <= late {late}");
    }

    #[test]
    fn zero_initial_fraction_streams_everything() {
        let cfg = StreamingConfig {
            initial_fraction: 0.0,
            ..StreamingConfig::paper_default(12)
        };
        let s = cfg.generate();
        assert!(s.initial.is_empty());
        assert_eq!(
            s.batches.iter().map(Vec::len).sum::<usize>(),
            s.total_votes()
        );
    }
}
