//! Replicas of the paper's five real-world datasets (Table 4).
//!
//! The original bluebird / rte / valence / tweet / article answer files are
//! not bundled with this repository. Instead we generate *replica* datasets
//! with exactly the Table 4 shapes and worker-quality / question-difficulty
//! profiles calibrated so the aggregated starting precision is close to the
//! paper's Fig. 10 / Fig. 16 starting points (see DESIGN.md §5 for the
//! substitution rationale). Replicas are deterministic: the same name always
//! yields byte-identical data.

use crate::difficulty::DifficultyModel;
use crate::generator::{SyntheticConfig, SyntheticDataset};
use crate::population::PopulationMix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifiers of the five replica datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplicaName {
    /// `bb` — bluebird image tagging (108 objects, 39 workers, 2 labels).
    Bluebird,
    /// `rte` — recognizing textual entailment (800 objects, 164 workers, 2 labels).
    Rte,
    /// `val` — valence / headline sentiment (100 objects, 38 workers, 2 labels).
    Valence,
    /// `twt` — tweet sentiment (300 objects, 58 workers, 2 labels).
    Tweet,
    /// `art` — scientific-article sentiment, the hardest task
    /// (200 objects, 49 workers, 2 labels).
    Article,
}

impl ReplicaName {
    /// All five replicas in the order of Table 4.
    pub const ALL: [ReplicaName; 5] = [
        ReplicaName::Bluebird,
        ReplicaName::Rte,
        ReplicaName::Valence,
        ReplicaName::Tweet,
        ReplicaName::Article,
    ];

    /// The short dataset name used in the paper.
    pub fn short_name(self) -> &'static str {
        match self {
            ReplicaName::Bluebird => "bb",
            ReplicaName::Rte => "rte",
            ReplicaName::Valence => "val",
            ReplicaName::Tweet => "twt",
            ReplicaName::Article => "art",
        }
    }

    /// Application domain as listed in Table 4.
    pub fn domain(self) -> &'static str {
        match self {
            ReplicaName::Bluebird => "Image tagging",
            ReplicaName::Rte => "Semantic analysis",
            ReplicaName::Valence => "Sentiment analysis",
            ReplicaName::Tweet => "Sentiment analysis",
            ReplicaName::Article => "Sentiment analysis",
        }
    }

    /// Parses a short name (`"bb"`, `"rte"`, …).
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|r| r.short_name() == name)
    }

    /// Table 4 shape: (objects, workers, labels).
    pub fn shape(self) -> (usize, usize, usize) {
        match self {
            ReplicaName::Bluebird => (108, 39, 2),
            ReplicaName::Rte => (800, 164, 2),
            ReplicaName::Valence => (100, 38, 2),
            ReplicaName::Tweet => (300, 58, 2),
            ReplicaName::Article => (200, 49, 2),
        }
    }

    /// Target starting precision of the aggregated (pre-validation) result,
    /// read off the paper's Fig. 10 / Fig. 16 y-axis intercepts.
    pub fn target_initial_precision(self) -> f64 {
        match self {
            ReplicaName::Bluebird => 0.86,
            ReplicaName::Rte => 0.92,
            ReplicaName::Valence => 0.80,
            ReplicaName::Tweet => 0.85,
            ReplicaName::Article => 0.63,
        }
    }

    /// Calibration profile: answers per object, worker reliability and the
    /// share of *deceptive* questions (questions the crowd gets
    /// systematically wrong). With honest workers being right on ordinary
    /// questions, the aggregated precision plateaus near
    /// `1 − deceptive_fraction`, which is calibrated to the target.
    fn profile(self) -> ReplicaProfile {
        let target = self.target_initial_precision();
        // Honest workers answer deceptive questions correctly with ~40 %
        // probability, so roughly 80 % of deceptive objects end up wrong
        // after aggregation; scale the share accordingly.
        let deceptive_fraction = ((1.0 - target) / 0.8).clamp(0.0, 1.0);
        let (answers_per_object, reliability) = match self {
            ReplicaName::Bluebird => (20, 0.90),
            ReplicaName::Rte => (15, 0.92),
            ReplicaName::Valence => (12, 0.88),
            ReplicaName::Tweet => (12, 0.90),
            ReplicaName::Article => (12, 0.85),
        };
        ReplicaProfile {
            answers_per_object,
            reliability,
            deceptive_fraction,
        }
    }

    /// Deterministic seed for this replica.
    fn seed(self) -> u64 {
        match self {
            ReplicaName::Bluebird => 0x5151_0001,
            ReplicaName::Rte => 0x5151_0002,
            ReplicaName::Valence => 0x5151_0003,
            ReplicaName::Tweet => 0x5151_0004,
            ReplicaName::Article => 0x5151_0005,
        }
    }
}

impl fmt::Display for ReplicaName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

struct ReplicaProfile {
    answers_per_object: usize,
    reliability: f64,
    deceptive_fraction: f64,
}

/// Builds the generation config of a replica (exposed so experiments can
/// tweak a copy, e.g. to thin out answers for the cost studies).
pub fn replica_config(name: ReplicaName) -> SyntheticConfig {
    let (objects, workers, labels) = name.shape();
    let profile = name.profile();
    SyntheticConfig {
        name: name.short_name().to_string(),
        domain: name.domain().to_string(),
        num_objects: objects,
        num_workers: workers,
        num_labels: labels,
        reliability: profile.reliability,
        mix: PopulationMix {
            reliable: 0.55,
            normal: 0.20,
            sloppy: 0.15,
            uniform_spammer: 0.05,
            random_spammer: 0.05,
        },
        difficulty: DifficultyModel::Uniform { lo: 0.0, hi: 0.15 },
        deceptive_fraction: profile.deceptive_fraction,
        answers_per_object: Some(profile.answers_per_object.min(workers)),
        max_answers_per_worker: None,
        seed: name.seed(),
    }
}

/// Generates one replica dataset.
pub fn replica(name: ReplicaName) -> SyntheticDataset {
    replica_config(name).generate()
}

/// Generates all five replicas in Table 4 order.
pub fn all_replicas() -> Vec<SyntheticDataset> {
    ReplicaName::ALL.into_iter().map(replica).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_model::LabelId;

    #[test]
    fn replicas_match_table4_shapes() {
        for name in ReplicaName::ALL {
            let (objects, workers, labels) = name.shape();
            let d = replica(name);
            let stats = d.dataset.stats();
            assert_eq!(stats.objects, objects, "{name}");
            assert_eq!(stats.workers, workers, "{name}");
            assert_eq!(stats.labels, labels, "{name}");
            assert_eq!(d.dataset.name(), name.short_name());
        }
    }

    #[test]
    fn replicas_are_deterministic() {
        let a = replica(ReplicaName::Valence);
        let b = replica(ReplicaName::Valence);
        assert_eq!(a.dataset, b.dataset);
    }

    #[test]
    fn parse_and_display_round_trip() {
        for name in ReplicaName::ALL {
            assert_eq!(ReplicaName::parse(name.short_name()), Some(name));
            assert_eq!(name.to_string(), name.short_name());
        }
        assert_eq!(ReplicaName::parse("nope"), None);
    }

    #[test]
    fn majority_voting_precision_is_near_the_calibration_target() {
        // The replicas are calibrated on the aggregated precision; majority
        // voting should land within a reasonable band of the target.
        for name in ReplicaName::ALL {
            let d = replica(name);
            let answers = d.dataset.answers();
            let mut correct = 0usize;
            for o in answers.objects() {
                let mut counts = vec![0usize; answers.num_labels()];
                for (_, l) in answers.matrix().answers_for_object(o) {
                    counts[l.index()] += 1;
                }
                let best = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(l, _)| LabelId(l))
                    .unwrap();
                if best == d.dataset.ground_truth().label(o) {
                    correct += 1;
                }
            }
            let precision = correct as f64 / answers.num_objects() as f64;
            let target = name.target_initial_precision();
            assert!(
                (precision - target).abs() < 0.12,
                "{name}: majority precision {precision:.3} vs target {target:.3}"
            );
        }
    }

    #[test]
    fn article_replica_is_hardest() {
        assert!(
            ReplicaName::Article.target_initial_precision()
                < ReplicaName::Tweet.target_initial_precision()
        );
    }

    #[test]
    fn all_replicas_returns_five_distinct_datasets() {
        let all = all_replicas();
        assert_eq!(all.len(), 5);
        let names: Vec<_> = all.iter().map(|d| d.dataset.name().to_string()).collect();
        assert_eq!(names, vec!["bb", "rte", "val", "twt", "art"]);
    }
}
