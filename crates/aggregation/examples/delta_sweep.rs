//! Equivalence sweep (CI-independent sanity harness): random scenarios,
//! exact vs delta hypothesis evaluation, worst divergence among converged
//! runs.
use crowdval_aggregation::{Aggregator, EmConfig, IncrementalEm, ScoringMode};
use crowdval_model::{ExpertValidation, HypothesisOverlay, LabelId, ObjectId};
use crowdval_sim::{PopulationMix, SyntheticConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut worst = 0.0f64;
    let (mut skipped, mut compared) = (0usize, 0usize);
    let config = EmConfig::paper_default();
    for seed in 0..400u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let num_objects = rng.random_range(12..30usize);
        let num_workers = rng.random_range(6..16usize);
        let reliability = rng.random_range(0.6..0.95);
        let spammer_ratio = rng.random_range(0.0..0.4);
        let answers_per_object = rng.random_range(4..10usize).min(num_workers);
        let synth = SyntheticConfig {
            num_objects,
            num_workers,
            reliability,
            mix: PopulationMix::with_spammer_ratio(spammer_ratio),
            answers_per_object: Some(answers_per_object),
            ..SyntheticConfig::paper_default(seed)
        }
        .generate();
        let answers = synth.dataset.answers().clone();
        let truth = synth.dataset.ground_truth().clone();
        let validate = rng.random_range(2..6usize);
        let mut expert = ExpertValidation::empty(num_objects);
        for o in 0..validate {
            expert.set(ObjectId(o), truth.label(ObjectId(o)));
        }
        let iem = IncrementalEm::default();
        let current = iem.conclude(&answers, &expert, None);
        for object in expert.unvalidated_objects().into_iter().take(4) {
            for l in 0..answers.num_labels() {
                let label = LabelId(l);
                if current.assignment().prob(object, label) <= 1e-6 {
                    continue;
                }
                let hyp = HypothesisOverlay::new(&expert, object, label);
                let exact = iem.conclude_hypothesis(&answers, &hyp, &current, ScoringMode::Exact);
                let delta = iem.conclude_hypothesis(&answers, &hyp, &current, ScoringMode::Delta);
                if exact.em_iterations() >= config.max_iterations
                    || delta.em_iterations() >= config.max_iterations
                {
                    skipped += 1;
                    continue;
                }
                compared += 1;
                let diff = exact.assignment().max_abs_diff(delta.assignment());
                if diff > worst {
                    worst = diff;
                }
                if diff > 0.01 {
                    println!(
                        "seed {seed} n={num_objects} k={num_workers} hyp=({object},{label}): diff {diff:.6}"
                    );
                }
            }
        }
    }
    println!("compared {compared}, skipped {skipped}, worst divergence: {worst:.6}");
}
