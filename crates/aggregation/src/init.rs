//! Initialization strategies for the EM estimators (paper §6.4, "Benefits of
//! incrementality": traditional EM restarts from a random probability
//! estimation, i-EM warm-starts from the previous validation iteration).

use crate::majority::MajorityVoting;
use crowdval_model::{AnswerSet, AssignmentMatrix, ExpertValidation};
use crowdval_numerics::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the first assignment-matrix estimate of a batch EM run is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitStrategy {
    /// Normalized vote histograms (the usual Dawid–Skene initialization).
    MajorityVote,
    /// Uniform distribution for every object.
    Uniform,
    /// Independent random distributions, seeded for reproducibility. This is
    /// the "random probability estimation" the paper contrasts i-EM against.
    Random { seed: u64 },
}

impl InitStrategy {
    /// Builds the initial assignment matrix, always clamping objects that
    /// already have an expert validation to a point mass.
    pub fn initial_assignment(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
    ) -> AssignmentMatrix {
        let n = answers.num_objects();
        let m = answers.num_labels();
        let mut assignment = match self {
            InitStrategy::MajorityVote => MajorityVoting::assignment(answers, expert),
            InitStrategy::Uniform => AssignmentMatrix::uniform(n, m),
            InitStrategy::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut raw = Matrix::zeros(n, m);
                for o in 0..n {
                    for l in 0..m {
                        // Strictly positive weights so normalization is safe.
                        raw[(o, l)] = rng.random_range(0.05..1.0);
                    }
                }
                AssignmentMatrix::from_matrix(raw)
            }
        };
        for (o, l) in expert.iter() {
            assignment.set_certain(o, l);
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_model::{LabelId, ObjectId, WorkerId};

    fn answers() -> AnswerSet {
        let mut n = AnswerSet::new(3, 2, 2);
        n.record_answer(ObjectId(0), WorkerId(0), LabelId(0))
            .unwrap();
        n.record_answer(ObjectId(0), WorkerId(1), LabelId(0))
            .unwrap();
        n.record_answer(ObjectId(1), WorkerId(0), LabelId(1))
            .unwrap();
        n
    }

    #[test]
    fn majority_init_reflects_votes() {
        let a =
            InitStrategy::MajorityVote.initial_assignment(&answers(), &ExpertValidation::empty(3));
        assert_eq!(a.prob(ObjectId(0), LabelId(0)), 1.0);
        assert_eq!(a.most_likely(ObjectId(1)).0, LabelId(1));
    }

    #[test]
    fn uniform_init_is_uniform() {
        let a = InitStrategy::Uniform.initial_assignment(&answers(), &ExpertValidation::empty(3));
        assert!((a.prob(ObjectId(2), LabelId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_init_is_reproducible_and_stochastic() {
        let e = ExpertValidation::empty(3);
        let a = InitStrategy::Random { seed: 5 }.initial_assignment(&answers(), &e);
        let b = InitStrategy::Random { seed: 5 }.initial_assignment(&answers(), &e);
        let c = InitStrategy::Random { seed: 6 }.initial_assignment(&answers(), &e);
        assert_eq!(a.matrix(), b.matrix());
        assert_ne!(a.matrix(), c.matrix());
        assert!(a.matrix().is_row_stochastic(1e-9));
    }

    #[test]
    fn expert_validations_are_clamped_in_every_strategy() {
        let mut e = ExpertValidation::empty(3);
        e.set(ObjectId(2), LabelId(1));
        for strategy in [
            InitStrategy::MajorityVote,
            InitStrategy::Uniform,
            InitStrategy::Random { seed: 1 },
        ] {
            let a = strategy.initial_assignment(&answers(), &e);
            assert_eq!(a.prob(ObjectId(2), LabelId(1)), 1.0, "{strategy:?}");
        }
    }
}
