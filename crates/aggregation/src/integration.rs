//! Expert-input integration modes (paper §6.3, "Expert validation as
//! first-class citizen").
//!
//! The paper compares two ways of using expert feedback:
//!
//! * **Separate** — the proposed approach: expert input enters the model
//!   through the validation function `e` and acts as ground truth (this is
//!   what [`crate::IncrementalEm`] does).
//! * **Combined** — the naive alternative: each expert answer is added to the
//!   answer matrix as if it came from one more crowd worker, and aggregation
//!   runs without any notion of validations. Incorrect crowd answers can then
//!   out-vote the expert.

use crate::em::BatchEm;
use crate::iem::IncrementalEm;
use crate::Aggregator;
use crowdval_model::{AnswerSet, ExpertValidation, ProbabilisticAnswerSet, WorkerId};
use serde::{Deserialize, Serialize};

/// How expert answers are integrated into the aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExpertIntegration {
    /// Expert validations as first-class ground truth (the paper's approach).
    Separate,
    /// Expert answers appended to the answer matrix as an additional worker.
    Combined,
}

/// Returns a copy of the answer set with one extra worker whose answers are
/// the expert validations collected so far.
pub fn answer_set_with_expert_as_worker(
    answers: &AnswerSet,
    expert: &ExpertValidation,
) -> AnswerSet {
    let mut extended = AnswerSet::new(
        answers.num_objects(),
        answers.num_workers() + 1,
        answers.num_labels(),
    );
    for (o, w, l) in answers.matrix().iter() {
        extended
            .record_answer(o, w, l)
            .expect("copying answers preserves index ranges");
    }
    let expert_worker = WorkerId(answers.num_workers());
    for (o, l) in expert.iter() {
        extended
            .record_answer(o, expert_worker, l)
            .expect("expert answers use in-range labels");
    }
    extended
}

/// Aggregates with the *Combined* strategy: expert answers become ordinary
/// crowd answers for an extra worker and EM runs with an empty validation
/// function.
pub fn aggregate_combined(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    em: &BatchEm,
) -> ProbabilisticAnswerSet {
    let extended = answer_set_with_expert_as_worker(answers, expert);
    em.conclude(
        &extended,
        &ExpertValidation::empty(extended.num_objects()),
        None,
    )
}

/// Aggregates with the chosen integration mode (used by the Fig. 5 experiment
/// to compare the two head-to-head).
pub fn aggregate_with_integration(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    previous: Option<&ProbabilisticAnswerSet>,
    mode: ExpertIntegration,
) -> ProbabilisticAnswerSet {
    match mode {
        ExpertIntegration::Separate => IncrementalEm::default().conclude(answers, expert, previous),
        ExpertIntegration::Combined => aggregate_combined(answers, expert, &BatchEm::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_model::{LabelId, ObjectId};
    use crowdval_sim::SyntheticConfig;

    #[test]
    fn expert_becomes_an_additional_worker() {
        let synth = SyntheticConfig::paper_default(9).generate();
        let answers = synth.dataset.answers();
        let mut expert = ExpertValidation::empty(answers.num_objects());
        expert.set(ObjectId(0), LabelId(1));
        expert.set(ObjectId(5), LabelId(0));
        let extended = answer_set_with_expert_as_worker(answers, &expert);
        assert_eq!(extended.num_workers(), answers.num_workers() + 1);
        let expert_worker = WorkerId(answers.num_workers());
        assert_eq!(
            extended.matrix().answer(ObjectId(0), expert_worker),
            Some(LabelId(1))
        );
        assert_eq!(extended.matrix().worker_answer_count(expert_worker), 2);
        assert_eq!(
            extended.matrix().num_answers(),
            answers.matrix().num_answers() + 2
        );
    }

    #[test]
    fn separate_integration_always_honours_the_expert() {
        let synth = SyntheticConfig::paper_default(10).generate();
        let answers = synth.dataset.answers();
        let truth = synth.dataset.ground_truth();
        let mut expert = ExpertValidation::empty(answers.num_objects());
        for o in 0..10 {
            expert.set(ObjectId(o), truth.label(ObjectId(o)));
        }
        let p = aggregate_with_integration(answers, &expert, None, ExpertIntegration::Separate);
        for o in 0..10 {
            assert_eq!(p.instantiate().label(ObjectId(o)), truth.label(ObjectId(o)));
        }
    }

    #[test]
    fn combined_integration_can_be_outvoted_by_the_crowd() {
        // Build an answer set where every worker gives the wrong label for
        // object 0; a single expert answer added as "one more worker" cannot
        // flip the result, whereas the separate integration can.
        let mut answers = AnswerSet::new(4, 5, 2);
        for o in 0..4 {
            for w in 0..5 {
                let truth = LabelId(o % 2);
                let ans = if o == 0 { LabelId(1) } else { truth };
                answers
                    .record_answer(ObjectId(o), crowdval_model::WorkerId(w), ans)
                    .unwrap();
            }
        }
        let mut expert = ExpertValidation::empty(4);
        expert.set(ObjectId(0), LabelId(0));

        let combined =
            aggregate_with_integration(&answers, &expert, None, ExpertIntegration::Combined);
        let separate =
            aggregate_with_integration(&answers, &expert, None, ExpertIntegration::Separate);
        assert_eq!(combined.instantiate().label(ObjectId(0)), LabelId(1));
        assert_eq!(separate.instantiate().label(ObjectId(0)), LabelId(0));
    }

    #[test]
    fn combined_preserves_object_and_label_counts() {
        let synth = SyntheticConfig::paper_default(12).generate();
        let answers = synth.dataset.answers();
        let expert = ExpertValidation::empty(answers.num_objects());
        let p = aggregate_combined(answers, &expert, &BatchEm::default());
        assert_eq!(p.num_objects(), answers.num_objects());
        assert_eq!(p.num_labels(), answers.num_labels());
        assert_eq!(p.num_workers(), answers.num_workers() + 1);
    }
}
