//! Majority voting (paper §2, Table 1's "Majority Voting" column).
//!
//! The simplest aggregation baseline: each object's label distribution is the
//! normalized vote histogram. Expert validations, when present, override the
//! votes with a point mass (they are "first-class" here too so that majority
//! voting can serve as a drop-in aggregator inside the validation process).

use crate::Aggregator;
use crowdval_model::{
    AnswerSet, AssignmentMatrix, ConfusionMatrix, DeterministicAssignment, ExpertValidation,
    ProbabilisticAnswerSet,
};
use crowdval_numerics::Matrix;

/// Majority-voting aggregator.
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVoting;

impl MajorityVoting {
    /// Computes the vote-histogram assignment matrix for an answer set,
    /// clamping validated objects to the expert's label.
    pub fn assignment(answers: &AnswerSet, expert: &ExpertValidation) -> AssignmentMatrix {
        let n = answers.num_objects();
        let m = answers.num_labels();
        let mut raw = Matrix::zeros(n, m);
        for o in answers.objects() {
            let mut any_vote = false;
            for (_, l) in answers.matrix().answers_for_object(o) {
                raw[(o.index(), l.index())] += 1.0;
                any_vote = true;
            }
            if !any_vote {
                // No evidence at all: uniform.
                for l in 0..m {
                    raw[(o.index(), l)] = 1.0;
                }
            }
        }
        let mut assignment = AssignmentMatrix::from_matrix(raw);
        for (o, l) in expert.iter() {
            assignment.set_certain(o, l);
        }
        assignment
    }

    /// Convenience: the deterministic majority-vote result without any expert
    /// input (ties break toward the smaller label index).
    pub fn vote(answers: &AnswerSet) -> DeterministicAssignment {
        Self::assignment(answers, &ExpertValidation::empty(answers.num_objects())).instantiate()
    }
}

impl Aggregator for MajorityVoting {
    fn conclude(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        _previous: Option<&ProbabilisticAnswerSet>,
    ) -> ProbabilisticAnswerSet {
        let assignment = Self::assignment(answers, expert);
        let priors = assignment.label_priors();
        // Majority voting does not model per-worker reliability; expose
        // uninformative confusion matrices so downstream consumers still get a
        // complete probabilistic answer set.
        let confusions =
            vec![ConfusionMatrix::uniform(answers.num_labels()); answers.num_workers()];
        ProbabilisticAnswerSet::new(assignment, confusions, priors, 0)
    }

    fn name(&self) -> &'static str {
        "majority-voting"
    }

    fn snapshot_state(&self) -> Option<crate::AggregatorState> {
        Some(crate::AggregatorState::MajorityVoting)
    }
}

/// Free-function convenience wrapper around [`MajorityVoting::vote`].
pub fn majority_vote(answers: &AnswerSet) -> DeterministicAssignment {
    MajorityVoting::vote(answers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_model::{LabelId, ObjectId, WorkerId};

    /// The running example of the paper's Table 1: 5 workers, 4 objects,
    /// 4 labels.
    fn table1() -> AnswerSet {
        let mut n = AnswerSet::new(4, 5, 4);
        let answers = [
            // (object, [labels 1..4 per worker W1..W5]) converted to 0-based.
            (0, [2, 3, 2, 2, 3]),
            (1, [3, 2, 3, 2, 3]),
            (2, [1, 4, 1, 4, 3]),
            (3, [4, 1, 2, 1, 3]),
        ];
        for (o, labels) in answers {
            for (w, l) in labels.into_iter().enumerate() {
                n.record_answer(ObjectId(o), WorkerId(w), LabelId(l - 1))
                    .unwrap();
            }
        }
        n
    }

    #[test]
    fn table1_majority_matches_the_paper() {
        let d = majority_vote(&table1());
        // o1 -> 2, o2 -> 3 (labels are 1-based in the paper).
        assert_eq!(d.label(ObjectId(0)), LabelId(1));
        assert_eq!(d.label(ObjectId(1)), LabelId(2));
        // o3 is a tie between 1 and 4; deterministic tie-break picks 1.
        assert_eq!(d.label(ObjectId(2)), LabelId(0));
        // o4's majority is 1 (two votes) even though the correct label is 2.
        assert_eq!(d.label(ObjectId(3)), LabelId(0));
    }

    #[test]
    fn vote_histograms_are_distributions() {
        let a = MajorityVoting::assignment(&table1(), &ExpertValidation::empty(4));
        assert!(a.matrix().is_row_stochastic(1e-9));
        assert!((a.prob(ObjectId(0), LabelId(1)) - 0.6).abs() < 1e-12);
        assert!((a.prob(ObjectId(0), LabelId(2)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn expert_input_overrides_votes() {
        let mut e = ExpertValidation::empty(4);
        e.set(ObjectId(3), LabelId(1));
        let a = MajorityVoting::assignment(&table1(), &e);
        assert_eq!(a.prob(ObjectId(3), LabelId(1)), 1.0);
        let p = MajorityVoting.conclude(&table1(), &e, None);
        assert_eq!(p.instantiate().label(ObjectId(3)), LabelId(1));
    }

    #[test]
    fn objects_without_votes_are_uniform() {
        let n = AnswerSet::new(2, 2, 2); // nobody answered anything
        let a = MajorityVoting::assignment(&n, &ExpertValidation::empty(2));
        assert!((a.prob(ObjectId(0), LabelId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conclude_produces_complete_probabilistic_answer_set() {
        let p = MajorityVoting.conclude(&table1(), &ExpertValidation::empty(4), None);
        assert_eq!(p.num_objects(), 4);
        assert_eq!(p.num_workers(), 5);
        assert_eq!(p.num_labels(), 4);
        assert_eq!(MajorityVoting.name(), "majority-voting");
        assert!((p.priors().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
