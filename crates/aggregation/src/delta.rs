//! Neighborhood-scoped delta propagation for warm-started hypothesis scoring
//! (paper §5.4, the "view maintenance" idea applied *within* one aggregation
//! run).
//!
//! Pinning one hypothetical validation `e(o) = l` perturbs the model locally:
//! only the workers who answered `o` see their confusion-matrix evidence
//! change, and only the objects *those* workers answered can feel the
//! re-estimated confusion rows. The exact warm start re-runs full
//! (Jacobi-style) E/M iterations over all `N` objects until nothing moves —
//! on a barely-better-than-chance crowd that decay is slow, because each
//! basin flip the pin triggers costs a *pair* of full passes before the next
//! object can react to it.
//!
//! [`run_delta_em_in_workspace`] instead splits the run into a scoped
//! propagation phase and an accelerated finishing phase:
//!
//! 1. **Seeding** — the pinned object is clamped to its hypothetical label;
//!    it forms the initial changed set.
//! 2. **Frontier expansion** — each scoped round re-estimates only the
//!    confusion rows of the workers who answered a changed object and
//!    re-runs the E-step over those workers' neighborhoods; rows that move
//!    beyond the EM tolerance seed the next frontier. Priors ride along via
//!    incrementally maintained column sums. Local perturbations drain the
//!    frontier here in a handful of cheap rounds.
//! 3. **Aitken-accelerated full-map polish** — the standard full-corpus E/M
//!    loop then finishes the job under the *same* convergence criterion as
//!    the exact path, with one addition: when three successive iterates
//!    show a stable geometric residual decay (the signature of the
//!    near-chance crowd's slow EM, where the exact path burns tens of full
//!    passes), the sequence is extrapolated to its limit (vector Aitken Δ²)
//!    and plain iterations re-certify convergence from there. The polish
//!    also folds in the global effects the frontier cannot see (clamping
//!    the pin shifts every label prior by `O(1/N)`, which matters for
//!    prior-dominated, sparsely answered rows far from the neighborhood).
//!
//! At termination the state satisfies the exact path's criterion — no
//! assignment row moves beyond the EM tolerance under a full E-step of the
//! fully re-estimated model — so delta and exact can only diverge where the
//! likelihood itself is near-bifurcating (the same caveat that applies to
//! any warm start). The property tests assert delta ≈ exact within the EM
//! tolerance across random scenarios, with [`crate::ScoringMode::Exact`] as
//! the escape hatch for callers that need the reference trajectory.

use crate::config::EmConfig;
use crate::em::{
    e_step_row, expectation_step_ws, m_step_worker, maximization_step_ws, priors_from_assignment_ws,
};
use crate::workspace::{refresh_worker_logs, EmWorkspace};
use crowdval_model::{AnswerSet, ObjectId, ValidationView};

/// Runs a delta-scoped re-estimation inside the workspace, seeded at one
/// pinned object. The workspace must hold the full warm-start state
/// ([`EmWorkspace::seed_from`] with the previous probabilistic answer set);
/// `seed_object` is the object whose (hypothetical) validation in `view`
/// differs from that state. On return the workspace holds the updated
/// assignment/confusions/priors; the return value is the number of delta
/// iterations (propagation sweeps and polish iterations both count).
/// Allocation-free once the workspace is warm.
pub fn run_delta_em_in_workspace<V: ValidationView>(
    answers: &AnswerSet,
    view: &V,
    ws: &mut EmWorkspace,
    config: &EmConfig,
    seed_object: ObjectId,
) -> usize {
    run_delta_em_from_dirty(answers, view, ws, config, &[seed_object])
}

/// The arrival-centric generalization of the delta path: seeds the dirty set
/// with an arbitrary list of touched objects instead of a single pinned
/// hypothesis. Streaming ingestion uses this with the objects that received
/// new votes (new objects included — their workspace rows start at the
/// priors and are recomputed here), after which the frontier expands through
/// the answering workers exactly as in the pin-seeded case, and the same
/// Aitken-polished full-map phase certifies the exact path's convergence
/// criterion.
///
/// `seeds` must not contain duplicates (the session deduplicates while
/// recording arrivals); an empty seed list degenerates to the polish phase
/// alone, which still certifies convergence of the warm-start state.
pub fn run_delta_em_from_dirty<V: ValidationView>(
    answers: &AnswerSet,
    view: &V,
    ws: &mut EmWorkspace,
    config: &EmConfig,
    seeds: &[ObjectId],
) -> usize {
    ws.changed_objects.clear();
    ws.next_changed.clear();
    ws.dirty_workers.clear();

    // Sweep 1 (mirrors the exact path's initial E-step, scoped to the
    // seeds): recompute each touched object's row under `view` — clamping
    // validated seeds, re-deriving the posterior of the rest from the cached
    // log tables.
    let mut iterations = 1;
    ws.stat_iterations += 1;
    recompute_rows_scoped(answers, view, ws, seeds, None);
    for &seed in seeds {
        ws.changed_objects.push(seed);
    }

    // Phase 2: scoped M+E rounds, capped low. Local perturbations drain the
    // frontier in a handful of rounds; when the perturbation goes global the
    // rounds degenerate into full-corpus passes with no acceleration, and
    // the Aitken-accelerated polish below is strictly better at finishing
    // those — it must always get its turn anyway, being what certifies the
    // exact path's convergence criterion.
    let scoped_cap = 6.min((config.max_iterations / 2).max(1));
    scoped_rounds(answers, view, ws, config, scoped_cap, &mut iterations);
    ws.changed_objects.clear();

    // Phase 3: Aitken-accelerated full-map polish — the standard E/M loop
    // with the exact path's convergence criterion, started from the
    // propagated state. On a barely-better-than-chance crowd the residual
    // decays geometrically with a contraction ratio close to 1 (tens of
    // full iterations in the exact path); once three successive iterates
    // establish a stable ratio, the sequence is extrapolated to its limit
    // and plain EM iterations re-certify convergence from there. The
    // certificate is unchanged — the loop only exits when a full E-step
    // moves nothing beyond the tolerance.
    let mut have_prev = false;
    while iterations < config.max_iterations {
        maximization_step_ws(answers, ws, config.smoothing_alpha);
        priors_from_assignment_ws(ws);
        expectation_step_ws(answers, view, ws, true);
        iterations += 1;
        ws.stat_iterations += 1;
        let delta = ws.next_assignment.max_abs_diff(&ws.assignment);
        if delta <= config.tolerance {
            std::mem::swap(&mut ws.assignment, &mut ws.next_assignment);
            break;
        }
        if have_prev && try_aitken_extrapolation(view, ws) {
            // `assignment` now holds the extrapolated state; the sequence
            // restarts (prev/next are stale until two fresh iterates exist).
            have_prev = false;
        } else {
            // Rotate the iterate window: prev ← x_k, assignment ← x_{k+1}.
            std::mem::swap(&mut ws.prev_assignment, &mut ws.assignment);
            std::mem::swap(&mut ws.assignment, &mut ws.next_assignment);
            have_prev = true;
        }
    }
    // Report confusions/priors consistent with the final assignment, exactly
    // as the exact loop does.
    maximization_step_ws(answers, ws, config.smoothing_alpha);
    priors_from_assignment_ws(ws);
    iterations
}

/// Vector Aitken Δ² step over the iterate window `(prev, assignment, next)`
/// = `(x_{k−1}, x_k, x_{k+1})`: if the residual decays geometrically
/// (`x_{k+1} − x* ≈ ρ (x_k − x*)` with a stable direction), writes the
/// extrapolated limit into `assignment` (rows re-normalized, validated rows
/// untouched — their deltas are zero) and returns `true`. Conservative
/// guards keep it a no-op whenever the decay is not cleanly geometric; the
/// subsequent plain iterations always re-verify the usual criterion, so a
/// bad extrapolation can cost iterations but never an unconverged result.
fn try_aitken_extrapolation<V: ValidationView>(view: &V, ws: &mut EmWorkspace) -> bool {
    let prev = &ws.prev_assignment;
    let cur = &ws.assignment;
    let next = &ws.next_assignment;
    let (mut d11, mut d12, mut d22) = (0.0f64, 0.0f64, 0.0f64);
    for ((p, c), n) in prev
        .as_slice()
        .iter()
        .zip(cur.as_slice())
        .zip(next.as_slice())
    {
        let d1 = c - p;
        let d2 = n - c;
        d11 += d1 * d1;
        d12 += d1 * d2;
        d22 += d2 * d2;
    }
    if d11 <= 0.0 || d22 <= 0.0 {
        return false;
    }
    let rho = d12 / d11;
    // Require a genuinely slow, direction-stable geometric decay: fast
    // decays converge fine on their own, ratios near (or above) 1 make the
    // `ρ/(1−ρ)` gain explode, and a wandering direction means the dominant
    // eigenvalue has not separated yet.
    let cos_sq = d12 * d12 / (d11 * d22);
    if !(0.30..=0.97).contains(&rho) || cos_sq < 0.85 {
        return false;
    }
    let gain = rho / (1.0 - rho);
    let m = ws.num_labels;
    for o in 0..ws.num_objects {
        if view.validated(ObjectId(o)).is_some() {
            continue;
        }
        let mut sum = 0.0f64;
        for l in 0..m {
            let c = ws.assignment[(o, l)];
            let n = ws.next_assignment[(o, l)];
            let x = (n + gain * (n - c)).max(0.0);
            ws.assignment[(o, l)] = x;
            sum += x;
        }
        if sum > 0.0 && sum.is_finite() {
            for l in 0..m {
                ws.assignment[(o, l)] /= sum;
            }
        } else {
            // Degenerate extrapolation for this row: keep the plain iterate.
            for l in 0..m {
                ws.assignment[(o, l)] = ws.next_assignment[(o, l)];
            }
        }
    }
    // Validated rows: keep the freshly clamped iterate.
    for o in 0..ws.num_objects {
        if view.validated(ObjectId(o)).is_some() {
            for l in 0..m {
                ws.assignment[(o, l)] = ws.next_assignment[(o, l)];
            }
        }
    }
    true
}

/// The scoped M+E rounds of the delta loop: each round re-estimates the
/// confusion rows of the workers who answered a changed object and re-runs
/// the E-step over those workers' neighborhoods, until the frontier drains
/// or `cap` iterations have been spent. Priors ride along via the
/// incrementally maintained column sums (Eq. 3 without the full-matrix
/// pass).
fn scoped_rounds<V: ValidationView>(
    answers: &AnswerSet,
    view: &V,
    ws: &mut EmWorkspace,
    config: &EmConfig,
    cap: usize,
    iterations: &mut usize,
) {
    let m = answers.num_labels();
    let n = ws.num_objects;
    while !ws.changed_objects.is_empty() && *iterations < cap {
        // (a) The workers who answered a changed object form the scoped
        // M-step's work list.
        for i in 0..ws.changed_objects.len() {
            let o = ws.changed_objects[i];
            for (w, _) in answers.matrix().answers_for_object(o) {
                if !ws.worker_dirty[w.index()] {
                    ws.worker_dirty[w.index()] = true;
                    ws.dirty_workers.push(w);
                }
            }
        }

        // (b) Scoped M-step: re-estimate the dirty workers' confusion rows
        // from the current assignment and refresh their cached log rows.
        {
            let EmWorkspace {
                assignment,
                confusions,
                counts,
                log_confusions,
                dirty_workers,
                ..
            } = ws;
            for &w in dirty_workers.iter() {
                let confusion = &mut confusions[w.index()];
                m_step_worker(
                    answers,
                    w,
                    assignment,
                    counts,
                    confusion,
                    config.smoothing_alpha,
                    m,
                );
                refresh_worker_logs(log_confusions, confusion, w.index(), m);
            }
        }

        // (c) Priors from the incrementally maintained column sums.
        if n > 0 {
            for l in 0..m {
                ws.priors[l] = ws.col_sums[l] / n as f64;
            }
            ws.refresh_log_priors();
        }

        // (d) Scoped E-step over the dirty workers' neighborhoods. Rows that
        // move beyond the EM tolerance seed the next frontier. The work list
        // is collected first (same dedup, same order as recomputing inline —
        // the recomputation never reads `object_dirty`), so a large frontier
        // can fan out over the blocked-parallel row kernel.
        ws.next_changed.clear();
        let mut scope = std::mem::take(&mut ws.scope_objects);
        scope.clear();
        for wi in 0..ws.dirty_workers.len() {
            let w = ws.dirty_workers[wi];
            for (o, _) in answers.matrix().answers_for_worker(w) {
                if ws.object_dirty[o.index()] {
                    continue;
                }
                ws.object_dirty[o.index()] = true;
                // Clamped rows cannot move; skip them (the seed object is
                // validated under `view` and lands here from round 2 on).
                if view.validated(o).is_some() {
                    continue;
                }
                scope.push(o);
            }
        }
        recompute_rows_scoped(answers, view, ws, &scope, Some(config.tolerance));
        ws.scope_objects = scope;
        *iterations += 1;
        ws.stat_iterations += 1;

        // (e) Reset the flag vectors by walking the same lists (no O(n)
        // clear), then promote the new frontier.
        for wi in 0..ws.dirty_workers.len() {
            let w = ws.dirty_workers[wi];
            for (o, _) in answers.matrix().answers_for_worker(w) {
                ws.object_dirty[o.index()] = false;
            }
            ws.worker_dirty[w.index()] = false;
        }
        ws.dirty_workers.clear();
        std::mem::swap(&mut ws.changed_objects, &mut ws.next_changed);

        // A frontier covering most of the corpus has no locality left to
        // exploit — every further round would be a full-corpus pass without
        // the polish phase's acceleration. Hand over early.
        if ws.changed_objects.len() * 2 > n {
            break;
        }
    }
}

/// Recomputes one object's assignment row under `view` from the cached log
/// tables, patching `col_sums` with the difference. The previous row is left
/// in `row_scratch`. Returns the largest absolute per-label change.
fn recompute_object_row<V: ValidationView>(
    answers: &AnswerSet,
    view: &V,
    ws: &mut EmWorkspace,
    object: ObjectId,
) -> f64 {
    let m = answers.num_labels();
    let matrix = answers.matrix();
    let EmWorkspace {
        assignment,
        log_confusions,
        log_priors,
        log_scores,
        row_scratch,
        col_sums,
        stat_rows_recomputed,
        ..
    } = ws;
    *stat_rows_recomputed += 1;
    let row = assignment.row_mut(object.index());
    row_scratch.copy_from_slice(row);
    e_step_row(
        m,
        matrix,
        view,
        object,
        log_confusions,
        log_priors,
        log_scores,
        row,
    );
    let mut delta = 0.0f64;
    for l in 0..m {
        let diff = row[l] - row_scratch[l];
        col_sums[l] += diff;
        delta = delta.max(diff.abs());
    }
    delta
}

/// Recomputes the assignment rows of `objects` in list order — exactly the
/// serial `recompute_object_row` loop — pushing rows whose change exceeds
/// `frontier_threshold` onto `next_changed`. Above the parallel gate the row
/// posteriors (mutually independent) are computed into the `scope_rows`
/// scratch on the blocked pool first, and a single serial pass then applies
/// them in the same list order: old row saved, `col_sums` patched per label,
/// frontier test — the identical float operation sequence, so serial and
/// parallel runs stay bitwise equal (see [`crate::parblock`]).
fn recompute_rows_scoped<V: ValidationView>(
    answers: &AnswerSet,
    view: &V,
    ws: &mut EmWorkspace,
    objects: &[ObjectId],
    frontier_threshold: Option<f64>,
) {
    use crate::parblock::{em_threads, should_parallelize, BLOCK_ROWS, PAR_MIN_OBJECTS};
    let m = answers.num_labels();
    if !should_parallelize(objects.len(), PAR_MIN_OBJECTS) {
        for &o in objects {
            let delta = recompute_object_row(answers, view, ws, o);
            if let Some(threshold) = frontier_threshold {
                if delta > threshold {
                    ws.next_changed.push(o);
                }
            }
        }
        return;
    }
    let matrix = answers.matrix();
    ws.scope_rows.clear();
    ws.scope_rows.resize(objects.len() * m, 0.0);
    {
        let EmWorkspace {
            log_confusions,
            log_priors,
            scope_rows,
            ..
        } = &mut *ws;
        let log_confusions: &[f64] = log_confusions;
        let log_priors: &[f64] = log_priors;
        let tasks: Vec<(usize, &mut [f64])> = scope_rows
            .chunks_mut(BLOCK_ROWS * m)
            .enumerate()
            .map(|(i, rows)| (i * BLOCK_ROWS, rows))
            .collect();
        rayon::run_scoped_tasks(tasks, em_threads(), |(first, rows)| {
            let mut scores = vec![0.0f64; m];
            for (j, row) in rows.chunks_mut(m).enumerate() {
                e_step_row(
                    m,
                    matrix,
                    view,
                    objects[first + j],
                    log_confusions,
                    log_priors,
                    &mut scores,
                    row,
                );
            }
        });
    }
    let scope_rows = std::mem::take(&mut ws.scope_rows);
    {
        let EmWorkspace {
            assignment,
            row_scratch,
            col_sums,
            next_changed,
            stat_rows_recomputed,
            ..
        } = &mut *ws;
        for (i, &o) in objects.iter().enumerate() {
            *stat_rows_recomputed += 1;
            let fresh = &scope_rows[i * m..(i + 1) * m];
            let row = assignment.row_mut(o.index());
            row_scratch.copy_from_slice(row);
            row.copy_from_slice(fresh);
            let mut delta = 0.0f64;
            for l in 0..m {
                let diff = row[l] - row_scratch[l];
                col_sums[l] += diff;
                delta = delta.max(diff.abs());
            }
            if let Some(threshold) = frontier_threshold {
                if delta > threshold {
                    next_changed.push(o);
                }
            }
        }
    }
    ws.scope_rows = scope_rows;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::run_warm_em;
    use crate::{Aggregator, EmConfig, IncrementalEm};
    use crowdval_model::{ExpertValidation, HypothesisOverlay, LabelId};
    use crowdval_sim::SyntheticConfig;

    /// Delta-scoped evaluation must land on (nearly) the same fixed point as
    /// the exact warm start for every plausible hypothesis of a paper-default
    /// scenario.
    #[test]
    fn delta_matches_exact_within_em_tolerance() {
        let synth = SyntheticConfig {
            num_objects: 24,
            ..SyntheticConfig::paper_default(91)
        }
        .generate();
        let answers = synth.dataset.answers().clone();
        let truth = synth.dataset.ground_truth().clone();
        let mut expert = ExpertValidation::empty(answers.num_objects());
        for o in 0..6 {
            expert.set(ObjectId(o), truth.label(ObjectId(o)));
        }
        let iem = IncrementalEm::default();
        let current = iem.conclude(&answers, &expert, None);
        let config = EmConfig::paper_default();
        let tolerance = 100.0 * config.tolerance;

        for &object in &expert.unvalidated_objects()[..8] {
            for l in 0..answers.num_labels() {
                let label = LabelId(l);
                if current.assignment().prob(object, label) <= 1e-6 {
                    continue;
                }
                let overlay = HypothesisOverlay::new(&expert, object, label);
                let exact = run_warm_em(
                    &answers,
                    &overlay,
                    current.confusions(),
                    current.priors(),
                    &config,
                );
                let delta = {
                    let mut ws = EmWorkspace::new();
                    ws.seed_from(&answers, &current);
                    let it =
                        run_delta_em_in_workspace(&answers, &overlay, &mut ws, &config, object);
                    ws.export(it)
                };
                if exact.em_iterations() >= config.max_iterations
                    || delta.em_iterations() >= config.max_iterations
                {
                    continue;
                }
                let diff = exact.assignment().max_abs_diff(delta.assignment());
                assert!(
                    diff <= tolerance,
                    "hypothesis ({object}, {label}): delta/exact differ by {diff}"
                );
            }
        }
    }

    /// The delta path honours the pinned hypothesis exactly.
    #[test]
    fn delta_pins_the_hypothetical_label() {
        let synth = SyntheticConfig {
            num_objects: 12,
            ..SyntheticConfig::paper_default(7)
        }
        .generate();
        let answers = synth.dataset.answers().clone();
        let expert = ExpertValidation::empty(answers.num_objects());
        let iem = IncrementalEm::default();
        let current = iem.conclude(&answers, &expert, None);
        let overlay = HypothesisOverlay::new(&expert, ObjectId(3), LabelId(1));
        let mut ws = EmWorkspace::new();
        ws.seed_from(&answers, &current);
        let it = run_delta_em_in_workspace(
            &answers,
            &overlay,
            &mut ws,
            &EmConfig::paper_default(),
            ObjectId(3),
        );
        let p = ws.export(it);
        assert_eq!(p.assignment().prob(ObjectId(3), LabelId(1)), 1.0);
        assert!(crate::em::is_valid_probabilistic_answer_set(&p));
        assert!(it >= 1);
    }
}
