//! Probabilistic answer aggregation (paper §4).
//!
//! Three aggregators are provided:
//!
//! * [`MajorityVoting`] — the classic baseline: each object's label
//!   distribution is proportional to the votes it received.
//! * [`BatchEm`] — the traditional Dawid–Skene estimator: every call
//!   re-estimates worker confusion matrices and assignment probabilities from
//!   scratch (optionally from a random initialization), without any notion of
//!   expert input beyond the validated objects being clamped.
//! * [`IncrementalEm`] — the paper's *i-EM*: expert validations are
//!   first-class ground truth (validated objects have point-mass assignment
//!   probabilities and drive the confusion-matrix estimation), and each call
//!   warm-starts from the probabilistic answer set of the previous validation
//!   iteration, following the view-maintenance principle.
//!
//! All aggregators implement the [`Aggregator`] trait whose `conclude`
//! function realizes the *conclude* step of the validation process (§3.2).

pub mod config;
pub mod em;
pub mod iem;
pub mod init;
pub mod integration;
pub mod majority;

pub use config::EmConfig;
pub use em::BatchEm;
pub use iem::IncrementalEm;
pub use init::InitStrategy;
pub use integration::{aggregate_combined, ExpertIntegration};
pub use majority::MajorityVoting;

use crowdval_model::{AnswerSet, ExpertValidation, ProbabilisticAnswerSet};

/// The *conclude* step of the validation process: turn an answer set and the
/// expert validations collected so far into a probabilistic answer set.
///
/// Aggregators must be `Send + Sync`: the guidance strategies evaluate
/// hypothetical validations for many candidate objects in parallel (§5.4) and
/// share the aggregator across worker threads.
pub trait Aggregator: Send + Sync {
    /// Computes a new probabilistic answer set.
    ///
    /// `previous` is the probabilistic answer set of the previous validation
    /// iteration; incremental aggregators warm-start from it, batch
    /// aggregators may ignore it.
    fn conclude(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        previous: Option<&ProbabilisticAnswerSet>,
    ) -> ProbabilisticAnswerSet;

    /// Explicit warm-start entry point: re-aggregates starting from the
    /// confusion matrices and label priors of `previous` (§5.2/§5.4 — every
    /// "what-if" hypothesis evaluation of the guidance hot path goes through
    /// here, one call per (candidate, plausible label) pair, so incremental
    /// aggregators should make this as cheap as a few EM iterations).
    ///
    /// The default forwards to [`Aggregator::conclude`] with
    /// `Some(previous)`; batch aggregators that ignore `previous` thereby
    /// keep their restart semantics.
    fn conclude_warm(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        previous: &ProbabilisticAnswerSet,
    ) -> ProbabilisticAnswerSet {
        self.conclude(answers, expert, Some(previous))
    }

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}
