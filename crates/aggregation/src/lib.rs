//! Probabilistic answer aggregation (paper §4).
//!
//! Three aggregators are provided:
//!
//! * [`MajorityVoting`] — the classic baseline: each object's label
//!   distribution is proportional to the votes it received.
//! * [`BatchEm`] — the traditional Dawid–Skene estimator: every call
//!   re-estimates worker confusion matrices and assignment probabilities from
//!   scratch (optionally from a random initialization), without any notion of
//!   expert input beyond the validated objects being clamped.
//! * [`IncrementalEm`] — the paper's *i-EM*: expert validations are
//!   first-class ground truth (validated objects have point-mass assignment
//!   probabilities and drive the confusion-matrix estimation), and each call
//!   warm-starts from the probabilistic answer set of the previous validation
//!   iteration, following the view-maintenance principle.
//!
//! All aggregators implement the [`Aggregator`] trait whose `conclude`
//! function realizes the *conclude* step of the validation process (§3.2).

pub mod churn;
pub mod config;
pub mod delta;
pub mod em;
pub mod iem;
pub mod init;
pub mod integration;
pub mod majority;
pub mod parblock;
pub mod workspace;

pub use churn::ChurnTracker;
pub use config::EmConfig;
pub use delta::{run_delta_em_from_dirty, run_delta_em_in_workspace};
pub use em::{run_em_in_workspace, run_warm_em, BatchEm};
pub use iem::{moved_rows, IncrementalEm};
pub use init::InitStrategy;
pub use integration::{aggregate_combined, ExpertIntegration};
pub use majority::MajorityVoting;
pub use parblock::{em_threads, set_em_threads};
pub use workspace::{with_workspace, EmWorkspace};

use crowdval_model::{
    AnswerSet, ExpertValidation, HypothesisOverlay, ObjectId, ProbabilisticAnswerSet,
};
use serde::{Deserialize, Serialize};

/// How warm-started hypothesis evaluations are scoped (§5.4, view
/// maintenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScoringMode {
    /// Full-corpus EM re-estimation per hypothesis — the reference
    /// semantics. Required whenever the evaluation must be bit-comparable
    /// with a plain [`Aggregator::conclude_warm`] run (e.g. experiments that
    /// diff rankings across aggregators).
    Exact,
    /// Neighborhood-scoped delta propagation seeded at the pinned object:
    /// only the answering workers' confusion rows and the objects they
    /// touched are re-estimated, with the frontier expanding until
    /// assignment changes fall below the EM tolerance. Agrees with `Exact`
    /// within that tolerance and is the default for the guidance hot path.
    #[default]
    Delta,
}

/// A [`Aggregator::conclude_arrival_tracked`] result: the re-aggregated
/// state plus the *converged dirty frontier* — the objects whose assignment
/// rows the re-aggregation actually moved beyond the aggregator's
/// convergence tolerance.
///
/// `moved: None` means the aggregator cannot bound what it moved (batch
/// restarts, unknown custom implementations); callers maintaining derived
/// caches must then treat the whole corpus as dirty.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalOutcome {
    /// The re-aggregated probabilistic answer set.
    pub state: ProbabilisticAnswerSet,
    /// Objects whose assignment row moved beyond the convergence tolerance
    /// (growth rows included), in id order; `None` when unknown.
    pub moved: Option<Vec<ObjectId>>,
}

/// The *conclude* step of the validation process: turn an answer set and the
/// expert validations collected so far into a probabilistic answer set.
///
/// Aggregators must be `Send + Sync`: the guidance strategies evaluate
/// hypothetical validations for many candidate objects in parallel (§5.4) and
/// share the aggregator across worker threads.
pub trait Aggregator: Send + Sync {
    /// Computes a new probabilistic answer set.
    ///
    /// `previous` is the probabilistic answer set of the previous validation
    /// iteration; incremental aggregators warm-start from it, batch
    /// aggregators may ignore it.
    fn conclude(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        previous: Option<&ProbabilisticAnswerSet>,
    ) -> ProbabilisticAnswerSet;

    /// Explicit warm-start entry point: re-aggregates starting from the
    /// confusion matrices and label priors of `previous` (§5.2/§5.4 — every
    /// "what-if" hypothesis evaluation of the guidance hot path goes through
    /// here, one call per (candidate, plausible label) pair, so incremental
    /// aggregators should make this as cheap as a few EM iterations).
    ///
    /// The default forwards to [`Aggregator::conclude`] with
    /// `Some(previous)`; batch aggregators that ignore `previous` thereby
    /// keep their restart semantics.
    fn conclude_warm(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        previous: &ProbabilisticAnswerSet,
    ) -> ProbabilisticAnswerSet {
        self.conclude(answers, expert, Some(previous))
    }

    /// Hypothesis entry point of the guidance hot path: re-aggregates with
    /// one hypothetical validation pinned on top of the real ones, without
    /// materializing an `ExpertValidation` clone per hypothesis.
    ///
    /// `mode` selects between the exact full-corpus re-estimation and the
    /// delta-scoped variant ([`ScoringMode`]); aggregators without a native
    /// delta path may ignore it. The default forwards to
    /// [`Aggregator::conclude_warm`] on a materialized overlay, preserving
    /// each aggregator's semantics (batch aggregators keep restarting).
    fn conclude_hypothesis(
        &self,
        answers: &AnswerSet,
        hypothesis: &HypothesisOverlay<'_>,
        previous: &ProbabilisticAnswerSet,
        mode: ScoringMode,
    ) -> ProbabilisticAnswerSet {
        let _ = mode;
        self.conclude_warm(answers, &hypothesis.materialize(), previous)
    }

    /// Arrival entry point of the streaming ingestion path (§5.4 view
    /// maintenance applied to *vote arrival*): re-aggregates after new votes
    /// landed on `touched` objects, warm-starting from `previous` even when
    /// the answer set has **grown** (new objects and/or workers since
    /// `previous` was computed).
    ///
    /// Incremental aggregators should scope the re-estimation to the touched
    /// neighborhood (the dirty set starts at `touched`, not at a pinned
    /// hypothesis) and must still certify the same convergence criterion as
    /// a full re-aggregation. The default ignores `touched` and forwards to
    /// [`Aggregator::conclude`] with `Some(previous)`, preserving each
    /// aggregator's batch semantics (batch aggregators keep restarting —
    /// which is exactly the rebuild-from-scratch baseline the ingestion
    /// bench compares against).
    fn conclude_arrival(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        previous: &ProbabilisticAnswerSet,
        touched: &[ObjectId],
    ) -> ProbabilisticAnswerSet {
        let _ = touched;
        self.conclude(answers, expert, Some(previous))
    }

    /// [`Aggregator::conclude_arrival`] plus the converged dirty frontier:
    /// which assignment rows the re-aggregation *actually moved* beyond
    /// `drift_threshold` (clamped up to the aggregator's own convergence
    /// tolerance — below that, endpoint differences are indistinguishable
    /// from convergence noise). Sessions maintaining score caches across
    /// selection steps (§5.4 view maintenance applied *across* steps) use
    /// the frontier as their invalidation region.
    ///
    /// The default forwards to [`Aggregator::conclude_arrival`] and reports
    /// the frontier as unknown (`moved: None`) — the conservative answer
    /// that forces cache-maintaining callers to invalidate globally.
    fn conclude_arrival_tracked(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        previous: &ProbabilisticAnswerSet,
        touched: &[ObjectId],
        drift_threshold: f64,
    ) -> ArrivalOutcome {
        let _ = drift_threshold;
        ArrivalOutcome {
            state: self.conclude_arrival(answers, expert, previous, touched),
            moved: None,
        }
    }

    /// The largest assignment-probability drift a *converged* re-aggregation
    /// can leave on rows outside its dirty frontier — the EM convergence
    /// tolerance for the iterative aggregators. `None` (the default) means
    /// the aggregator cannot bound the drift (e.g. batch restarts whose
    /// trajectory ignores the previous state); callers maintaining derived
    /// caches must then invalidate globally after every re-aggregation.
    fn drift_tolerance(&self) -> Option<f64> {
        None
    }

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str;

    /// Serializable configuration state for session snapshots, when this
    /// aggregator supports checkpointing. All built-in aggregators do;
    /// custom implementations may return `None`, in which case sessions
    /// using them refuse to snapshot (with a typed error, not a panic).
    fn snapshot_state(&self) -> Option<AggregatorState> {
        None
    }
}

/// Serializable description of a built-in aggregator: everything needed to
/// rebuild the trait object on snapshot restore. The built-in aggregators
/// are stateless between calls (all estimation state lives in the
/// [`crowdval_model::ProbabilisticAnswerSet`] threaded through the session),
/// so configuration alone reproduces their behaviour bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AggregatorState {
    /// [`IncrementalEm`] with its hyper-parameters and cold-start policy.
    IncrementalEm {
        config: EmConfig,
        cold_start: InitStrategy,
    },
    /// [`BatchEm`] with its hyper-parameters and initialization.
    BatchEm {
        config: EmConfig,
        init: InitStrategy,
    },
    /// [`MajorityVoting`] (configuration-free).
    MajorityVoting,
}

impl AggregatorState {
    /// Rebuilds the described aggregator.
    pub fn into_aggregator(self) -> Box<dyn Aggregator> {
        match self {
            AggregatorState::IncrementalEm { config, cold_start } => {
                Box::new(IncrementalEm::with_cold_start(config, cold_start))
            }
            AggregatorState::BatchEm { config, init } => Box::new(BatchEm::with_init(config, init)),
            AggregatorState::MajorityVoting => Box::new(MajorityVoting),
        }
    }
}
