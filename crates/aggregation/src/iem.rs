//! The incremental EM algorithm *i-EM* (paper §4.1).
//!
//! i-EM differs from the traditional batch estimator in two ways that the
//! paper calls out as requirements:
//!
//! 1. **Expert validations are first-class**: validated objects carry a point
//!    mass on the validated label throughout the E-step (Eq. 4), so they act
//!    as ground truth when worker confusion matrices are re-estimated.
//! 2. **Incrementality**: the estimation in validation iteration `s` starts
//!    from the confusion matrices and priors of iteration `s − 1`
//!    (`C⁰_s = C^q_{s−1}`), following the view-maintenance principle. This
//!    avoids the expensive restart from a random estimate and, because a
//!    single new validation only perturbs the model slightly, converges in
//!    fewer EM iterations (evaluated in Fig. 8).

use crate::config::EmConfig;
use crate::delta::{run_delta_em_from_dirty, run_delta_em_in_workspace};
use crate::em::{run_em_from_assignment, run_em_from_confusions, run_em_in_workspace, run_warm_em};
use crate::init::InitStrategy;
use crate::workspace::with_workspace;
use crate::{Aggregator, ScoringMode};
use crowdval_model::{
    AnswerSet, ExpertValidation, HypothesisOverlay, ObjectId, ProbabilisticAnswerSet,
};

/// The incremental EM aggregator.
#[derive(Debug, Clone, Copy)]
pub struct IncrementalEm {
    config: EmConfig,
    /// Initialization used on the very first call, when there is no previous
    /// probabilistic answer set to warm-start from.
    cold_start: InitStrategy,
}

impl IncrementalEm {
    /// i-EM with the paper's default hyper-parameters and majority-vote cold
    /// start.
    pub fn new(config: EmConfig) -> Self {
        Self {
            config,
            cold_start: InitStrategy::MajorityVote,
        }
    }

    /// Overrides the cold-start initialization.
    pub fn with_cold_start(config: EmConfig, cold_start: InitStrategy) -> Self {
        Self { config, cold_start }
    }

    /// The EM hyper-parameters.
    pub fn config(&self) -> &EmConfig {
        &self.config
    }

    /// The configured cold-start initialization.
    pub fn cold_start_strategy(&self) -> InitStrategy {
        self.cold_start
    }

    /// The explicit warm start at the heart of i-EM: estimation resumes from
    /// the confusion matrices and priors of the previous probabilistic answer
    /// set (`C⁰_s = C^q_{s−1}`, view-maintenance principle). Falls back to a
    /// cold start when the dimensions do not match (e.g. after workers were
    /// excluded from the answer set).
    pub fn warm_start(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        previous: &ProbabilisticAnswerSet,
    ) -> ProbabilisticAnswerSet {
        if self.shape_matches(answers, previous) {
            run_em_from_confusions(
                answers,
                expert,
                previous.confusions(),
                previous.priors(),
                &self.config,
            )
        } else {
            self.cold_start(answers, expert)
        }
    }

    fn shape_matches(&self, answers: &AnswerSet, previous: &ProbabilisticAnswerSet) -> bool {
        previous.num_objects() == answers.num_objects()
            && previous.num_workers() == answers.num_workers()
            && previous.num_labels() == answers.num_labels()
    }

    fn cold_start(&self, answers: &AnswerSet, expert: &ExpertValidation) -> ProbabilisticAnswerSet {
        let initial = self.cold_start.initial_assignment(answers, expert);
        run_em_from_assignment(answers, expert, initial, &self.config)
    }
}

/// Objects whose assignment row differs between `previous` and `next` by
/// more than `tolerance` in any label probability, in id order. Objects
/// beyond `previous` (stream growth) are always reported as moved. This is
/// the endpoint-diff definition of the converged dirty frontier: everything
/// a re-aggregation moved beyond its convergence tolerance, whichever phase
/// (scoped rounds or polish) moved it.
pub fn moved_rows(
    previous: &ProbabilisticAnswerSet,
    next: &ProbabilisticAnswerSet,
    tolerance: f64,
) -> Vec<ObjectId> {
    let m = next.num_labels();
    if previous.num_labels() != m {
        // Incompatible label spaces (the arrival fell back to a cold start):
        // everything moved.
        return (0..next.num_objects()).map(ObjectId).collect();
    }
    let prev = previous.assignment().matrix().as_slice();
    let cur = next.assignment().matrix().as_slice();
    let shared = previous.num_objects().min(next.num_objects());
    let mut moved = Vec::new();
    for o in 0..shared {
        let range = o * m..(o + 1) * m;
        let drifted = prev[range.clone()]
            .iter()
            .zip(&cur[range])
            .any(|(p, c)| (p - c).abs() > tolerance);
        if drifted {
            moved.push(ObjectId(o));
        }
    }
    moved.extend((shared..next.num_objects()).map(ObjectId));
    moved
}

impl Default for IncrementalEm {
    fn default() -> Self {
        Self::new(EmConfig::paper_default())
    }
}

impl Aggregator for IncrementalEm {
    fn conclude(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        previous: Option<&ProbabilisticAnswerSet>,
    ) -> ProbabilisticAnswerSet {
        match previous {
            Some(prev) => self.warm_start(answers, expert, prev),
            None => self.cold_start(answers, expert),
        }
    }

    fn conclude_warm(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        previous: &ProbabilisticAnswerSet,
    ) -> ProbabilisticAnswerSet {
        self.warm_start(answers, expert, previous)
    }

    /// Native overlay support: no `ExpertValidation` clone per hypothesis,
    /// and in [`ScoringMode::Delta`] a neighborhood-scoped re-estimation
    /// seeded at the pinned object instead of a full-corpus EM run.
    fn conclude_hypothesis(
        &self,
        answers: &AnswerSet,
        hypothesis: &HypothesisOverlay<'_>,
        previous: &ProbabilisticAnswerSet,
        mode: ScoringMode,
    ) -> ProbabilisticAnswerSet {
        if !self.shape_matches(answers, previous) {
            return self.cold_start(answers, &hypothesis.materialize());
        }
        // Below the label-switching anchor threshold (two validations,
        // counting the pin) the orientation of the EM solution is fragile:
        // near-chance crowds sit close to the mirrored basin and the
        // delta shortcut could resolve ties differently than the reference
        // trajectory. Those evaluations only occur in the first couple of
        // selection steps of a run, so take the exact path there.
        let mode = if crowdval_model::ValidationView::validated_count(hypothesis) < 2 {
            ScoringMode::Exact
        } else {
            mode
        };
        match mode {
            ScoringMode::Exact => run_warm_em(
                answers,
                hypothesis,
                previous.confusions(),
                previous.priors(),
                &self.config,
            ),
            ScoringMode::Delta => with_workspace(|ws| {
                ws.seed_from(answers, previous);
                let iterations = run_delta_em_in_workspace(
                    answers,
                    hypothesis,
                    ws,
                    &self.config,
                    hypothesis.object(),
                );
                let iterations = crate::em::realign_in_workspace(
                    answers,
                    hypothesis,
                    ws,
                    iterations,
                    &self.config,
                );
                ws.export(iterations)
            }),
        }
    }

    /// Native arrival support (§5.4 view maintenance for vote arrival): the
    /// workspace is seeded from the previous state even across *growth* (new
    /// objects get prior rows, new workers uniform confusions), the delta
    /// path's dirty set starts at the touched objects instead of a pinned
    /// hypothesis, and the Aitken-polished full-map phase certifies the
    /// exact path's convergence criterion. Below two validation anchors the
    /// label orientation is still fragile, so the scoped rounds are skipped
    /// in favour of a plain warm full-EM from the same grown seed.
    fn conclude_arrival(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        previous: &ProbabilisticAnswerSet,
        touched: &[ObjectId],
    ) -> ProbabilisticAnswerSet {
        let grown_compatible = previous.num_objects() > 0
            && previous.num_objects() <= answers.num_objects()
            && previous.num_workers() <= answers.num_workers()
            && previous.num_labels() == answers.num_labels();
        if !grown_compatible {
            return self.cold_start(answers, expert);
        }
        with_workspace(|ws| {
            ws.seed_from_grown(answers, previous);
            let iterations = if expert.count() < 2 {
                run_em_in_workspace(answers, expert, ws, &self.config)
            } else {
                run_delta_em_from_dirty(answers, expert, ws, &self.config, touched)
            };
            let iterations =
                crate::em::realign_in_workspace(answers, expert, ws, iterations, &self.config);
            ws.export(iterations)
        })
    }

    /// Arrival with the converged dirty frontier: the endpoint diff between
    /// the previous state and the re-aggregated one, thresholded at the EM
    /// convergence tolerance. Rows the frontier-scoped rounds and the
    /// Aitken-polished finish genuinely moved show up here; rows that only
    /// absorbed sub-tolerance drift (the residual every converged EM leaves
    /// behind) do not — that drift is exactly what
    /// [`Aggregator::drift_tolerance`] promises to bound.
    fn conclude_arrival_tracked(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        previous: &ProbabilisticAnswerSet,
        touched: &[ObjectId],
        drift_threshold: f64,
    ) -> crate::ArrivalOutcome {
        let state = self.conclude_arrival(answers, expert, previous, touched);
        let moved = moved_rows(previous, &state, drift_threshold.max(self.config.tolerance));
        crate::ArrivalOutcome {
            state,
            moved: Some(moved),
        }
    }

    fn drift_tolerance(&self) -> Option<f64> {
        Some(self.config.tolerance)
    }

    fn name(&self) -> &'static str {
        "i-em"
    }

    fn snapshot_state(&self) -> Option<crate::AggregatorState> {
        Some(crate::AggregatorState::IncrementalEm {
            config: self.config,
            cold_start: self.cold_start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::{is_valid_probabilistic_answer_set, BatchEm};
    use crowdval_model::ObjectId;
    use crowdval_sim::{SimulatedExpert, SyntheticConfig};

    fn synthetic() -> crowdval_sim::SyntheticDataset {
        SyntheticConfig::paper_default(77).generate()
    }

    #[test]
    fn cold_start_matches_batch_em() {
        let synth = synthetic();
        let answers = synth.dataset.answers();
        let e = ExpertValidation::empty(answers.num_objects());
        let a = IncrementalEm::default().conclude(answers, &e, None);
        let b = BatchEm::default().conclude(answers, &e, None);
        assert_eq!(a.assignment().matrix(), b.assignment().matrix());
    }

    #[test]
    fn warm_start_produces_valid_state_and_respects_validations() {
        let synth = synthetic();
        let answers = synth.dataset.answers();
        let mut expert = ExpertValidation::empty(answers.num_objects());
        let iem = IncrementalEm::default();
        let mut state = iem.conclude(answers, &expert, None);
        let mut oracle = SimulatedExpert::perfect(synth.dataset.ground_truth().clone(), 2);
        for o in 0..10 {
            expert.set(ObjectId(o), oracle.validate(ObjectId(o)));
            state = iem.conclude(answers, &expert, Some(&state));
            assert!(is_valid_probabilistic_answer_set(&state));
            assert_eq!(
                state.instantiate().label(ObjectId(o)),
                synth.dataset.ground_truth().label(ObjectId(o))
            );
        }
    }

    #[test]
    fn warm_start_converges_in_fewer_iterations_than_restart() {
        // The headline property behind Fig. 8: once some validations are in,
        // continuing from the previous state needs fewer EM iterations than
        // restarting from a random estimate.
        let synth = synthetic();
        let answers = synth.dataset.answers();
        let truth = synth.dataset.ground_truth();
        let iem = IncrementalEm::default();
        let restart =
            BatchEm::with_init(EmConfig::paper_default(), InitStrategy::Random { seed: 3 });

        let mut expert = ExpertValidation::empty(answers.num_objects());
        let mut state = iem.conclude(answers, &expert, None);
        let mut warm_total = 0usize;
        let mut cold_total = 0usize;
        for o in 0..15 {
            expert.set(ObjectId(o), truth.label(ObjectId(o)));
            state = iem.conclude(answers, &expert, Some(&state));
            warm_total += state.em_iterations();
            cold_total += restart.conclude(answers, &expert, None).em_iterations();
        }
        assert!(
            warm_total < cold_total,
            "warm-start iterations {warm_total} should undercut cold restarts {cold_total}"
        );
    }

    #[test]
    fn incompatible_previous_state_triggers_cold_start() {
        let synth = synthetic();
        let answers = synth.dataset.answers();
        let e = ExpertValidation::empty(answers.num_objects());
        let wrong_shape = ProbabilisticAnswerSet::uninformed(3, 2, 2);
        let p = IncrementalEm::default().conclude(answers, &e, Some(&wrong_shape));
        assert_eq!(p.num_objects(), answers.num_objects());
        assert!(is_valid_probabilistic_answer_set(&p));
    }

    #[test]
    fn expert_input_improves_worker_reliability_estimates() {
        // Validations reveal which workers are reliable even on objects the
        // crowd disagrees about (paper §6.4 "Benefits of answer validation").
        let synth = synthetic();
        let answers = synth.dataset.answers();
        let truth = synth.dataset.ground_truth();
        let iem = IncrementalEm::default();

        let no_expert = iem.conclude(
            answers,
            &ExpertValidation::empty(answers.num_objects()),
            None,
        );
        let mut expert = ExpertValidation::empty(answers.num_objects());
        for o in 0..25 {
            expert.set(ObjectId(o), truth.label(ObjectId(o)));
        }
        let with_expert = iem.conclude(answers, &expert, Some(&no_expert));

        // Average assignment probability of the *correct* label should not
        // decrease once expert input is integrated.
        let avg = |p: &ProbabilisticAnswerSet| {
            truth
                .iter()
                .map(|(o, l)| p.assignment().prob(o, l))
                .sum::<f64>()
                / truth.len() as f64
        };
        assert!(avg(&with_expert) >= avg(&no_expert) - 1e-9);
    }

    #[test]
    fn aggregator_name() {
        assert_eq!(IncrementalEm::default().name(), "i-em");
    }

    /// The arrival path, seeded only with the touched objects, must land on
    /// the same fixed point as a full warm re-aggregation of the same data.
    #[test]
    fn conclude_arrival_matches_full_warm_start() {
        use crowdval_model::{LabelId, Vote};
        let synth = SyntheticConfig {
            num_objects: 24,
            ..SyntheticConfig::paper_default(55)
        }
        .generate();
        let full = synth.dataset.answers().clone();
        let truth = synth.dataset.ground_truth();

        // Hold back the last votes of four objects, aggregate, then let them
        // arrive.
        let mut answers = full.clone();
        let touched: Vec<ObjectId> = (0..4).map(ObjectId).collect();
        let mut held_back: Vec<Vote> = Vec::new();
        for &o in &touched {
            for w in 0..3 {
                let worker = crowdval_model::WorkerId(w);
                if let Some(l) = answers.remove_answer(o, worker) {
                    held_back.push(Vote::new(o, worker, l));
                }
            }
        }
        let mut expert = ExpertValidation::empty(full.num_objects());
        expert.set(ObjectId(10), truth.label(ObjectId(10)));
        expert.set(ObjectId(11), truth.label(ObjectId(11)));
        let iem = IncrementalEm::default();
        let before = iem.conclude(&answers, &expert, None);

        for vote in &held_back {
            answers.record_arrival(*vote).unwrap();
        }
        let arrival = iem.conclude_arrival(&answers, &expert, &before, &touched);
        let warm = iem.conclude_warm(&answers, &expert, &before);

        assert!(is_valid_probabilistic_answer_set(&arrival));
        let config = EmConfig::paper_default();
        if arrival.em_iterations() < config.max_iterations
            && warm.em_iterations() < config.max_iterations
        {
            let diff = arrival.assignment().max_abs_diff(warm.assignment());
            assert!(
                diff <= 100.0 * config.tolerance,
                "arrival-seeded delta diverged from the full warm start by {diff}"
            );
        }
        // Validations stay pinned through the arrival.
        assert_eq!(
            arrival
                .assignment()
                .prob(ObjectId(10), truth.label(ObjectId(10))),
            1.0
        );
        let _ = LabelId(0);
    }

    /// The arrival path absorbs *growth*: a previous state covering fewer
    /// objects and workers seeds the grown corpus without a cold restart.
    #[test]
    fn conclude_arrival_absorbs_new_objects_and_workers() {
        use crowdval_model::Vote;
        let synth = SyntheticConfig {
            num_objects: 20,
            num_workers: 12,
            reliability: 0.85,
            mix: crowdval_sim::PopulationMix::all_reliable(),
            ..SyntheticConfig::paper_default(56)
        }
        .generate();
        let full = synth.dataset.answers().clone();
        let truth = synth.dataset.ground_truth();

        // Previous state: only the first 16 objects and 9 workers exist.
        let mut early = crowdval_model::AnswerSet::new(0, 0, full.num_labels());
        let mut late: Vec<Vote> = Vec::new();
        for (o, w, l) in full.matrix().iter() {
            let vote = Vote::new(o, w, l);
            if o.index() < 16 && w.index() < 9 {
                early.record_arrival(vote).unwrap();
            } else {
                late.push(vote);
            }
        }
        let mut expert = ExpertValidation::empty(16);
        expert.set(ObjectId(0), truth.label(ObjectId(0)));
        expert.set(ObjectId(1), truth.label(ObjectId(1)));
        let iem = IncrementalEm::default();
        let before = iem.conclude(&early, &expert, None);

        let mut grown = early.clone();
        let mut touched: Vec<ObjectId> = Vec::new();
        for vote in &late {
            grown.record_arrival(*vote).unwrap();
            touched.push(vote.object);
        }
        touched.sort();
        touched.dedup();
        expert.ensure_domain(grown.num_objects());
        let arrival = iem.conclude_arrival(&grown, &expert, &before, &touched);

        assert_eq!(arrival.num_objects(), 20);
        assert_eq!(arrival.num_workers(), 12);
        assert!(is_valid_probabilistic_answer_set(&arrival));
        // New objects got real posteriors, not the prior placeholder rows.
        let cold = iem.conclude(&grown, &expert, None);
        let config = EmConfig::paper_default();
        if arrival.em_iterations() < config.max_iterations
            && cold.em_iterations() < config.max_iterations
        {
            let diff = arrival.assignment().max_abs_diff(cold.assignment());
            assert!(
                diff <= 100.0 * config.tolerance,
                "grown arrival state diverged from the cold rebuild by {diff}"
            );
        }
    }
}
