//! Blocked parallel execution policy for the EM kernels.
//!
//! At million-object scale a full E-step or M-step is an embarrassingly
//! parallel sweep: every assignment row (E) and every worker's confusion
//! matrix (M) is computed independently from shared read-only state. The
//! kernels in [`crate::em`] and [`crate::delta`] partition that work into
//! contiguous, cache-sized row blocks and run the blocks on a fixed scoped
//! thread pool (`rayon::run_scoped_tasks`).
//!
//! ## Determinism contract
//!
//! Parallel and serial runs are **bit-identical**, by construction rather
//! than by tolerance:
//!
//! - Each block owns a disjoint `&mut` row range; within a block, rows are
//!   computed in index order with exactly the serial kernel's per-row
//!   operation sequence. No float ever crosses a block boundary during the
//!   parallel phase.
//! - Every cross-row reduction — label priors from assignment column sums,
//!   and the delta path's incrementally patched `col_sums` — stays in one
//!   deterministic serial pass over the same element order the serial path
//!   uses (equivalently: per-block partials reduced in block order, with
//!   block size 1 element). The reduction cost is `O(objects × labels)`
//!   against the E-step's `O(votes × labels)`, so serializing it costs
//!   almost nothing and buys exact reproducibility.
//!
//! ## Sizing
//!
//! The parallel path only engages above [`PAR_MIN_OBJECTS`] /
//! [`PAR_MIN_WORKERS`] rows: below that, thread spawn/join overhead
//! dominates, and the serial kernels additionally guarantee zero steady-state
//! allocations (asserted by the counting-allocator test), which the parallel
//! blocks do not (each block allocates its small per-block scratch).
//!
//! Thread count: [`set_em_threads`] wins, else `CROWDVAL_EM_THREADS`, else
//! the rayon pool width (which itself honors `RAYON_NUM_THREADS`).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Minimum assignment rows (objects) before the E-step goes parallel.
pub(crate) const PAR_MIN_OBJECTS: usize = 8192;

/// Minimum confusion rows (workers) before the M-step goes parallel.
pub(crate) const PAR_MIN_WORKERS: usize = 2048;

/// Rows per E-step block: 1024 rows × 4 labels × 8 bytes ≈ 32 KiB of
/// assignment output per block — small enough to stay cache-resident, large
/// enough that queue claims are noise.
pub(crate) const BLOCK_ROWS: usize = 1024;

/// Workers per M-step block (each worker's unit of work is a whole confusion
/// matrix re-estimation, much heavier than one E-step row).
pub(crate) const BLOCK_WORKERS: usize = 256;

/// 0 = unset (resolve from the environment); otherwise the forced count.
static EM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Forces the EM thread count (0 restores environment resolution). Intended
/// for benchmarks that A/B serial vs parallel arms in one process.
pub fn set_em_threads(threads: usize) {
    EM_THREADS.store(threads, Ordering::Relaxed);
}

/// The thread count the blocked EM kernels will use: the
/// [`set_em_threads`] override, else `CROWDVAL_EM_THREADS`, else the rayon
/// pool width.
pub fn em_threads() -> usize {
    let forced = EM_THREADS.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(env) = std::env::var("CROWDVAL_EM_THREADS") {
        if let Ok(n) = env.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    rayon::current_num_threads()
}

/// Whether a sweep over `rows` rows should run on the pool, given the
/// per-step minimum `min_rows`.
#[inline]
pub(crate) fn should_parallelize(rows: usize, min_rows: usize) -> bool {
    rows >= min_rows && em_threads() > 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_thread_count_wins_and_resets() {
        set_em_threads(3);
        assert_eq!(em_threads(), 3);
        assert!(should_parallelize(PAR_MIN_OBJECTS, PAR_MIN_OBJECTS));
        assert!(!should_parallelize(PAR_MIN_OBJECTS - 1, PAR_MIN_OBJECTS));
        set_em_threads(1);
        assert!(!should_parallelize(usize::MAX, PAR_MIN_OBJECTS));
        set_em_threads(0);
        assert!(em_threads() >= 1);
    }
}
