//! Posterior-churn tracking across re-aggregation rounds — the aggregation
//! hook behind the `churn` triage feature (`crowdval-triage`).
//!
//! Every re-aggregation yields a *converged dirty frontier*: the assignment
//! rows that actually moved (see [`crate::moved_rows`] and
//! [`crate::ArrivalOutcome`]). A [`ChurnTracker`] folds that per-round
//! signal into a per-object exponentially weighted moving average of "did
//! this object's posterior move this round?". Objects whose distribution
//! keeps shifting as votes arrive score near 1 (the crowd is still arguing
//! about them — poor auto-finalize candidates); objects whose row has been
//! still for several rounds decay toward 0 (the posterior has settled).
//!
//! The tracker is deliberately dumb: no floats from the posterior itself,
//! only the boolean moved-set per round, decayed geometrically. That makes
//! the score a pure function of the round history — deterministic, finite
//! by construction, and bit-identical across snapshot/restore once the
//! scores vector is serialized (it is: plain serde).

use crowdval_model::ObjectId;
use serde::{Deserialize, Serialize};

/// Geometric decay applied to every score each observed round. With 0.5,
/// an object that stops moving halves its churn score per round and drops
/// below 0.1 after four still rounds.
const CHURN_DECAY: f64 = 0.5;

/// Score assigned to objects the tracker has never observed a round for.
/// New arrivals read as fully churning — the conservative prior that keeps
/// triage from auto-finalizing an object the model has no settling history
/// for.
const CHURN_UNKNOWN: f64 = 1.0;

/// Per-object EWMA of posterior movement across re-aggregation rounds.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChurnTracker {
    /// Per-object churn score in `[0, 1]`; index = object id.
    scores: Vec<f64>,
    /// Re-aggregation rounds folded in so far.
    rounds: u64,
}

impl ChurnTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of objects covered.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when no object is covered yet.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Re-aggregation rounds folded in so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Grows the score vector to cover `num_objects`; new entries start at
    /// the unknown-churn prior.
    pub fn ensure_len(&mut self, num_objects: usize) {
        if num_objects > self.scores.len() {
            self.scores.resize(num_objects, CHURN_UNKNOWN);
        }
    }

    /// Folds one re-aggregation round into the scores: every object decays
    /// by [`CHURN_DECAY`], the `moved` objects gain the complementary mass.
    /// `moved` is the round's converged dirty frontier in id order
    /// (duplicates are harmless but waste the bump); `num_objects` is the
    /// corpus size after the round, so growth rows enter at the unknown
    /// prior *before* the decay.
    pub fn observe_round(&mut self, moved: &[ObjectId], num_objects: usize) {
        self.ensure_len(num_objects);
        for score in &mut self.scores {
            *score *= CHURN_DECAY;
        }
        for &o in moved {
            if o.index() < self.scores.len() {
                self.scores[o.index()] = (self.scores[o.index()] + (1.0 - CHURN_DECAY)).min(1.0);
            }
        }
        self.rounds += 1;
    }

    /// The churn score of one object, in `[0, 1]`. Objects the tracker has
    /// never covered read as fully churning ([`CHURN_UNKNOWN`]).
    pub fn churn(&self, object: ObjectId) -> f64 {
        self.scores
            .get(object.index())
            .copied()
            .unwrap_or(CHURN_UNKNOWN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_objects_read_as_fully_churning() {
        let tracker = ChurnTracker::new();
        assert_eq!(tracker.churn(ObjectId(7)), 1.0);
        assert_eq!(tracker.rounds(), 0);
    }

    #[test]
    fn still_objects_decay_and_moved_objects_stay_high() {
        let mut tracker = ChurnTracker::new();
        tracker.ensure_len(2);
        for _ in 0..5 {
            tracker.observe_round(&[ObjectId(1)], 2);
        }
        assert!(tracker.churn(ObjectId(0)) < 0.05, "still object kept churn");
        assert!(tracker.churn(ObjectId(1)) > 0.5, "moving object lost churn");
        assert_eq!(tracker.rounds(), 5);
        for o in 0..2 {
            let c = tracker.churn(ObjectId(o));
            assert!((0.0..=1.0).contains(&c) && c.is_finite());
        }
    }

    #[test]
    fn growth_rows_enter_at_the_unknown_prior() {
        let mut tracker = ChurnTracker::new();
        tracker.observe_round(&[], 1);
        tracker.observe_round(&[], 1);
        assert!(tracker.churn(ObjectId(0)) < 0.3);
        // A new object appears with the next round: it must not inherit the
        // settled object's low score.
        tracker.observe_round(&[], 2);
        assert!(tracker.churn(ObjectId(1)) > tracker.churn(ObjectId(0)));
    }

    #[test]
    fn round_trips_through_json() {
        let mut tracker = ChurnTracker::new();
        tracker.observe_round(&[ObjectId(0)], 3);
        let json = serde_json::to_string(&tracker).unwrap();
        let reread: ChurnTracker = serde_json::from_str(&json).unwrap();
        assert_eq!(tracker, reread);
    }
}
