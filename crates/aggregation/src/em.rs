//! Dawid–Skene expectation maximization over worker confusion matrices
//! (paper §4.1, Eq. 1–5).
//!
//! The module exposes the individual E- and M-steps (shared with the
//! incremental variant in [`crate::iem`]) and the traditional batch estimator
//! [`BatchEm`] that restarts the estimation on every call.

use crate::config::EmConfig;
use crate::init::InitStrategy;
use crate::Aggregator;
use crowdval_model::{
    AnswerSet, AssignmentMatrix, ConfusionMatrix, ExpertValidation, LabelId, ProbabilisticAnswerSet,
};
use crowdval_numerics::Matrix;

/// Smallest probability used inside logarithms; avoids `-inf` when a smoothed
/// confusion entry is still extremely small.
const LOG_FLOOR: f64 = 1e-12;

/// E-step (Eq. 1–4): estimates assignment probabilities from the worker
/// confusion matrices and label priors. Objects with an expert validation get
/// a point mass on the validated label (Eq. 4); objects without any answers
/// fall back to the priors.
pub fn expectation_step(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    confusions: &[ConfusionMatrix],
    priors: &[f64],
) -> AssignmentMatrix {
    let n = answers.num_objects();
    let m = answers.num_labels();
    debug_assert_eq!(confusions.len(), answers.num_workers());
    debug_assert_eq!(priors.len(), m);

    let mut raw = Matrix::zeros(n, m);
    for o in answers.objects() {
        if let Some(validated) = expert.get(o) {
            raw[(o.index(), validated.index())] = 1.0;
            continue;
        }
        let votes = answers.matrix().answers_for_object(o);
        // Work in the log domain: with dozens of workers the raw product of
        // probabilities underflows f64 quickly.
        let mut log_scores = vec![0.0f64; m];
        for (l, score) in log_scores.iter_mut().enumerate() {
            *score = priors[l].max(LOG_FLOOR).ln();
            for &(w, answered) in votes {
                let p = confusions[w.index()].prob(LabelId(l), answered);
                *score += p.max(LOG_FLOOR).ln();
            }
        }
        let max = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for (l, &score) in log_scores.iter().enumerate() {
            raw[(o.index(), l)] = (score - max).exp();
        }
    }
    AssignmentMatrix::from_matrix(raw)
}

/// M-step (Eq. 5): re-estimates every worker's confusion matrix from the soft
/// label assignments, with Laplace smoothing `alpha` on the counts.
pub fn maximization_step(
    answers: &AnswerSet,
    assignment: &AssignmentMatrix,
    alpha: f64,
) -> Vec<ConfusionMatrix> {
    let m = answers.num_labels();
    answers
        .workers()
        .map(|w| {
            let mut counts = Matrix::zeros(m, m);
            for &(o, answered) in answers.matrix().answers_for_worker(w) {
                for true_label in 0..m {
                    counts[(true_label, answered.index())] +=
                        assignment.prob(o, LabelId(true_label));
                }
            }
            ConfusionMatrix::from_counts(&counts, alpha)
        })
        .collect()
}

/// Label priors `p(l)` from the current assignment matrix (Eq. 3).
pub fn estimate_priors(assignment: &AssignmentMatrix) -> Vec<f64> {
    assignment.label_priors()
}

/// Runs alternating E/M iterations starting from the given confusion matrices
/// and priors until the assignment matrix converges or the iteration budget
/// is exhausted. Returns the final probabilistic answer set with the number
/// of EM iterations it took.
///
/// After convergence the solution is checked for the Dawid–Skene
/// *label-switching* ambiguity (see [`realign_label_switching`]).
pub fn run_em_from_confusions(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    confusions: Vec<ConfusionMatrix>,
    priors: Vec<f64>,
    config: &EmConfig,
) -> ProbabilisticAnswerSet {
    let (assignment, confusions, priors, iterations) =
        em_fixed_point(answers, expert, confusions, priors, config);
    realign_label_switching(
        answers, expert, assignment, confusions, priors, iterations, config,
    )
}

/// A worker counts as *informative* when its prior-weighted accuracy exceeds
/// chance (`1/m`) by this margin; the orientation with more informative
/// workers wins the cold-start realignment.
const ORIENTATION_MARGIN: f64 = 0.05;

/// Resolves the Dawid–Skene *label-switching* ambiguity of a converged EM
/// solution.
///
/// With a barely-better-than-chance crowd (the paper's default mix averages
/// ≈ 52 % per-answer accuracy) the likelihood has an exactly mirrored
/// optimum in which every label is globally permuted and the sloppy workers
/// masquerade as the reliable ones. The observed-data likelihood is
/// *invariant* under such global permutations, so the orientation must come
/// from an assumption or an anchor outside the crowd matrix:
///
/// * **Cold start** (no validations): the orientation with the larger number
///   of *informative* workers — prior-weighted accuracy above chance by
///   [`ORIENTATION_MARGIN`] — is chosen. This encodes the population
///   assumption behind the paper's synthetic setup (43 % reliable vs. 32 %
///   sloppy workers): honest workers outnumber systematically inverted ones.
///   The mirrored state is itself an EM fixed point, so realignment is a
///   free permutation of the converged solution — no EM re-run.
/// * **With validations**: expert validations are the anchor (the §4.1
///   premise that validations act as ground truth). The solution is oriented
///   so the *crowd-only* posterior (clamping bypassed — a clamped posterior
///   trivially agrees with every orientation) agrees with the validated
///   labels as much as possible; when a permutation wins, the EM is re-run
///   from the realigned estimate and kept only if it still anchors better
///   after convergence.
///
/// Landing in the mirrored basin is catastrophic for guided validation:
/// warm-started i-EM inherits the flipped basin forever, and
/// information-gain guidance then avoids the very validations that would
/// correct it (a validation contradicting a confident-but-wrong belief
/// *raises* expected entropy). Validated objects are clamped by the E-step
/// and are never affected by realignment.
#[allow(clippy::too_many_arguments)]
fn realign_label_switching(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    assignment: AssignmentMatrix,
    confusions: Vec<ConfusionMatrix>,
    priors: Vec<f64>,
    iterations: usize,
    config: &EmConfig,
) -> ProbabilisticAnswerSet {
    let m = priors.len();
    // Beyond 6 labels the factorial sweep is skipped (the paper's datasets
    // have at most 4 labels).
    if !(2..=6).contains(&m) || confusions.is_empty() {
        return ProbabilisticAnswerSet::new(assignment, confusions, priors, iterations);
    }
    let identity: Vec<usize> = (0..m).collect();

    // A single validated object is too weak an anchor: hypothesis
    // evaluations (which add exactly one hypothetical validation) would
    // otherwise flip the orientation back and forth and drown the
    // information-gain signal in realignment noise.
    const MIN_VALIDATION_ANCHORS: usize = 2;

    if expert.count() < MIN_VALIDATION_ANCHORS {
        // Cold start: compare the number of informative workers per
        // orientation. Under permutation π the accuracy of worker w reads
        // Σ_l p(π(l)) · C_w(π(l), l).
        let informative = |perm: &[usize]| -> usize {
            let chance = 1.0 / m as f64;
            confusions
                .iter()
                .filter(|c| {
                    let acc: f64 = (0..m)
                        .map(|l| priors[perm[l]] * c.prob(LabelId(perm[l]), LabelId(l)))
                        .sum();
                    acc > chance + ORIENTATION_MARGIN
                })
                .count()
        };
        let baseline = informative(&identity);
        let mut best: Option<(Vec<usize>, usize)> = None;
        for perm in permutations(m) {
            if perm == identity {
                continue;
            }
            let count = informative(&perm);
            let beats_best = best.as_ref().is_none_or(|(_, b)| count > *b);
            if count > baseline && beats_best {
                best = Some((perm, count));
            }
        }
        if let Some((perm, _)) = best {
            let realigned: Vec<ConfusionMatrix> = confusions
                .iter()
                .map(|c| permute_true_labels(c, &perm))
                .collect();
            let realigned_priors: Vec<f64> = perm.iter().map(|&l| priors[l]).collect();
            if expert.count() == 0 {
                // Without clamps the mirrored solution is an exact fixed
                // point of the label-symmetric model, so permuting in place
                // is both free and exact.
                let realigned_assignment = permute_assignment_columns(&assignment, &perm);
                return ProbabilisticAnswerSet::new(
                    realigned_assignment,
                    realigned,
                    realigned_priors,
                    iterations,
                );
            }
            // With a clamped object present the mirror is no longer an exact
            // fixed point — re-converge from the permuted estimate so the
            // validation stays honoured exactly.
            let (assignment, confusions, priors, more_iterations) =
                em_fixed_point(answers, expert, realigned, realigned_priors, config);
            return ProbabilisticAnswerSet::new(
                assignment,
                confusions,
                priors,
                iterations + more_iterations,
            );
        }
        return ProbabilisticAnswerSet::new(assignment, confusions, priors, iterations);
    }

    // Validation anchor: agreement between the validated labels and the
    // crowd-only posterior, per orientation. The posterior is independent of
    // the candidate permutation (a permutation only changes which entry is
    // read), so it is computed once per anchor and indexed per candidate.
    let anchor: Vec<(crowdval_model::ObjectId, LabelId)> = expert.iter().collect();
    let anchor_posteriors = |confusions: &[ConfusionMatrix], priors: &[f64]| -> Vec<Vec<f64>> {
        anchor
            .iter()
            .map(|&(o, _)| crowd_posterior_at(answers, confusions, priors, o))
            .collect()
    };
    let agreement_of = |posteriors: &[Vec<f64>], perm: &[usize]| -> f64 {
        anchor
            .iter()
            .zip(posteriors)
            .map(|(&(_, l), posterior)| posterior[perm[l.index()]])
            .sum()
    };
    let posteriors = anchor_posteriors(&confusions, &priors);
    let baseline = agreement_of(&posteriors, &identity);
    let mut best: Option<(Vec<usize>, f64)> = None;
    for perm in permutations(m) {
        if perm == identity {
            continue;
        }
        let s = agreement_of(&posteriors, &perm);
        let beats_best = best.as_ref().is_none_or(|(_, bs)| s > *bs);
        if s > baseline + 1e-6 && beats_best {
            best = Some((perm, s));
        }
    }
    let Some((perm, _)) = best else {
        return ProbabilisticAnswerSet::new(assignment, confusions, priors, iterations);
    };
    let realigned: Vec<ConfusionMatrix> = confusions
        .iter()
        .map(|c| permute_true_labels(c, &perm))
        .collect();
    let realigned_priors: Vec<f64> = perm.iter().map(|&l| priors[l]).collect();
    let (assignment_b, confusions_b, priors_b, more_iterations) =
        em_fixed_point(answers, expert, realigned, realigned_priors, config);
    // Keep the realigned fixed point only if it anchors at least as well
    // after convergence (the re-run can drift back into the old basin).
    let score_b = agreement_of(&anchor_posteriors(&confusions_b, &priors_b), &identity);
    if score_b > baseline {
        ProbabilisticAnswerSet::new(
            assignment_b,
            confusions_b,
            priors_b,
            iterations + more_iterations,
        )
    } else {
        // The probe is discarded: the returned state is the one reached after
        // `iterations`, and its iteration count must describe that state (the
        // fig08 warm-vs-cold comparison sums these counts).
        ProbabilisticAnswerSet::new(assignment, confusions, priors, iterations)
    }
}

/// Crowd-only posterior distribution of a single object (the E-step of Eq. 1
/// restricted to `object`, with expert clamping deliberately bypassed).
fn crowd_posterior_at(
    answers: &AnswerSet,
    confusions: &[ConfusionMatrix],
    priors: &[f64],
    object: crowdval_model::ObjectId,
) -> Vec<f64> {
    let m = answers.num_labels();
    let votes = answers.matrix().answers_for_object(object);
    let mut log_scores = vec![0.0f64; m];
    for (l, score) in log_scores.iter_mut().enumerate() {
        *score = priors[l].max(LOG_FLOOR).ln();
        for &(w, answered) in votes {
            *score += confusions[w.index()]
                .prob(LabelId(l), answered)
                .max(LOG_FLOOR)
                .ln();
        }
    }
    let max = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut probs: Vec<f64> = log_scores.iter().map(|&s| (s - max).exp()).collect();
    let total: f64 = probs.iter().sum();
    if total > 0.0 {
        for p in &mut probs {
            *p /= total;
        }
    }
    probs
}

/// Re-indexes the label axis of an assignment matrix by `perm`
/// (`U'(o, l) = U(o, perm[l])`).
fn permute_assignment_columns(assignment: &AssignmentMatrix, perm: &[usize]) -> AssignmentMatrix {
    let n = assignment.num_objects();
    let m = perm.len();
    let mut raw = Matrix::zeros(n, m);
    for o in 0..n {
        for l in 0..m {
            raw[(o, l)] = assignment.prob(crowdval_model::ObjectId(o), LabelId(perm[l]));
        }
    }
    AssignmentMatrix::from_matrix(raw)
}

/// The alternating E/M loop shared by the batch and incremental entry points.
fn em_fixed_point(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    mut confusions: Vec<ConfusionMatrix>,
    mut priors: Vec<f64>,
    config: &EmConfig,
) -> (AssignmentMatrix, Vec<ConfusionMatrix>, Vec<f64>, usize) {
    let mut assignment = expectation_step(answers, expert, &confusions, &priors);
    let mut iterations = 1;
    while iterations < config.max_iterations {
        confusions = maximization_step(answers, &assignment, config.smoothing_alpha);
        priors = estimate_priors(&assignment);
        let next = expectation_step(answers, expert, &confusions, &priors);
        iterations += 1;
        let delta = next.max_abs_diff(&assignment);
        assignment = next;
        if delta <= config.tolerance {
            break;
        }
    }
    // Make sure the reported confusions/priors correspond to the final
    // assignment matrix.
    confusions = maximization_step(answers, &assignment, config.smoothing_alpha);
    priors = estimate_priors(&assignment);
    (assignment, confusions, priors, iterations)
}

/// Observed-data log-likelihood of an EM solution under the Dawid–Skene
/// model; validated objects contribute their clamped label's terms. Exposed
/// for diagnostics and experiments (note that the likelihood is invariant
/// under global label permutations — it cannot pick an orientation).
pub fn log_likelihood(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    confusions: &[ConfusionMatrix],
    priors: &[f64],
) -> f64 {
    let m = answers.num_labels();
    let mut total = 0.0;
    for o in answers.objects() {
        let votes = answers.matrix().answers_for_object(o);
        if let Some(validated) = expert.get(o) {
            total += priors[validated.index()].max(LOG_FLOOR).ln();
            for &(w, a) in votes {
                total += confusions[w.index()].prob(validated, a).max(LOG_FLOOR).ln();
            }
            continue;
        }
        let mut log_terms = vec![0.0f64; m];
        for (l, term) in log_terms.iter_mut().enumerate() {
            *term = priors[l].max(LOG_FLOOR).ln();
            for &(w, a) in votes {
                *term += confusions[w.index()]
                    .prob(LabelId(l), a)
                    .max(LOG_FLOOR)
                    .ln();
            }
        }
        let max = log_terms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        total += max + log_terms.iter().map(|t| (t - max).exp()).sum::<f64>().ln();
    }
    total
}

/// All permutations of `0..m` (Heap's algorithm).
fn permutations(m: usize) -> Vec<Vec<usize>> {
    let mut items: Vec<usize> = (0..m).collect();
    let mut out = Vec::new();
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(m, &mut items, &mut out);
    out
}

/// Re-indexes the true-label axis of a confusion matrix by `perm`
/// (`C'(l, a) = C(perm[l], a)`); rows stay stochastic.
fn permute_true_labels(confusion: &ConfusionMatrix, perm: &[usize]) -> ConfusionMatrix {
    let m = confusion.num_labels();
    let mut rows = Matrix::zeros(m, m);
    for l in 0..m {
        for a in 0..m {
            rows[(l, a)] = confusion.prob(LabelId(perm[l]), LabelId(a));
        }
    }
    ConfusionMatrix::from_matrix(rows)
}

/// Runs alternating E/M iterations starting from an initial assignment
/// estimate (majority vote, uniform or random).
pub fn run_em_from_assignment(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    initial: AssignmentMatrix,
    config: &EmConfig,
) -> ProbabilisticAnswerSet {
    let confusions = maximization_step(answers, &initial, config.smoothing_alpha);
    let priors = estimate_priors(&initial);
    run_em_from_confusions(answers, expert, confusions, priors, config)
}

/// The traditional batch EM aggregator: every call re-estimates everything
/// from scratch, ignoring the previous probabilistic answer set.
#[derive(Debug, Clone, Copy)]
pub struct BatchEm {
    config: EmConfig,
    init: InitStrategy,
}

impl BatchEm {
    /// Batch EM with majority-vote initialization.
    pub fn new(config: EmConfig) -> Self {
        Self {
            config,
            init: InitStrategy::MajorityVote,
        }
    }

    /// Batch EM with an explicit initialization strategy.
    pub fn with_init(config: EmConfig, init: InitStrategy) -> Self {
        Self { config, init }
    }

    /// The configured initialization strategy.
    pub fn init(&self) -> InitStrategy {
        self.init
    }

    /// The EM hyper-parameters.
    pub fn config(&self) -> &EmConfig {
        &self.config
    }
}

impl Default for BatchEm {
    fn default() -> Self {
        Self::new(EmConfig::paper_default())
    }
}

impl Aggregator for BatchEm {
    fn conclude(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        _previous: Option<&ProbabilisticAnswerSet>,
    ) -> ProbabilisticAnswerSet {
        let initial = self.init.initial_assignment(answers, expert);
        run_em_from_assignment(answers, expert, initial, &self.config)
    }

    fn name(&self) -> &'static str {
        "batch-em"
    }
}

/// Convenience helper used by examples and tests: batch EM without any expert
/// input.
pub fn aggregate(answers: &AnswerSet) -> ProbabilisticAnswerSet {
    BatchEm::default().conclude(
        answers,
        &ExpertValidation::empty(answers.num_objects()),
        None,
    )
}

/// Returns `true` when every unvalidated object's distribution is still a
/// probability distribution — a cheap internal sanity check used in tests.
pub fn is_valid_probabilistic_answer_set(p: &ProbabilisticAnswerSet) -> bool {
    p.assignment().matrix().is_row_stochastic(1e-6)
        && p.confusions()
            .iter()
            .all(|c| c.matrix().is_row_stochastic(1e-6))
        && (p.priors().iter().sum::<f64>() - 1.0).abs() < 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_model::{LabelId, ObjectId, WorkerId};
    use crowdval_sim::SyntheticConfig;

    /// Three good workers, one adversarial worker, ten objects.
    fn toy() -> (AnswerSet, Vec<LabelId>) {
        let truth: Vec<LabelId> = (0..10).map(|i| LabelId(i % 2)).collect();
        let mut n = AnswerSet::new(10, 4, 2);
        for (o, &t) in truth.iter().enumerate() {
            for w in 0..3 {
                // Good workers: correct except worker 0 errs on object 7.
                let ans = if w == 0 && o == 7 {
                    LabelId(1 - t.index())
                } else {
                    t
                };
                n.record_answer(ObjectId(o), WorkerId(w), ans).unwrap();
            }
            // Worker 3 always answers the opposite.
            n.record_answer(ObjectId(o), WorkerId(3), LabelId(1 - t.index()))
                .unwrap();
        }
        (n, truth)
    }

    #[test]
    fn em_recovers_the_truth_on_the_toy_answer_set() {
        let (answers, truth) = toy();
        let p = aggregate(&answers);
        let d = p.instantiate();
        for (o, &t) in truth.iter().enumerate() {
            assert_eq!(d.label(ObjectId(o)), t, "object {o}");
        }
        assert!(is_valid_probabilistic_answer_set(&p));
    }

    #[test]
    fn em_learns_worker_reliability() {
        let (answers, _) = toy();
        let p = aggregate(&answers);
        let priors = p.priors();
        let good = p.confusion(WorkerId(1)).weighted_accuracy(priors);
        let adversarial = p.confusion(WorkerId(3)).weighted_accuracy(priors);
        assert!(good > 0.9, "good worker accuracy {good}");
        assert!(
            adversarial < 0.2,
            "adversarial worker accuracy {adversarial}"
        );
    }

    #[test]
    fn expert_validation_clamps_assignment() {
        let (answers, _) = toy();
        let mut e = ExpertValidation::empty(10);
        // Force an object to the label every worker disagrees with.
        e.set(ObjectId(0), LabelId(1));
        let p = BatchEm::default().conclude(&answers, &e, None);
        assert_eq!(p.assignment().prob(ObjectId(0), LabelId(1)), 1.0);
        assert_eq!(p.instantiate().label(ObjectId(0)), LabelId(1));
    }

    #[test]
    fn e_step_falls_back_to_priors_for_unanswered_objects() {
        let answers = AnswerSet::new(3, 2, 2);
        let confusions = vec![ConfusionMatrix::uniform(2); 2];
        let u = expectation_step(
            &answers,
            &ExpertValidation::empty(3),
            &confusions,
            &[0.7, 0.3],
        );
        assert!((u.prob(ObjectId(1), LabelId(0)) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn m_step_counts_match_hand_computation() {
        // One worker, two objects with hard assignments.
        let mut answers = AnswerSet::new(2, 1, 2);
        answers
            .record_answer(ObjectId(0), WorkerId(0), LabelId(0))
            .unwrap();
        answers
            .record_answer(ObjectId(1), WorkerId(0), LabelId(0))
            .unwrap();
        let mut assignment = AssignmentMatrix::uniform(2, 2);
        assignment.set_certain(ObjectId(0), LabelId(0));
        assignment.set_certain(ObjectId(1), LabelId(1));
        let confusions = maximization_step(&answers, &assignment, 0.0);
        // True label 0 answered as 0 once -> F(0,0) = 1; true label 1 answered
        // as 0 once -> F(1,0) = 1.
        assert!((confusions[0].prob(LabelId(0), LabelId(0)) - 1.0).abs() < 1e-9);
        assert!((confusions[0].prob(LabelId(1), LabelId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batch_em_beats_majority_voting_on_spammy_synthetic_data() {
        // Snapshot seed: at the paper-default mix the per-answer accuracy is
        // ≈ 52 %, so EM's edge over majority voting is stream-dependent (on a
        // minority of seeds the label orientation is unrecoverable without
        // expert input). This seed exercises the typical case.
        let synth = SyntheticConfig::paper_default(42).generate();
        let answers = synth.dataset.answers();
        let truth = synth.dataset.ground_truth();
        let mv = truth.precision(&crate::majority::majority_vote(answers));
        let em = truth.precision(&aggregate(answers).instantiate());
        assert!(
            em >= mv - 0.02,
            "EM precision {em:.3} should not be materially below majority voting {mv:.3}"
        );
        assert!(em > 0.6, "EM precision unexpectedly low: {em:.3}");
    }

    #[test]
    fn em_iteration_count_is_reported_and_bounded() {
        let (answers, _) = toy();
        let config = EmConfig {
            max_iterations: 5,
            ..EmConfig::paper_default()
        };
        let p = BatchEm::new(config).conclude(&answers, &ExpertValidation::empty(10), None);
        assert!(p.em_iterations() >= 1 && p.em_iterations() <= 5);
    }

    #[test]
    fn aggregator_name() {
        assert_eq!(BatchEm::default().name(), "batch-em");
        assert_eq!(BatchEm::default().init(), InitStrategy::MajorityVote);
    }
}
