//! Dawid–Skene expectation maximization over worker confusion matrices
//! (paper §4.1, Eq. 1–5).
//!
//! The module exposes the individual E- and M-steps (shared with the
//! incremental variant in [`crate::iem`]) and the traditional batch estimator
//! [`BatchEm`] that restarts the estimation on every call.
//!
//! All estimation runs through an [`EmWorkspace`](crate::workspace::EmWorkspace)
//! of reusable scratch buffers: the E-step reads per-worker log-confusion
//! tables cached once per M-step (instead of calling `ln()` per vote per
//! object per iteration) and writes into a preallocated assignment buffer, so
//! the steady-state EM iteration allocates nothing. The public `*_step`
//! functions below are thin allocation-at-the-edges wrappers over those
//! workspace kernels; the guidance hot path bypasses the wrappers entirely
//! via [`run_warm_em`] and [`crate::delta`].

use crate::config::EmConfig;
use crate::init::InitStrategy;
use crate::workspace::{refresh_worker_logs, with_workspace, EmWorkspace, LOG_FLOOR};
use crate::Aggregator;
use crowdval_model::{
    AnswerSet, AssignmentMatrix, ConfusionMatrix, ExpertValidation, LabelId, ObjectId,
    ProbabilisticAnswerSet, ValidationView, WorkerId,
};
use crowdval_numerics::Matrix;

/// Computes one object's posterior label distribution into `row` from the
/// cached log tables (Eq. 1–3, log domain). `votes` is a cheaply clonable
/// vote iterator (the paged-arena rows hand these out); `scores` is the
/// per-label log-score scratch. The row is normalized in place exactly as
/// [`Matrix::normalize_rows`] would.
#[inline]
pub(crate) fn posterior_row<I>(
    m: usize,
    votes: I,
    log_confusions: &[f64],
    log_priors: &[f64],
    scores: &mut [f64],
    row: &mut [f64],
) where
    I: Iterator<Item = (WorkerId, LabelId)> + Clone,
{
    for (l, score) in scores.iter_mut().enumerate() {
        *score = log_priors[l];
        for (w, answered) in votes.clone() {
            *score += log_confusions[w.index() * m * m + l * m + answered.index()];
        }
    }
    exp_normalize_scores(m, scores, row);
}

/// [`posterior_row`] specialized for a flat compact-view row slice: the same
/// per-label log-score accumulation over the same votes in the same order
/// (the compact mirror is rewritten from the paged chain, and the tombstone
/// filter here matches `ObjectVotes`), so the result is bitwise identical to
/// the iterator path — just without chunk-chain bookkeeping per vote.
#[inline]
pub(crate) fn posterior_row_flat(
    m: usize,
    votes: &[(u32, u32)],
    excluded: &[bool],
    log_confusions: &[f64],
    log_priors: &[f64],
    scores: &mut [f64],
    row: &mut [f64],
) {
    for (l, score) in scores.iter_mut().enumerate() {
        *score = log_priors[l];
        for &(w, answered) in votes {
            if excluded[w as usize] {
                continue;
            }
            *score += log_confusions[w as usize * m * m + l * m + answered as usize];
        }
    }
    exp_normalize_scores(m, scores, row);
}

/// The shared max-shifted exp-normalization tail of the posterior kernels
/// (one body, so the flat and iterator paths cannot drift apart).
#[inline]
fn exp_normalize_scores(m: usize, scores: &[f64], row: &mut [f64]) {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    for (l, &score) in scores.iter().enumerate() {
        row[l] = (score - max).exp();
    }
    let sum: f64 = row.iter().sum();
    if sum > 0.0 && sum.is_finite() {
        for v in row.iter_mut() {
            *v /= sum;
        }
    } else {
        let uniform = 1.0 / m as f64;
        for v in row.iter_mut() {
            *v = uniform;
        }
    }
}

/// One object's E-step row: clamp when validated, else the posterior from
/// the cached log tables — through the flat compact row when the mirror is
/// clean, through the paged chain otherwise (bitwise-identical results).
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn e_step_row<V: ValidationView>(
    m: usize,
    matrix: &crowdval_model::AnswerMatrix,
    view: &V,
    o: ObjectId,
    log_confusions: &[f64],
    log_priors: &[f64],
    scores: &mut [f64],
    row: &mut [f64],
) {
    if let Some(validated) = view.validated(o) {
        row.fill(0.0);
        row[validated.index()] = 1.0;
        return;
    }
    if let Some(pairs) = matrix.object_row_slice(o) {
        posterior_row_flat(
            m,
            pairs,
            matrix.excluded_mask(),
            log_confusions,
            log_priors,
            scores,
            row,
        );
    } else {
        posterior_row(
            m,
            matrix.answers_for_object(o),
            log_confusions,
            log_priors,
            scores,
            row,
        );
    }
}

/// How many rows ahead of the one being computed the E-step prefetches
/// voter confusion tables (compact-view rows only). Sized so the prefetch
/// distance covers roughly one DRAM round-trip of per-row compute at
/// paper-typical row lengths (a handful of votes, a handful of labels).
const E_STEP_PREFETCH_ROWS: usize = 8;

/// Issues software prefetches for the log-confusion cache lines of a
/// *future* object row's voters. Only possible on the compact views: the
/// CSR pair slab is sequential, so the voters of row `o + distance` are
/// already in cache while row `o` computes — the paged chains hide the
/// next row's voters behind a dependent chunk-pointer load. Prefetching
/// performs no arithmetic, so serial/parallel and paged/CSR bit-identity
/// are untouched; on non-x86_64 targets this is a no-op.
#[inline]
fn prefetch_confusion_rows(
    matrix: &crowdval_model::AnswerMatrix,
    o: usize,
    m: usize,
    log_confusions: &[f64],
) {
    #[cfg(target_arch = "x86_64")]
    if let Some(pairs) = matrix.object_row_slice(ObjectId(o)) {
        for &(w, _) in pairs {
            let idx = w as usize * m * m;
            // A worker's m×m log table spans up to two cache lines; touch
            // the first and last element so both lines are in flight.
            if idx + m * m <= log_confusions.len() {
                unsafe {
                    use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                    let base = log_confusions.as_ptr().add(idx);
                    _mm_prefetch(base as *const i8, _MM_HINT_T0);
                    _mm_prefetch(base.add(m * m - 1) as *const i8, _MM_HINT_T0);
                }
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (matrix, o, m, log_confusions);
    }
}

/// Workspace E-step kernel (Eq. 1–4): fills the workspace's current (or
/// `next`) assignment buffer from the cached log tables. Objects with a
/// validation in `view` get a point mass on the validated label (Eq. 4);
/// objects without any answers fall back to the priors.
pub(crate) fn expectation_step_ws<V: ValidationView>(
    answers: &AnswerSet,
    view: &V,
    ws: &mut EmWorkspace,
    into_next: bool,
) {
    let m = answers.num_labels();
    let n = answers.num_objects();
    let matrix = answers.matrix();
    let EmWorkspace {
        assignment,
        next_assignment,
        log_confusions,
        log_priors,
        log_scores,
        stat_rows_recomputed,
        ..
    } = ws;
    let target: &mut Matrix = if into_next {
        next_assignment
    } else {
        assignment
    };
    if crate::parblock::should_parallelize(n, crate::parblock::PAR_MIN_OBJECTS) {
        *stat_rows_recomputed += n;
        let log_confusions: &[f64] = log_confusions;
        let log_priors: &[f64] = log_priors;
        let block = crate::parblock::BLOCK_ROWS;
        let tasks: Vec<(usize, &mut [f64])> = target
            .as_mut_slice()
            .chunks_mut(block * m)
            .enumerate()
            .map(|(i, rows)| (i * block, rows))
            .collect();
        rayon::run_scoped_tasks(tasks, crate::parblock::em_threads(), |(first, rows)| {
            let mut scores = vec![0.0f64; m];
            for (j, row) in rows.chunks_mut(m).enumerate() {
                let o = ObjectId(first + j);
                prefetch_confusion_rows(
                    matrix,
                    o.index() + E_STEP_PREFETCH_ROWS,
                    m,
                    log_confusions,
                );
                e_step_row(
                    m,
                    matrix,
                    view,
                    o,
                    log_confusions,
                    log_priors,
                    &mut scores,
                    row,
                );
            }
        });
        return;
    }
    for o in answers.objects() {
        *stat_rows_recomputed += 1;
        let row = target.row_mut(o.index());
        prefetch_confusion_rows(matrix, o.index() + E_STEP_PREFETCH_ROWS, m, log_confusions);
        e_step_row(
            m,
            matrix,
            view,
            o,
            log_confusions,
            log_priors,
            log_scores,
            row,
        );
    }
}

/// Workspace M-step kernel for one worker (Eq. 5): accumulates soft counts
/// into the shared `counts` scratch and re-normalizes the worker's confusion
/// matrix in place, with Laplace smoothing `alpha`.
pub(crate) fn m_step_worker(
    answers: &AnswerSet,
    worker: WorkerId,
    assignment: &Matrix,
    counts: &mut Matrix,
    confusion: &mut ConfusionMatrix,
    alpha: f64,
    m: usize,
) {
    counts.fill(0.0);
    if let Some(pairs) = answers.matrix().worker_row_slice(worker) {
        // Flat compact-view fast path: the same (object, answered) pairs in
        // the same arrival order as the chunk-chain iterator below, so the
        // soft counts accumulate bitwise-identically.
        for &(o, answered) in pairs {
            for true_label in 0..m {
                counts[(true_label, answered as usize)] += assignment[(o as usize, true_label)];
            }
        }
    } else {
        for (o, answered) in answers.matrix().answers_for_worker(worker) {
            for true_label in 0..m {
                counts[(true_label, answered.index())] += assignment[(o.index(), true_label)];
            }
        }
    }
    let cm = confusion.matrix_mut();
    cm.copy_from(counts);
    if alpha > 0.0 {
        cm.add_scalar(alpha);
    }
    cm.normalize_rows();
}

/// Workspace M-step over every worker, refreshing each worker's cached
/// log-confusion rows afterwards (the once-per-M-step `ln()` refresh).
pub(crate) fn maximization_step_ws(answers: &AnswerSet, ws: &mut EmWorkspace, alpha: f64) {
    let m = answers.num_labels();
    let k = answers.num_workers();
    let EmWorkspace {
        assignment,
        confusions,
        counts,
        log_confusions,
        ..
    } = ws;
    if crate::parblock::should_parallelize(k, crate::parblock::PAR_MIN_WORKERS) {
        let assignment: &Matrix = assignment;
        let block = crate::parblock::BLOCK_WORKERS;
        let tasks: Vec<(usize, &mut [ConfusionMatrix], &mut [f64])> = confusions
            .chunks_mut(block)
            .zip(log_confusions.chunks_mut(block * m * m))
            .enumerate()
            .map(|(i, (confs, logs))| (i * block, confs, logs))
            .collect();
        rayon::run_scoped_tasks(
            tasks,
            crate::parblock::em_threads(),
            |(first, confs, logs)| {
                let mut counts = Matrix::zeros(m, m);
                for (j, confusion) in confs.iter_mut().enumerate() {
                    m_step_worker(
                        answers,
                        WorkerId(first + j),
                        assignment,
                        &mut counts,
                        confusion,
                        alpha,
                        m,
                    );
                    refresh_worker_logs(logs, confusion, j, m);
                }
            },
        );
        return;
    }
    for w in answers.workers() {
        let confusion = &mut confusions[w.index()];
        m_step_worker(answers, w, assignment, counts, confusion, alpha, m);
        refresh_worker_logs(log_confusions, confusion, w.index(), m);
    }
}

/// Re-estimates the workspace priors from the full assignment matrix (Eq. 3)
/// and refreshes the cached log-priors.
pub(crate) fn priors_from_assignment_ws(ws: &mut EmWorkspace) {
    let n = ws.num_objects;
    if n == 0 {
        let uniform = 1.0 / ws.num_labels as f64;
        ws.priors.iter_mut().for_each(|p| *p = uniform);
    } else {
        for l in 0..ws.num_labels {
            ws.priors[l] = ws.assignment.col_sum(l) / n as f64;
        }
    }
    ws.refresh_log_priors();
}

/// E-step (Eq. 1–4): estimates assignment probabilities from the worker
/// confusion matrices and label priors. Objects with an expert validation get
/// a point mass on the validated label (Eq. 4); objects without any answers
/// fall back to the priors.
pub fn expectation_step(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    confusions: &[ConfusionMatrix],
    priors: &[f64],
) -> AssignmentMatrix {
    debug_assert_eq!(confusions.len(), answers.num_workers());
    debug_assert_eq!(priors.len(), answers.num_labels());
    with_workspace(|ws| {
        ws.seed(answers, confusions, priors);
        expectation_step_ws(answers, expert, ws, false);
        AssignmentMatrix::from_normalized(ws.assignment.clone())
    })
}

/// M-step (Eq. 5): re-estimates every worker's confusion matrix from the soft
/// label assignments, with Laplace smoothing `alpha` on the counts.
pub fn maximization_step(
    answers: &AnswerSet,
    assignment: &AssignmentMatrix,
    alpha: f64,
) -> Vec<ConfusionMatrix> {
    with_workspace(|ws| {
        ws.ensure_shape(
            answers.num_objects(),
            answers.num_workers(),
            answers.num_labels(),
        );
        ws.assignment.copy_from(assignment.matrix());
        maximization_step_ws(answers, ws, alpha);
        ws.confusions.clone()
    })
}

/// Label priors `p(l)` from the current assignment matrix (Eq. 3).
pub fn estimate_priors(assignment: &AssignmentMatrix) -> Vec<f64> {
    assignment.label_priors()
}

/// Runs alternating E/M iterations starting from the given confusion matrices
/// and priors until the assignment matrix converges or the iteration budget
/// is exhausted. Returns the final probabilistic answer set with the number
/// of EM iterations it took.
///
/// After convergence the solution is checked for the Dawid–Skene
/// *label-switching* ambiguity (see [`realign_in_workspace`]).
pub fn run_em_from_confusions(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    confusions: &[ConfusionMatrix],
    priors: &[f64],
    config: &EmConfig,
) -> ProbabilisticAnswerSet {
    run_warm_em(answers, expert, confusions, priors, config)
}

/// [`run_em_from_confusions`] generalized over [`ValidationView`], so a
/// borrowed [`crowdval_model::HypothesisOverlay`] can drive the estimation
/// without materializing an `ExpertValidation` clone per hypothesis.
pub fn run_warm_em<V: ValidationView>(
    answers: &AnswerSet,
    view: &V,
    confusions: &[ConfusionMatrix],
    priors: &[f64],
    config: &EmConfig,
) -> ProbabilisticAnswerSet {
    with_workspace(|ws| {
        ws.seed(answers, confusions, priors);
        let iterations = run_em_in_workspace(answers, view, ws, config);
        let iterations = realign_in_workspace(answers, view, ws, iterations, config);
        ws.export(iterations)
    })
}

/// The alternating E/M loop shared by the batch and incremental entry points,
/// operating entirely inside the workspace. The workspace must be seeded
/// ([`EmWorkspace::seed`] or [`EmWorkspace::seed_from`]) with the starting
/// confusion matrices and priors — seeding also refreshes the cached log
/// tables, which this loop relies on (a preceding
/// [`maximization_step_ws`] + [`priors_from_assignment_ws`] pair refreshes
/// them too). On return the workspace holds the converged assignment,
/// confusions and priors. Performs zero heap allocations once the workspace
/// buffers are warm (asserted by the counting-allocator test in
/// `tests/alloc_free.rs`).
pub fn run_em_in_workspace<V: ValidationView>(
    answers: &AnswerSet,
    view: &V,
    ws: &mut EmWorkspace,
    config: &EmConfig,
) -> usize {
    expectation_step_ws(answers, view, ws, false);
    let mut iterations = 1;
    ws.stat_iterations += 1;
    while iterations < config.max_iterations {
        maximization_step_ws(answers, ws, config.smoothing_alpha);
        priors_from_assignment_ws(ws);
        expectation_step_ws(answers, view, ws, true);
        iterations += 1;
        ws.stat_iterations += 1;
        let delta = ws.next_assignment.max_abs_diff(&ws.assignment);
        std::mem::swap(&mut ws.assignment, &mut ws.next_assignment);
        if delta <= config.tolerance {
            break;
        }
    }
    // Make sure the reported confusions/priors correspond to the final
    // assignment matrix.
    maximization_step_ws(answers, ws, config.smoothing_alpha);
    priors_from_assignment_ws(ws);
    iterations
}

/// A worker counts as *informative* when its prior-weighted accuracy exceeds
/// chance (`1/m`) by this margin; the orientation with more informative
/// workers wins the cold-start realignment.
const ORIENTATION_MARGIN: f64 = 0.05;

/// Resolves the Dawid–Skene *label-switching* ambiguity of a converged EM
/// solution held in the workspace, returning the (possibly increased) total
/// iteration count.
///
/// With a barely-better-than-chance crowd (the paper's default mix averages
/// ≈ 52 % per-answer accuracy) the likelihood has an exactly mirrored
/// optimum in which every label is globally permuted and the sloppy workers
/// masquerade as the reliable ones. The observed-data likelihood is
/// *invariant* under such global permutations, so the orientation must come
/// from an assumption or an anchor outside the crowd matrix:
///
/// * **Cold start** (no validations): the orientation with the larger number
///   of *informative* workers — prior-weighted accuracy above chance by
///   [`ORIENTATION_MARGIN`] — is chosen. This encodes the population
///   assumption behind the paper's synthetic setup (43 % reliable vs. 32 %
///   sloppy workers): honest workers outnumber systematically inverted ones.
///   The mirrored state is itself an EM fixed point, so realignment is a
///   free permutation of the converged solution — no EM re-run.
/// * **With validations**: expert validations (pinned hypotheses included)
///   are the anchor (the §4.1 premise that validations act as ground truth).
///   The solution is oriented so the *crowd-only* posterior (clamping
///   bypassed — a clamped posterior trivially agrees with every orientation)
///   agrees with the validated labels as much as possible; when a permutation
///   wins, the EM is re-run from the realigned estimate and kept only if it
///   still anchors better after convergence.
///
/// Landing in the mirrored basin is catastrophic for guided validation:
/// warm-started i-EM inherits the flipped basin forever, and
/// information-gain guidance then avoids the very validations that would
/// correct it (a validation contradicting a confident-but-wrong belief
/// *raises* expected entropy). Validated objects are clamped by the E-step
/// and are never affected by realignment.
pub(crate) fn realign_in_workspace<V: ValidationView>(
    answers: &AnswerSet,
    view: &V,
    ws: &mut EmWorkspace,
    iterations: usize,
    config: &EmConfig,
) -> usize {
    let m = ws.num_labels;
    // Beyond 6 labels the factorial sweep is skipped (the paper's datasets
    // have at most 4 labels).
    if !(2..=6).contains(&m) || ws.confusions.is_empty() {
        return iterations;
    }
    let identity: Vec<usize> = (0..m).collect();

    // A single validated object is too weak an anchor: hypothesis
    // evaluations (which add exactly one hypothetical validation) would
    // otherwise flip the orientation back and forth and drown the
    // information-gain signal in realignment noise.
    const MIN_VALIDATION_ANCHORS: usize = 2;

    if view.validated_count() < MIN_VALIDATION_ANCHORS {
        // Cold start: compare the number of informative workers per
        // orientation. Under permutation π the accuracy of worker w reads
        // Σ_l p(π(l)) · C_w(π(l), l).
        let informative = |perm: &[usize]| -> usize {
            let chance = 1.0 / m as f64;
            ws.confusions
                .iter()
                .filter(|c| {
                    let acc: f64 = (0..m)
                        .map(|l| ws.priors[perm[l]] * c.prob(LabelId(perm[l]), LabelId(l)))
                        .sum();
                    acc > chance + ORIENTATION_MARGIN
                })
                .count()
        };
        let baseline = informative(&identity);
        let mut best: Option<(Vec<usize>, usize)> = None;
        for perm in permutations(m) {
            if perm == identity {
                continue;
            }
            let count = informative(&perm);
            let beats_best = best.as_ref().is_none_or(|(_, b)| count > *b);
            if count > baseline && beats_best {
                best = Some((perm, count));
            }
        }
        if let Some((perm, _)) = best {
            permute_workspace_model(ws, &perm);
            if view.validated_count() == 0 {
                // Without clamps the mirrored solution is an exact fixed
                // point of the label-symmetric model, so permuting in place
                // is both free and exact.
                permute_assignment_columns_in_place(&mut ws.assignment, &perm);
                return iterations;
            }
            // With a clamped object present the mirror is no longer an exact
            // fixed point — re-converge from the permuted estimate so the
            // validation stays honoured exactly.
            let more_iterations = run_em_in_workspace(answers, view, ws, config);
            return iterations + more_iterations;
        }
        return iterations;
    }

    // Validation anchor: agreement between the validated labels and the
    // crowd-only posterior, per orientation. The posterior is independent of
    // the candidate permutation (a permutation only changes which entry is
    // read), so it is computed once per anchor and indexed per candidate.
    let anchor: Vec<(ObjectId, LabelId)> = view.validated_pairs();
    let anchor_posteriors = |confusions: &[ConfusionMatrix], priors: &[f64]| -> Vec<Vec<f64>> {
        anchor
            .iter()
            .map(|&(o, _)| crowd_posterior_at(answers, confusions, priors, o))
            .collect()
    };
    let agreement_of = |posteriors: &[Vec<f64>], perm: &[usize]| -> f64 {
        anchor
            .iter()
            .zip(posteriors)
            .map(|(&(_, l), posterior)| posterior[perm[l.index()]])
            .sum()
    };
    let posteriors = anchor_posteriors(&ws.confusions, &ws.priors);
    let baseline = agreement_of(&posteriors, &identity);
    let mut best: Option<(Vec<usize>, f64)> = None;
    for perm in permutations(m) {
        if perm == identity {
            continue;
        }
        let s = agreement_of(&posteriors, &perm);
        let beats_best = best.as_ref().is_none_or(|(_, bs)| s > *bs);
        if s > baseline + 1e-6 && beats_best {
            best = Some((perm, s));
        }
    }
    let Some((perm, _)) = best else {
        return iterations;
    };
    // Snapshot the pre-probe state: the probe re-run can drift back into the
    // old basin, in which case the original state (and its honest iteration
    // count — the fig08 warm-vs-cold comparison sums these) is restored.
    let snapshot_assignment = ws.assignment.clone();
    let snapshot_confusions = ws.confusions.clone();
    let snapshot_priors = ws.priors.clone();
    permute_workspace_model(ws, &perm);
    let more_iterations = run_em_in_workspace(answers, view, ws, config);
    let score_b = agreement_of(&anchor_posteriors(&ws.confusions, &ws.priors), &identity);
    if score_b > baseline {
        iterations + more_iterations
    } else {
        ws.assignment = snapshot_assignment;
        ws.confusions = snapshot_confusions;
        ws.priors = snapshot_priors;
        ws.refresh_log_tables();
        iterations
    }
}

/// Permutes the true-label axis of every workspace confusion matrix and the
/// priors by `perm` (rare realignment path — allocation is fine here).
fn permute_workspace_model(ws: &mut EmWorkspace, perm: &[usize]) {
    let realigned: Vec<ConfusionMatrix> = ws
        .confusions
        .iter()
        .map(|c| permute_true_labels(c, perm))
        .collect();
    ws.confusions = realigned;
    let realigned_priors: Vec<f64> = perm.iter().map(|&l| ws.priors[l]).collect();
    ws.priors.copy_from_slice(&realigned_priors);
    ws.refresh_log_tables();
}

/// Crowd-only posterior distribution of a single object (the E-step of Eq. 1
/// restricted to `object`, with expert clamping deliberately bypassed).
fn crowd_posterior_at(
    answers: &AnswerSet,
    confusions: &[ConfusionMatrix],
    priors: &[f64],
    object: ObjectId,
) -> Vec<f64> {
    let m = answers.num_labels();
    let votes = answers.matrix().answers_for_object(object);
    let mut log_scores = vec![0.0f64; m];
    for (l, score) in log_scores.iter_mut().enumerate() {
        *score = priors[l].max(LOG_FLOOR).ln();
        for (w, answered) in votes.clone() {
            *score += confusions[w.index()]
                .prob(LabelId(l), answered)
                .max(LOG_FLOOR)
                .ln();
        }
    }
    let max = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut probs: Vec<f64> = log_scores.iter().map(|&s| (s - max).exp()).collect();
    let total: f64 = probs.iter().sum();
    if total > 0.0 {
        for p in &mut probs {
            *p /= total;
        }
    }
    probs
}

/// Re-indexes the label axis of an assignment matrix by `perm` in place
/// (`U'(o, l) = U(o, perm[l])`).
fn permute_assignment_columns_in_place(assignment: &mut Matrix, perm: &[usize]) {
    let m = perm.len();
    let mut permuted = vec![0.0f64; m];
    for o in 0..assignment.rows() {
        let row = assignment.row_mut(o);
        for (l, p) in permuted.iter_mut().enumerate() {
            *p = row[perm[l]];
        }
        row.copy_from_slice(&permuted);
    }
}

/// Observed-data log-likelihood of an EM solution under the Dawid–Skene
/// model; validated objects contribute their clamped label's terms. Exposed
/// for diagnostics and experiments (note that the likelihood is invariant
/// under global label permutations — it cannot pick an orientation).
pub fn log_likelihood(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    confusions: &[ConfusionMatrix],
    priors: &[f64],
) -> f64 {
    let m = answers.num_labels();
    let mut total = 0.0;
    for o in answers.objects() {
        let votes = answers.matrix().answers_for_object(o);
        if let Some(validated) = expert.get(o) {
            total += priors[validated.index()].max(LOG_FLOOR).ln();
            for (w, a) in votes {
                total += confusions[w.index()].prob(validated, a).max(LOG_FLOOR).ln();
            }
            continue;
        }
        let mut log_terms = vec![0.0f64; m];
        for (l, term) in log_terms.iter_mut().enumerate() {
            *term = priors[l].max(LOG_FLOOR).ln();
            for (w, a) in votes.clone() {
                *term += confusions[w.index()]
                    .prob(LabelId(l), a)
                    .max(LOG_FLOOR)
                    .ln();
            }
        }
        let max = log_terms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        total += max + log_terms.iter().map(|t| (t - max).exp()).sum::<f64>().ln();
    }
    total
}

/// All permutations of `0..m` (Heap's algorithm).
fn permutations(m: usize) -> Vec<Vec<usize>> {
    let mut items: Vec<usize> = (0..m).collect();
    let mut out = Vec::new();
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(m, &mut items, &mut out);
    out
}

/// Re-indexes the true-label axis of a confusion matrix by `perm`
/// (`C'(l, a) = C(perm[l], a)`); rows stay stochastic.
fn permute_true_labels(confusion: &ConfusionMatrix, perm: &[usize]) -> ConfusionMatrix {
    let m = confusion.num_labels();
    let mut rows = Matrix::zeros(m, m);
    for l in 0..m {
        for a in 0..m {
            rows[(l, a)] = confusion.prob(LabelId(perm[l]), LabelId(a));
        }
    }
    ConfusionMatrix::from_matrix(rows)
}

/// Runs alternating E/M iterations starting from an initial assignment
/// estimate (majority vote, uniform or random).
pub fn run_em_from_assignment(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    initial: AssignmentMatrix,
    config: &EmConfig,
) -> ProbabilisticAnswerSet {
    with_workspace(|ws| {
        ws.ensure_shape(
            answers.num_objects(),
            answers.num_workers(),
            answers.num_labels(),
        );
        ws.assignment.copy_from(initial.matrix());
        maximization_step_ws(answers, ws, config.smoothing_alpha);
        priors_from_assignment_ws(ws);
        let iterations = run_em_in_workspace(answers, expert, ws, config);
        let iterations = realign_in_workspace(answers, expert, ws, iterations, config);
        ws.export(iterations)
    })
}

/// The traditional batch EM aggregator: every call re-estimates everything
/// from scratch, ignoring the previous probabilistic answer set.
#[derive(Debug, Clone, Copy)]
pub struct BatchEm {
    config: EmConfig,
    init: InitStrategy,
}

impl BatchEm {
    /// Batch EM with majority-vote initialization.
    pub fn new(config: EmConfig) -> Self {
        Self {
            config,
            init: InitStrategy::MajorityVote,
        }
    }

    /// Batch EM with an explicit initialization strategy.
    pub fn with_init(config: EmConfig, init: InitStrategy) -> Self {
        Self { config, init }
    }

    /// The configured initialization strategy.
    pub fn init(&self) -> InitStrategy {
        self.init
    }

    /// The EM hyper-parameters.
    pub fn config(&self) -> &EmConfig {
        &self.config
    }
}

impl Default for BatchEm {
    fn default() -> Self {
        Self::new(EmConfig::paper_default())
    }
}

impl Aggregator for BatchEm {
    fn conclude(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        _previous: Option<&ProbabilisticAnswerSet>,
    ) -> ProbabilisticAnswerSet {
        let initial = self.init.initial_assignment(answers, expert);
        run_em_from_assignment(answers, expert, initial, &self.config)
    }

    fn name(&self) -> &'static str {
        "batch-em"
    }

    fn snapshot_state(&self) -> Option<crate::AggregatorState> {
        Some(crate::AggregatorState::BatchEm {
            config: self.config,
            init: self.init,
        })
    }
}

/// Convenience helper used by examples and tests: batch EM without any expert
/// input.
pub fn aggregate(answers: &AnswerSet) -> ProbabilisticAnswerSet {
    BatchEm::default().conclude(
        answers,
        &ExpertValidation::empty(answers.num_objects()),
        None,
    )
}

/// Returns `true` when every unvalidated object's distribution is still a
/// probability distribution — a cheap internal sanity check used in tests.
pub fn is_valid_probabilistic_answer_set(p: &ProbabilisticAnswerSet) -> bool {
    p.assignment().matrix().is_row_stochastic(1e-6)
        && p.confusions()
            .iter()
            .all(|c| c.matrix().is_row_stochastic(1e-6))
        && (p.priors().iter().sum::<f64>() - 1.0).abs() < 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_model::{LabelId, ObjectId, WorkerId};
    use crowdval_sim::SyntheticConfig;

    /// Three good workers, one adversarial worker, ten objects.
    fn toy() -> (AnswerSet, Vec<LabelId>) {
        let truth: Vec<LabelId> = (0..10).map(|i| LabelId(i % 2)).collect();
        let mut n = AnswerSet::new(10, 4, 2);
        for (o, &t) in truth.iter().enumerate() {
            for w in 0..3 {
                // Good workers: correct except worker 0 errs on object 7.
                let ans = if w == 0 && o == 7 {
                    LabelId(1 - t.index())
                } else {
                    t
                };
                n.record_answer(ObjectId(o), WorkerId(w), ans).unwrap();
            }
            // Worker 3 always answers the opposite.
            n.record_answer(ObjectId(o), WorkerId(3), LabelId(1 - t.index()))
                .unwrap();
        }
        (n, truth)
    }

    #[test]
    fn em_recovers_the_truth_on_the_toy_answer_set() {
        let (answers, truth) = toy();
        let p = aggregate(&answers);
        let d = p.instantiate();
        for (o, &t) in truth.iter().enumerate() {
            assert_eq!(d.label(ObjectId(o)), t, "object {o}");
        }
        assert!(is_valid_probabilistic_answer_set(&p));
    }

    #[test]
    fn em_learns_worker_reliability() {
        let (answers, _) = toy();
        let p = aggregate(&answers);
        let priors = p.priors();
        let good = p.confusion(WorkerId(1)).weighted_accuracy(priors);
        let adversarial = p.confusion(WorkerId(3)).weighted_accuracy(priors);
        assert!(good > 0.9, "good worker accuracy {good}");
        assert!(
            adversarial < 0.2,
            "adversarial worker accuracy {adversarial}"
        );
    }

    #[test]
    fn expert_validation_clamps_assignment() {
        let (answers, _) = toy();
        let mut e = ExpertValidation::empty(10);
        // Force an object to the label every worker disagrees with.
        e.set(ObjectId(0), LabelId(1));
        let p = BatchEm::default().conclude(&answers, &e, None);
        assert_eq!(p.assignment().prob(ObjectId(0), LabelId(1)), 1.0);
        assert_eq!(p.instantiate().label(ObjectId(0)), LabelId(1));
    }

    #[test]
    fn e_step_falls_back_to_priors_for_unanswered_objects() {
        let answers = AnswerSet::new(3, 2, 2);
        let confusions = vec![ConfusionMatrix::uniform(2); 2];
        let u = expectation_step(
            &answers,
            &ExpertValidation::empty(3),
            &confusions,
            &[0.7, 0.3],
        );
        assert!((u.prob(ObjectId(1), LabelId(0)) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn m_step_counts_match_hand_computation() {
        // One worker, two objects with hard assignments.
        let mut answers = AnswerSet::new(2, 1, 2);
        answers
            .record_answer(ObjectId(0), WorkerId(0), LabelId(0))
            .unwrap();
        answers
            .record_answer(ObjectId(1), WorkerId(0), LabelId(0))
            .unwrap();
        let mut assignment = AssignmentMatrix::uniform(2, 2);
        assignment.set_certain(ObjectId(0), LabelId(0));
        assignment.set_certain(ObjectId(1), LabelId(1));
        let confusions = maximization_step(&answers, &assignment, 0.0);
        // True label 0 answered as 0 once -> F(0,0) = 1; true label 1 answered
        // as 0 once -> F(1,0) = 1.
        assert!((confusions[0].prob(LabelId(0), LabelId(0)) - 1.0).abs() < 1e-9);
        assert!((confusions[0].prob(LabelId(1), LabelId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batch_em_beats_majority_voting_on_spammy_synthetic_data() {
        // Snapshot seed: at the paper-default mix the per-answer accuracy is
        // ≈ 52 %, so EM's edge over majority voting is stream-dependent (on a
        // minority of seeds the label orientation is unrecoverable without
        // expert input). This seed exercises the typical case.
        let synth = SyntheticConfig::paper_default(42).generate();
        let answers = synth.dataset.answers();
        let truth = synth.dataset.ground_truth();
        let mv = truth.precision(&crate::majority::majority_vote(answers));
        let em = truth.precision(&aggregate(answers).instantiate());
        assert!(
            em >= mv - 0.02,
            "EM precision {em:.3} should not be materially below majority voting {mv:.3}"
        );
        assert!(em > 0.6, "EM precision unexpectedly low: {em:.3}");
    }

    #[test]
    fn em_iteration_count_is_reported_and_bounded() {
        let (answers, _) = toy();
        let config = EmConfig {
            max_iterations: 5,
            ..EmConfig::paper_default()
        };
        let p = BatchEm::new(config).conclude(&answers, &ExpertValidation::empty(10), None);
        assert!(p.em_iterations() >= 1 && p.em_iterations() <= 5);
    }

    #[test]
    fn aggregator_name() {
        assert_eq!(BatchEm::default().name(), "batch-em");
        assert_eq!(BatchEm::default().init(), InitStrategy::MajorityVote);
    }

    #[test]
    fn workspace_e_step_matches_the_public_wrapper() {
        let (answers, _) = toy();
        let confusions = vec![ConfusionMatrix::diagonal(2, 0.8); 4];
        let priors = [0.6, 0.4];
        let expert = ExpertValidation::empty(10);
        let via_wrapper = expectation_step(&answers, &expert, &confusions, &priors);
        let mut ws = EmWorkspace::new();
        ws.seed(&answers, &confusions, &priors);
        expectation_step_ws(&answers, &expert, &mut ws, false);
        assert_eq!(ws.assignment().max_abs_diff(via_wrapper.matrix()), 0.0);
    }
}
