//! Dawid–Skene expectation maximization over worker confusion matrices
//! (paper §4.1, Eq. 1–5).
//!
//! The module exposes the individual E- and M-steps (shared with the
//! incremental variant in [`crate::iem`]) and the traditional batch estimator
//! [`BatchEm`] that restarts the estimation on every call.

use crate::config::EmConfig;
use crate::init::InitStrategy;
use crate::Aggregator;
use crowdval_model::{
    AnswerSet, AssignmentMatrix, ConfusionMatrix, ExpertValidation, LabelId,
    ProbabilisticAnswerSet,
};
use crowdval_numerics::Matrix;

/// Smallest probability used inside logarithms; avoids `-inf` when a smoothed
/// confusion entry is still extremely small.
const LOG_FLOOR: f64 = 1e-12;

/// E-step (Eq. 1–4): estimates assignment probabilities from the worker
/// confusion matrices and label priors. Objects with an expert validation get
/// a point mass on the validated label (Eq. 4); objects without any answers
/// fall back to the priors.
pub fn expectation_step(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    confusions: &[ConfusionMatrix],
    priors: &[f64],
) -> AssignmentMatrix {
    let n = answers.num_objects();
    let m = answers.num_labels();
    debug_assert_eq!(confusions.len(), answers.num_workers());
    debug_assert_eq!(priors.len(), m);

    let mut raw = Matrix::zeros(n, m);
    for o in answers.objects() {
        if let Some(validated) = expert.get(o) {
            raw[(o.index(), validated.index())] = 1.0;
            continue;
        }
        let votes = answers.matrix().answers_for_object(o);
        // Work in the log domain: with dozens of workers the raw product of
        // probabilities underflows f64 quickly.
        let mut log_scores = vec![0.0f64; m];
        for (l, score) in log_scores.iter_mut().enumerate() {
            *score = priors[l].max(LOG_FLOOR).ln();
            for &(w, answered) in votes {
                let p = confusions[w.index()].prob(LabelId(l), answered);
                *score += p.max(LOG_FLOOR).ln();
            }
        }
        let max = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for (l, &score) in log_scores.iter().enumerate() {
            raw[(o.index(), l)] = (score - max).exp();
        }
    }
    AssignmentMatrix::from_matrix(raw)
}

/// M-step (Eq. 5): re-estimates every worker's confusion matrix from the soft
/// label assignments, with Laplace smoothing `alpha` on the counts.
pub fn maximization_step(
    answers: &AnswerSet,
    assignment: &AssignmentMatrix,
    alpha: f64,
) -> Vec<ConfusionMatrix> {
    let m = answers.num_labels();
    answers
        .workers()
        .map(|w| {
            let mut counts = Matrix::zeros(m, m);
            for &(o, answered) in answers.matrix().answers_for_worker(w) {
                for true_label in 0..m {
                    counts[(true_label, answered.index())] +=
                        assignment.prob(o, LabelId(true_label));
                }
            }
            ConfusionMatrix::from_counts(&counts, alpha)
        })
        .collect()
}

/// Label priors `p(l)` from the current assignment matrix (Eq. 3).
pub fn estimate_priors(assignment: &AssignmentMatrix) -> Vec<f64> {
    assignment.label_priors()
}

/// Runs alternating E/M iterations starting from the given confusion matrices
/// and priors until the assignment matrix converges or the iteration budget
/// is exhausted. Returns the final probabilistic answer set with the number
/// of EM iterations it took.
pub fn run_em_from_confusions(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    mut confusions: Vec<ConfusionMatrix>,
    mut priors: Vec<f64>,
    config: &EmConfig,
) -> ProbabilisticAnswerSet {
    let mut assignment = expectation_step(answers, expert, &confusions, &priors);
    let mut iterations = 1;
    while iterations < config.max_iterations {
        confusions = maximization_step(answers, &assignment, config.smoothing_alpha);
        priors = estimate_priors(&assignment);
        let next = expectation_step(answers, expert, &confusions, &priors);
        iterations += 1;
        let delta = next.max_abs_diff(&assignment);
        assignment = next;
        if delta <= config.tolerance {
            break;
        }
    }
    // Make sure the reported confusions/priors correspond to the final
    // assignment matrix.
    confusions = maximization_step(answers, &assignment, config.smoothing_alpha);
    priors = estimate_priors(&assignment);
    ProbabilisticAnswerSet::new(assignment, confusions, priors, iterations)
}

/// Runs alternating E/M iterations starting from an initial assignment
/// estimate (majority vote, uniform or random).
pub fn run_em_from_assignment(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    initial: AssignmentMatrix,
    config: &EmConfig,
) -> ProbabilisticAnswerSet {
    let confusions = maximization_step(answers, &initial, config.smoothing_alpha);
    let priors = estimate_priors(&initial);
    run_em_from_confusions(answers, expert, confusions, priors, config)
}

/// The traditional batch EM aggregator: every call re-estimates everything
/// from scratch, ignoring the previous probabilistic answer set.
#[derive(Debug, Clone, Copy)]
pub struct BatchEm {
    config: EmConfig,
    init: InitStrategy,
}

impl BatchEm {
    /// Batch EM with majority-vote initialization.
    pub fn new(config: EmConfig) -> Self {
        Self { config, init: InitStrategy::MajorityVote }
    }

    /// Batch EM with an explicit initialization strategy.
    pub fn with_init(config: EmConfig, init: InitStrategy) -> Self {
        Self { config, init }
    }

    /// The configured initialization strategy.
    pub fn init(&self) -> InitStrategy {
        self.init
    }

    /// The EM hyper-parameters.
    pub fn config(&self) -> &EmConfig {
        &self.config
    }
}

impl Default for BatchEm {
    fn default() -> Self {
        Self::new(EmConfig::paper_default())
    }
}

impl Aggregator for BatchEm {
    fn conclude(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        _previous: Option<&ProbabilisticAnswerSet>,
    ) -> ProbabilisticAnswerSet {
        let initial = self.init.initial_assignment(answers, expert);
        run_em_from_assignment(answers, expert, initial, &self.config)
    }

    fn name(&self) -> &'static str {
        "batch-em"
    }
}

/// Convenience helper used by examples and tests: batch EM without any expert
/// input.
pub fn aggregate(answers: &AnswerSet) -> ProbabilisticAnswerSet {
    BatchEm::default().conclude(answers, &ExpertValidation::empty(answers.num_objects()), None)
}

/// Returns `true` when every unvalidated object's distribution is still a
/// probability distribution — a cheap internal sanity check used in tests.
pub fn is_valid_probabilistic_answer_set(p: &ProbabilisticAnswerSet) -> bool {
    p.assignment().matrix().is_row_stochastic(1e-6)
        && p.confusions().iter().all(|c| c.matrix().is_row_stochastic(1e-6))
        && (p.priors().iter().sum::<f64>() - 1.0).abs() < 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_model::{LabelId, ObjectId, WorkerId};
    use crowdval_sim::SyntheticConfig;

    /// Three good workers, one adversarial worker, ten objects.
    fn toy() -> (AnswerSet, Vec<LabelId>) {
        let truth: Vec<LabelId> = (0..10).map(|i| LabelId(i % 2)).collect();
        let mut n = AnswerSet::new(10, 4, 2);
        for (o, &t) in truth.iter().enumerate() {
            for w in 0..3 {
                // Good workers: correct except worker 0 errs on object 7.
                let ans = if w == 0 && o == 7 { LabelId(1 - t.index()) } else { t };
                n.record_answer(ObjectId(o), WorkerId(w), ans).unwrap();
            }
            // Worker 3 always answers the opposite.
            n.record_answer(ObjectId(o), WorkerId(3), LabelId(1 - t.index())).unwrap();
        }
        (n, truth)
    }

    #[test]
    fn em_recovers_the_truth_on_the_toy_answer_set() {
        let (answers, truth) = toy();
        let p = aggregate(&answers);
        let d = p.instantiate();
        for (o, &t) in truth.iter().enumerate() {
            assert_eq!(d.label(ObjectId(o)), t, "object {o}");
        }
        assert!(is_valid_probabilistic_answer_set(&p));
    }

    #[test]
    fn em_learns_worker_reliability() {
        let (answers, _) = toy();
        let p = aggregate(&answers);
        let priors = p.priors();
        let good = p.confusion(WorkerId(1)).weighted_accuracy(priors);
        let adversarial = p.confusion(WorkerId(3)).weighted_accuracy(priors);
        assert!(good > 0.9, "good worker accuracy {good}");
        assert!(adversarial < 0.2, "adversarial worker accuracy {adversarial}");
    }

    #[test]
    fn expert_validation_clamps_assignment() {
        let (answers, _) = toy();
        let mut e = ExpertValidation::empty(10);
        // Force an object to the label every worker disagrees with.
        e.set(ObjectId(0), LabelId(1));
        let p = BatchEm::default().conclude(&answers, &e, None);
        assert_eq!(p.assignment().prob(ObjectId(0), LabelId(1)), 1.0);
        assert_eq!(p.instantiate().label(ObjectId(0)), LabelId(1));
    }

    #[test]
    fn e_step_falls_back_to_priors_for_unanswered_objects() {
        let answers = AnswerSet::new(3, 2, 2);
        let confusions = vec![ConfusionMatrix::uniform(2); 2];
        let u = expectation_step(
            &answers,
            &ExpertValidation::empty(3),
            &confusions,
            &[0.7, 0.3],
        );
        assert!((u.prob(ObjectId(1), LabelId(0)) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn m_step_counts_match_hand_computation() {
        // One worker, two objects with hard assignments.
        let mut answers = AnswerSet::new(2, 1, 2);
        answers.record_answer(ObjectId(0), WorkerId(0), LabelId(0)).unwrap();
        answers.record_answer(ObjectId(1), WorkerId(0), LabelId(0)).unwrap();
        let mut assignment = AssignmentMatrix::uniform(2, 2);
        assignment.set_certain(ObjectId(0), LabelId(0));
        assignment.set_certain(ObjectId(1), LabelId(1));
        let confusions = maximization_step(&answers, &assignment, 0.0);
        // True label 0 answered as 0 once -> F(0,0) = 1; true label 1 answered
        // as 0 once -> F(1,0) = 1.
        assert!((confusions[0].prob(LabelId(0), LabelId(0)) - 1.0).abs() < 1e-9);
        assert!((confusions[0].prob(LabelId(1), LabelId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batch_em_beats_majority_voting_on_spammy_synthetic_data() {
        let synth = SyntheticConfig::paper_default(41).generate();
        let answers = synth.dataset.answers();
        let truth = synth.dataset.ground_truth();
        let mv = truth.precision(&crate::majority::majority_vote(answers));
        let em = truth.precision(&aggregate(answers).instantiate());
        assert!(
            em >= mv - 0.02,
            "EM precision {em:.3} should not be materially below majority voting {mv:.3}"
        );
        assert!(em > 0.6, "EM precision unexpectedly low: {em:.3}");
    }

    #[test]
    fn em_iteration_count_is_reported_and_bounded() {
        let (answers, _) = toy();
        let config = EmConfig { max_iterations: 5, ..EmConfig::paper_default() };
        let p = BatchEm::new(config).conclude(&answers, &ExpertValidation::empty(10), None);
        assert!(p.em_iterations() >= 1 && p.em_iterations() <= 5);
    }

    #[test]
    fn aggregator_name() {
        assert_eq!(BatchEm::default().name(), "batch-em");
        assert_eq!(BatchEm::default().init(), InitStrategy::MajorityVote);
    }
}
