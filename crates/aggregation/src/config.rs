//! Shared configuration of the EM-based aggregators.

use serde::{Deserialize, Serialize};

/// Hyper-parameters of the EM estimators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmConfig {
    /// Laplace smoothing added to confusion-matrix counts before row
    /// normalization. Prevents zero probabilities from permanently locking a
    /// worker out of a label (the paper is silent on smoothing; 0.01 keeps the
    /// estimates close to the raw frequencies).
    pub smoothing_alpha: f64,
    /// Upper bound on E/M iterations per `conclude` call.
    pub max_iterations: usize,
    /// Convergence threshold on the largest absolute change of any assignment
    /// probability between consecutive iterations.
    pub tolerance: f64,
}

impl EmConfig {
    /// Configuration used throughout the experiments.
    pub fn paper_default() -> Self {
        Self {
            smoothing_alpha: 0.01,
            max_iterations: 100,
            tolerance: 1e-4,
        }
    }
}

impl Default for EmConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_default() {
        assert_eq!(EmConfig::default(), EmConfig::paper_default());
        let c = EmConfig::default();
        assert!(c.smoothing_alpha > 0.0);
        assert!(c.max_iterations >= 10);
        assert!(c.tolerance > 0.0 && c.tolerance < 1e-2);
    }
}
