//! Reusable scratch buffers for the EM estimators (paper §5.4, "view
//! maintenance").
//!
//! The guidance hot path runs `O(candidates × labels)` warm-started
//! aggregations per validation step. Before this workspace existed every one
//! of those runs allocated a fresh assignment matrix per E-step, a fresh
//! count matrix and confusion matrix per worker per M-step, and a log-score
//! vector per object per iteration — and recomputed `ln()` for every
//! `(object, label, vote)` triple. An [`EmWorkspace`] owns all of those
//! buffers once and is reused across EM iterations *and* across hypothesis
//! evaluations (via a thread-local pool, see [`with_workspace`]), so the
//! steady-state EM iteration performs **zero heap allocations** and reads
//! logarithms from tables that are refreshed once per M-step instead of once
//! per use.

use crowdval_model::{AnswerSet, ConfusionMatrix, ObjectId, ProbabilisticAnswerSet, WorkerId};
use crowdval_numerics::Matrix;
use std::cell::RefCell;

use crowdval_model::AssignmentMatrix;

/// Smallest probability used inside logarithms; avoids `-inf` when a smoothed
/// confusion entry is still extremely small.
pub(crate) const LOG_FLOOR: f64 = 1e-12;

/// Scratch state threaded through `expectation_step` / `maximization_step` /
/// `run_em_from_confusions` so repeated EM runs (the hypothesis fan-out in
/// particular) never allocate inside the iteration loop.
///
/// All buffers are sized on first use and resized only when the answer-set
/// shape changes ([`EmWorkspace::ensure_shape`]).
#[derive(Debug)]
pub struct EmWorkspace {
    pub(crate) num_objects: usize,
    pub(crate) num_workers: usize,
    pub(crate) num_labels: usize,
    /// Current assignment matrix (row-stochastic once an E-step has run).
    pub(crate) assignment: Matrix,
    /// Target of the next E-step; swapped with `assignment` each iteration.
    pub(crate) next_assignment: Matrix,
    /// The assignment one iteration further back (`x_{k−1}`), kept by the
    /// delta path's Aitken-accelerated polish to estimate the EM contraction
    /// ratio from three successive iterates.
    pub(crate) prev_assignment: Matrix,
    /// Working confusion matrices, one per worker.
    pub(crate) confusions: Vec<ConfusionMatrix>,
    /// Working label priors.
    pub(crate) priors: Vec<f64>,
    /// Cached `ln(max(F_w(l, a), LOG_FLOOR))`, flattened as
    /// `[w · m² + l · m + a]`; refreshed once per M-step per dirty worker.
    pub(crate) log_confusions: Vec<f64>,
    /// Cached `ln(max(p(l), LOG_FLOOR))`.
    pub(crate) log_priors: Vec<f64>,
    /// `labels × labels` count scratch for the M-step (reused per worker).
    pub(crate) counts: Matrix,
    /// Per-label log-score scratch for one object's E-step.
    pub(crate) log_scores: Vec<f64>,
    /// Per-label scratch holding an object's previous row while the delta
    /// path recomputes it (to measure the change and patch `col_sums`).
    pub(crate) row_scratch: Vec<f64>,
    /// Column sums of `assignment`, maintained incrementally by the delta
    /// path so priors never require a full-matrix pass.
    pub(crate) col_sums: Vec<f64>,
    /// Delta-path frontier bookkeeping (flag vectors + queues).
    pub(crate) object_dirty: Vec<bool>,
    pub(crate) worker_dirty: Vec<bool>,
    pub(crate) changed_objects: Vec<ObjectId>,
    pub(crate) next_changed: Vec<ObjectId>,
    pub(crate) dirty_workers: Vec<WorkerId>,
    /// Scratch for the delta path's blocked-parallel row recomputation: the
    /// object list of the current scoped sweep and the freshly computed rows
    /// (`scope_objects.len() × labels`), applied serially afterwards. Sized
    /// on demand — they only grow above the parallel gate, so the small-corpus
    /// zero-allocation property is untouched.
    pub(crate) scope_objects: Vec<ObjectId>,
    pub(crate) scope_rows: Vec<f64>,
    /// Allocation-free statistics: EM iterations run and assignment rows
    /// recomputed since the last [`EmWorkspace::reset_stats`] (the bench
    /// reports these as the work the delta path avoided).
    pub(crate) stat_iterations: usize,
    pub(crate) stat_rows_recomputed: usize,
}

impl Default for EmWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl EmWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self {
            num_objects: 0,
            num_workers: 0,
            num_labels: 0,
            assignment: Matrix::zeros(0, 0),
            next_assignment: Matrix::zeros(0, 0),
            prev_assignment: Matrix::zeros(0, 0),
            confusions: Vec::new(),
            priors: Vec::new(),
            log_confusions: Vec::new(),
            log_priors: Vec::new(),
            counts: Matrix::zeros(0, 0),
            log_scores: Vec::new(),
            row_scratch: Vec::new(),
            col_sums: Vec::new(),
            object_dirty: Vec::new(),
            worker_dirty: Vec::new(),
            changed_objects: Vec::new(),
            next_changed: Vec::new(),
            dirty_workers: Vec::new(),
            scope_objects: Vec::new(),
            scope_rows: Vec::new(),
            stat_iterations: 0,
            stat_rows_recomputed: 0,
        }
    }

    /// (Re)allocates every buffer for an `objects × workers × labels` answer
    /// set. A no-op when the shape already matches — the property that makes
    /// warm reuse allocation-free.
    pub fn ensure_shape(&mut self, num_objects: usize, num_workers: usize, num_labels: usize) {
        if self.num_objects == num_objects
            && self.num_workers == num_workers
            && self.num_labels == num_labels
        {
            return;
        }
        self.num_objects = num_objects;
        self.num_workers = num_workers;
        self.num_labels = num_labels;
        self.assignment = Matrix::zeros(num_objects, num_labels);
        self.next_assignment = Matrix::zeros(num_objects, num_labels);
        self.prev_assignment = Matrix::zeros(num_objects, num_labels);
        self.confusions = vec![ConfusionMatrix::uniform(num_labels.max(1)); num_workers];
        self.priors = vec![0.0; num_labels];
        self.log_confusions = vec![0.0; num_workers * num_labels * num_labels];
        self.log_priors = vec![0.0; num_labels];
        self.counts = Matrix::zeros(num_labels, num_labels);
        self.log_scores = vec![0.0; num_labels];
        self.row_scratch = vec![0.0; num_labels];
        self.col_sums = vec![0.0; num_labels];
        self.object_dirty = vec![false; num_objects];
        self.worker_dirty = vec![false; num_workers];
        self.changed_objects = Vec::with_capacity(num_objects);
        self.next_changed = Vec::with_capacity(num_objects);
        self.dirty_workers = Vec::with_capacity(num_workers);
    }

    /// Loads confusion matrices and priors into the workspace (the i-EM warm
    /// start `C⁰_s = C^q_{s−1}`) and refreshes the log tables.
    pub fn seed(&mut self, answers: &AnswerSet, confusions: &[ConfusionMatrix], priors: &[f64]) {
        self.ensure_shape(
            answers.num_objects(),
            answers.num_workers(),
            answers.num_labels(),
        );
        debug_assert_eq!(confusions.len(), self.num_workers);
        debug_assert_eq!(priors.len(), self.num_labels);
        for (dst, src) in self.confusions.iter_mut().zip(confusions) {
            dst.matrix_mut().copy_from(src.matrix());
        }
        self.priors.copy_from_slice(priors);
        self.refresh_log_tables();
    }

    /// Loads a full previous probabilistic answer set — confusions, priors
    /// *and* assignment (with its column sums) — as the starting point of a
    /// delta-scoped re-estimation.
    pub fn seed_from(&mut self, answers: &AnswerSet, previous: &ProbabilisticAnswerSet) {
        self.seed(answers, previous.confusions(), previous.priors());
        self.assignment.copy_from(previous.assignment().matrix());
        self.recompute_col_sums();
    }

    /// [`EmWorkspace::seed_from`] for a *grown* answer set: the previous
    /// probabilistic answer set may cover fewer objects and/or workers than
    /// `answers` (streaming arrival of new objects or workers mid-session).
    /// Known workers keep their confusion matrices, new workers start
    /// uniform; known objects keep their assignment rows, new objects start
    /// at the previous label priors (the best prior-only estimate — their
    /// actual posterior is recomputed by the dirty-seeded delta pass).
    ///
    /// # Panics
    /// Panics if `previous` covers *more* objects/workers than `answers` or
    /// disagrees on the label count — id spaces only grow.
    pub fn seed_from_grown(&mut self, answers: &AnswerSet, previous: &ProbabilisticAnswerSet) {
        let (n, k, m) = (
            answers.num_objects(),
            answers.num_workers(),
            answers.num_labels(),
        );
        assert!(
            previous.num_objects() <= n && previous.num_workers() <= k,
            "previous state covers more objects/workers than the grown answer set"
        );
        assert_eq!(previous.num_labels(), m, "label spaces cannot grow");
        if previous.num_objects() == n && previous.num_workers() == k {
            self.seed_from(answers, previous);
            return;
        }
        self.ensure_shape(n, k, m);
        for (w, confusion) in previous.confusions().iter().enumerate() {
            self.confusions[w]
                .matrix_mut()
                .copy_from(confusion.matrix());
        }
        for confusion in self.confusions.iter_mut().skip(previous.num_workers()) {
            confusion
                .matrix_mut()
                .copy_from(ConfusionMatrix::uniform(m.max(1)).matrix());
        }
        self.priors.copy_from_slice(previous.priors());
        let prev_rows = previous.num_objects();
        let prev = previous.assignment().matrix().as_slice();
        for o in 0..prev_rows {
            self.assignment
                .row_mut(o)
                .copy_from_slice(&prev[o * m..(o + 1) * m]);
        }
        for o in prev_rows..n {
            let EmWorkspace {
                assignment, priors, ..
            } = self;
            assignment.row_mut(o).copy_from_slice(priors);
        }
        self.refresh_log_tables();
        self.recompute_col_sums();
    }

    /// Recomputes the cached log-confusion tables and log-priors for every
    /// worker (once per seed / per full M-step, *not* per vote).
    pub(crate) fn refresh_log_tables(&mut self) {
        for w in 0..self.num_workers {
            refresh_worker_logs(
                &mut self.log_confusions,
                &self.confusions[w],
                w,
                self.num_labels,
            );
        }
        self.refresh_log_priors();
    }

    pub(crate) fn refresh_log_priors(&mut self) {
        for (lp, &p) in self.log_priors.iter_mut().zip(&self.priors) {
            *lp = p.max(LOG_FLOOR).ln();
        }
    }

    /// Recomputes `col_sums` from the current assignment matrix.
    pub(crate) fn recompute_col_sums(&mut self) {
        for l in 0..self.num_labels {
            self.col_sums[l] = self.assignment.col_sum(l);
        }
    }

    /// The current working assignment matrix.
    pub fn assignment(&self) -> &Matrix {
        &self.assignment
    }

    /// The current working confusion matrices.
    pub fn confusions(&self) -> &[ConfusionMatrix] {
        &self.confusions
    }

    /// The current working priors.
    pub fn priors(&self) -> &[f64] {
        &self.priors
    }

    /// Clears the iteration/row counters reported by [`EmWorkspace::stats`].
    pub fn reset_stats(&mut self) {
        self.stat_iterations = 0;
        self.stat_rows_recomputed = 0;
    }

    /// `(em_iterations, assignment_rows_recomputed)` since the last
    /// [`EmWorkspace::reset_stats`].
    pub fn stats(&self) -> (usize, usize) {
        (self.stat_iterations, self.stat_rows_recomputed)
    }

    /// Assembles the workspace state into an owned probabilistic answer set.
    /// This is the *only* point of the workspace pipeline that allocates —
    /// once per aggregation run, never per iteration.
    pub fn export(&self, em_iterations: usize) -> ProbabilisticAnswerSet {
        ProbabilisticAnswerSet::new(
            AssignmentMatrix::from_normalized(self.assignment.clone()),
            self.confusions.clone(),
            self.priors.clone(),
            em_iterations,
        )
    }
}

/// Refreshes the cached log-confusion rows of one worker after its M-step.
pub(crate) fn refresh_worker_logs(
    log_confusions: &mut [f64],
    confusion: &ConfusionMatrix,
    worker: usize,
    num_labels: usize,
) {
    let base = worker * num_labels * num_labels;
    let table = &mut log_confusions[base..base + num_labels * num_labels];
    for (i, lc) in table.iter_mut().enumerate() {
        let p = confusion.matrix().as_slice()[i];
        *lc = p.max(LOG_FLOOR).ln();
    }
}

thread_local! {
    static POOL: RefCell<EmWorkspace> = RefCell::new(EmWorkspace::new());
}

/// Runs `f` with this thread's pooled [`EmWorkspace`]. The pool is what turns
/// the per-hypothesis aggregation runs of a parallel fan-out into
/// allocation-free reuse: every rayon worker thread keeps one warm workspace.
///
/// Re-entrant calls (a public wrapper invoked from inside another workspace
/// scope) fall back to a fresh scratch workspace instead of panicking on the
/// `RefCell` borrow.
pub fn with_workspace<R>(f: impl FnOnce(&mut EmWorkspace) -> R) -> R {
    POOL.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut EmWorkspace::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_shape_is_idempotent_and_resizes() {
        let mut ws = EmWorkspace::new();
        ws.ensure_shape(4, 3, 2);
        assert_eq!(ws.assignment.rows(), 4);
        assert_eq!(ws.confusions.len(), 3);
        assert_eq!(ws.log_confusions.len(), 3 * 4);
        let before = ws.assignment.as_slice().as_ptr();
        ws.ensure_shape(4, 3, 2);
        assert_eq!(before, ws.assignment.as_slice().as_ptr(), "no realloc");
        ws.ensure_shape(5, 3, 2);
        assert_eq!(ws.assignment.rows(), 5);
    }

    #[test]
    fn seed_copies_state_and_builds_log_tables() {
        let answers = AnswerSet::new(2, 2, 2);
        let confusions = vec![ConfusionMatrix::diagonal(2, 0.9); 2];
        let priors = vec![0.25, 0.75];
        let mut ws = EmWorkspace::new();
        ws.seed(&answers, &confusions, &priors);
        assert_eq!(ws.priors(), &[0.25, 0.75]);
        assert!((ws.log_priors[1] - 0.75f64.ln()).abs() < 1e-12);
        // log table entry for worker 1, F(0, 0) = 0.9
        assert!((ws.log_confusions[4] - 0.9f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn with_workspace_is_reentrant() {
        let out = with_workspace(|outer| {
            outer.ensure_shape(2, 2, 2);
            with_workspace(|inner| {
                inner.ensure_shape(3, 1, 2);
                inner.num_objects
            })
        });
        assert_eq!(out, 3);
    }
}
