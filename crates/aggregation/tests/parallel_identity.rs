//! Serial vs blocked-parallel EM bit-identity (see `crate::parblock` for the
//! determinism contract this asserts).
//!
//! The corpus is sized just above both parallel gates (`PAR_MIN_OBJECTS` /
//! `PAR_MIN_WORKERS`), so the parallel arm genuinely runs the blocked
//! kernels. All assertions compare `f64::to_bits` — exact equality, not a
//! tolerance.
//!
//! Everything lives in one `#[test]` because [`set_em_threads`] is a global
//! knob: concurrent tests flipping it would race each other. Integration
//! tests get their own process, so other suites are unaffected.

use crowdval_aggregation::{
    run_delta_em_from_dirty, run_warm_em, set_em_threads, EmConfig, EmWorkspace,
};
use crowdval_model::{
    AnswerSet, ConfusionMatrix, ExpertValidation, LabelId, ObjectId, ProbabilisticAnswerSet,
    WorkerId,
};

/// Deterministic corpus above both parallel gates: `n` objects, `k` workers,
/// 3 votes per object, ~70 % agreement with a rotating ground truth.
fn build_corpus(n: usize, k: usize, m: usize) -> AnswerSet {
    let mut answers = AnswerSet::new(n, k, m);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for o in 0..n {
        let truth = o % m;
        for _ in 0..3 {
            let w = (next() as usize) % k;
            let label = if next() % 10 < 7 {
                truth
            } else {
                (next() as usize) % m
            };
            answers
                .record_answer(ObjectId(o), WorkerId(w), LabelId(label))
                .unwrap();
        }
    }
    answers.sync_compact_views();
    answers
}

fn assert_bits_identical(a: &ProbabilisticAnswerSet, b: &ProbabilisticAnswerSet, what: &str) {
    let bits = |m: &[f64]| m.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(a.assignment().matrix().as_slice()),
        bits(b.assignment().matrix().as_slice()),
        "{what}: assignment diverged"
    );
    assert_eq!(
        bits(a.priors()),
        bits(b.priors()),
        "{what}: priors diverged"
    );
    for (w, (ca, cb)) in a.confusions().iter().zip(b.confusions()).enumerate() {
        assert_eq!(
            bits(ca.matrix().as_slice()),
            bits(cb.matrix().as_slice()),
            "{what}: confusion of worker {w} diverged"
        );
    }
}

#[test]
fn parallel_em_is_bit_identical_to_serial() {
    let (n, k, m) = (9216, 2304, 3);
    let answers = build_corpus(n, k, m);
    let mut expert = ExpertValidation::empty(n);
    for o in 0..8 {
        expert.set(ObjectId(o), LabelId(o % m));
    }
    let config = EmConfig::paper_default();
    let confusions = vec![ConfusionMatrix::diagonal(m, 0.7); k];
    let priors = vec![1.0 / m as f64; m];

    // Full warm EM: E- and M-steps both clear their gates.
    set_em_threads(1);
    let serial = run_warm_em(&answers, &expert, &confusions, &priors, &config);
    set_em_threads(4);
    let parallel = run_warm_em(&answers, &expert, &confusions, &priors, &config);
    assert_bits_identical(&serial, &parallel, "warm EM");

    // Delta path seeded with a corpus-wide dirty frontier, so the blocked
    // row kernel engages in the scoped sweeps too.
    let seeds: Vec<ObjectId> = (0..n).map(ObjectId).collect();
    let run_delta = |threads: usize| {
        set_em_threads(threads);
        let mut ws = EmWorkspace::new();
        ws.seed_from(&answers, &serial);
        let it = run_delta_em_from_dirty(&answers, &expert, &mut ws, &config, &seeds);
        ws.export(it)
    };
    let delta_serial = run_delta(1);
    let delta_parallel = run_delta(4);
    set_em_threads(0);
    assert_bits_identical(&delta_serial, &delta_parallel, "delta EM");
}
