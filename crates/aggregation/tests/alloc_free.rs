//! Counting-allocator proof of the workspace contract: once the
//! [`EmWorkspace`] buffers are warm, a full EM run — and a delta-scoped
//! hypothesis run — performs **zero heap allocations**. This is the
//! ISSUE-2 acceptance criterion for the per-iteration allocation behaviour
//! of the hypothesis fan-out, asserted rather than claimed.

use crowdval_aggregation::{
    run_delta_em_in_workspace, run_em_in_workspace, Aggregator, EmConfig, EmWorkspace,
    IncrementalEm,
};
use crowdval_model::{ExpertValidation, HypothesisOverlay, LabelId, ObjectId};
use crowdval_sim::SyntheticConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapper that counts every allocation and reallocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// One combined test (the counter is process-global, so the two phases must
/// not run concurrently as separate `#[test]`s).
#[test]
fn warm_workspace_em_runs_are_allocation_free() {
    let synth = SyntheticConfig {
        num_objects: 30,
        ..SyntheticConfig::paper_default(17)
    }
    .generate();
    let answers = synth.dataset.answers().clone();
    let truth = synth.dataset.ground_truth().clone();
    let mut expert = ExpertValidation::empty(answers.num_objects());
    for o in 0..5 {
        expert.set(ObjectId(o), truth.label(ObjectId(o)));
    }
    let iem = IncrementalEm::default();
    let current = iem.conclude(&answers, &expert, None);
    let config = EmConfig::paper_default();

    // ---- exact path -------------------------------------------------------
    let mut ws = EmWorkspace::new();
    // Warm-up run sizes every buffer (this run may allocate).
    ws.seed(&answers, current.confusions(), current.priors());
    run_em_in_workspace(&answers, &expert, &mut ws, &config);

    // Measured run: seeding copies in place and the whole E/M loop reuses
    // the warm buffers — zero allocations.
    let before = allocations();
    ws.seed(&answers, current.confusions(), current.priors());
    let iterations = run_em_in_workspace(&answers, &expert, &mut ws, &config);
    let exact_allocs = allocations() - before;
    assert!(iterations >= 1);
    assert_eq!(
        exact_allocs, 0,
        "warm exact EM run allocated {exact_allocs} times"
    );

    // ---- delta path -------------------------------------------------------
    let object = ObjectId(10);
    let hypothesis = HypothesisOverlay::new(&expert, object, LabelId(1));
    // Warm-up (frontier queues size themselves here).
    ws.seed_from(&answers, &current);
    run_delta_em_in_workspace(&answers, &hypothesis, &mut ws, &config, object);

    let before = allocations();
    ws.seed_from(&answers, &current);
    let iterations = run_delta_em_in_workspace(&answers, &hypothesis, &mut ws, &config, object);
    let delta_allocs = allocations() - before;
    assert!(iterations >= 1);
    assert_eq!(
        delta_allocs, 0,
        "warm delta EM run allocated {delta_allocs} times"
    );

    // Exporting the result is the one place that allocates — by design,
    // once per aggregation run rather than per iteration.
    let before = allocations();
    let p = ws.export(iterations);
    assert!(allocations() > before, "export clones out of the workspace");
    assert_eq!(p.assignment().prob(object, LabelId(1)), 1.0);
}
