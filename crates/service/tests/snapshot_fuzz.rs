//! Property tests for the *byte-level* snapshot surfaces: truncated,
//! bit-flipped and version-skewed snapshot/delta/anchor bytes must come
//! back as **typed errors** — a parse failure at the JSON boundary or a
//! `ServiceError` from the service — never a panic, never a silent
//! half-restore.
//!
//! This is the crash-recovery trust boundary: checkpoint anchors are read
//! back after a worker died mid-write, and `Restore`/`RestoreDelta` lines
//! arrive from operators' disks. Both must treat the bytes as hostile.

use crowdval_service::supervisor::{decode_anchor, encode_anchor};
use crowdval_service::{
    ClientVote, Reply, Request, RequestEnvelope, ServiceError, TaskConfig, TaskDelta, TaskSnapshot,
    ValidationService,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A service with one WAL-enabled task carrying real votes, plus its
/// genuine snapshot and delta — the honest bytes each corruption starts
/// from.
fn seeded_task() -> (ValidationService, TaskSnapshot, TaskDelta) {
    let mut service = ValidationService::new();
    let reply = |service: &mut ValidationService, request: Request| -> Reply {
        service.reply(&RequestEnvelope::latest(request))
    };
    assert!(reply(
        &mut service,
        Request::CreateTask {
            task: "fuzz".into(),
            labels: vec!["yes".into(), "no".into()],
            config: TaskConfig {
                wal: true,
                triage: true,
                ..TaskConfig::default()
            },
        },
    )
    .result()
    .is_ok());
    let votes = (0..12)
        .map(|i| ClientVote {
            worker: format!("w{}", i % 4),
            object: format!("o{}", i % 6),
            label: if i % 3 == 0 { "yes" } else { "no" }.to_string(),
        })
        .collect();
    assert!(reply(
        &mut service,
        Request::SubmitVotes {
            task: "fuzz".into(),
            votes,
        },
    )
    .result()
    .is_ok());
    let snapshot = match reply(
        &mut service,
        Request::Snapshot {
            task: "fuzz".into(),
        },
    )
    .outcome
    {
        crowdval_service::ReplyOutcome::Ok(crowdval_service::Response::Snapshot {
            snapshot,
            ..
        }) => *snapshot,
        other => panic!("snapshot failed: {other:?}"),
    };
    // More votes after the anchor, so the delta is non-empty.
    assert!(reply(
        &mut service,
        Request::SubmitVotes {
            task: "fuzz".into(),
            votes: vec![ClientVote {
                worker: "w9".into(),
                object: "o1".into(),
                label: "yes".into(),
            }],
        },
    )
    .result()
    .is_ok());
    let delta = match reply(
        &mut service,
        Request::SnapshotDelta {
            task: "fuzz".into(),
        },
    )
    .outcome
    {
        crowdval_service::ReplyOutcome::Ok(crowdval_service::Response::SnapshotDelta {
            delta,
            ..
        }) => *delta,
        other => panic!("delta snapshot failed: {other:?}"),
    };
    (service, snapshot, delta)
}

/// Byte-level corruption: truncation, bit flips, byte swaps, and digit
/// splices (the cheapest way to skew embedded version numbers).
fn corrupt_bytes(rng: &mut StdRng, bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        return;
    }
    for _ in 0..rng.random_range(1..4usize) {
        match rng.random_range(0..4u32) {
            0 => {
                let at = rng.random_range(0..bytes.len());
                bytes.truncate(at);
                if bytes.is_empty() {
                    return;
                }
            }
            1 => {
                let at = rng.random_range(0..bytes.len());
                bytes[at] ^= 1 << rng.random_range(0..8u32);
            }
            2 => {
                let at = rng.random_range(0..bytes.len());
                bytes[at] = rng.random_range(0..256u32) as u8;
            }
            _ => {
                // Version skew: rewrite a digit somewhere (hits
                // `"protocol_version":5`, `"format_version":…`, counts).
                if let Some(at) = bytes.iter().position(|b| b.is_ascii_digit()) {
                    bytes[at] = b'0' + rng.random_range(0..10u32) as u8;
                }
            }
        }
    }
}

/// Feeding one corrupted JSON line through the full serve-side path:
/// parse, then reply. Returns true if anything panicked (it must not).
fn line_is_typed(service: &mut ValidationService, line: &[u8]) -> bool {
    let Ok(text) = std::str::from_utf8(line) else {
        return true; // not UTF-8: the reader layer rejects it before serde
    };
    match serde_json::from_str::<RequestEnvelope>(text) {
        Ok(envelope) => {
            // Parsed despite the corruption: the service must answer with
            // a typed outcome, and that outcome must serialize.
            let reply = service.reply(&envelope);
            if let Err(error) = reply.result() {
                let _ = error.to_string();
            }
            serde_json::to_string(&reply).is_ok()
        }
        Err(parse_error) => {
            // The boundary rejected it — exactly the typed `Malformed`
            // path the serve loop takes.
            let _ = parse_error.to_string();
            true
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Corrupted `Restore` lines — truncated, bit-flipped, version-skewed —
    /// always come back typed: a parse error or a `ServiceError`, never a
    /// panic, and an untouched sibling task stays fully usable afterwards.
    #[test]
    fn corrupted_restore_bytes_are_typed_errors(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut service, snapshot, _) = seeded_task();
        let line = serde_json::to_string(&RequestEnvelope::latest(Request::Restore {
            task: "restored".into(),
            snapshot: Box::new(snapshot),
        }))
        .unwrap();
        for _ in 0..8 {
            let mut bytes = line.clone().into_bytes();
            corrupt_bytes(&mut rng, &mut bytes);
            prop_assert!(line_is_typed(&mut service, &bytes));
        }
        // The service survived every corrupted restore attempt intact.
        let probe = service.reply(&RequestEnvelope::latest(Request::QueryPosterior {
            task: "fuzz".into(),
            object: "o0".into(),
        }));
        prop_assert!(probe.result().is_ok(), "{:?}", probe.result());
    }

    /// Same property for `RestoreDelta` lines: the delta log is replayed
    /// on top of an anchoring snapshot, and corrupt event bytes must fail
    /// closed.
    #[test]
    fn corrupted_delta_bytes_are_typed_errors(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut service, snapshot, delta) = seeded_task();
        let line = serde_json::to_string(&RequestEnvelope::latest(Request::RestoreDelta {
            task: "fuzz".into(),
            snapshot: Box::new(snapshot),
            delta: Box::new(delta),
        }))
        .unwrap();
        for _ in 0..8 {
            let mut bytes = line.clone().into_bytes();
            corrupt_bytes(&mut rng, &mut bytes);
            prop_assert!(line_is_typed(&mut service, &bytes));
        }
    }

    /// Crash-recovery anchors read back from the checkpoint store after a
    /// torn write: `decode_anchor` on corrupted bytes is a typed
    /// `ServiceError`, and version-skewed anchors are refused by
    /// `install_recovered` rather than resurrected.
    #[test]
    fn corrupted_anchor_bytes_are_typed_errors(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (service, _, _) = seeded_task();
        let anchor = service.checkpoint_task("fuzz").expect("checkpointable task");
        let honest = encode_anchor(&anchor);
        // Honest bytes round-trip.
        prop_assert!(decode_anchor(&honest).is_ok());
        for _ in 0..8 {
            let mut bytes = honest.clone();
            corrupt_bytes(&mut rng, &mut bytes);
            match decode_anchor(&bytes) {
                Ok(decoded) => {
                    // Still parseable JSON (e.g. a digit splice): installing
                    // it must be typed too — accepted or refused, no panic.
                    let mut target = ValidationService::new();
                    match target.install_recovered("fuzz", decoded) {
                        Ok(_) => {}
                        Err(error) => {
                            let _ = error.to_string();
                        }
                    }
                }
                Err(error @ ServiceError::InvalidSnapshot { .. }) => {
                    let _ = error.to_string();
                }
                Err(other) => {
                    prop_assert!(false, "unexpected error kind: {other:?}");
                }
            }
        }
    }
}
