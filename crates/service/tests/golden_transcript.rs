//! Replays the committed smoke conversation (`tests/data/conversation.jsonl`)
//! through an in-process [`ValidationService`] and diffs every reply against
//! the committed golden transcript — the same check the CI `service-smoke`
//! job performs through the `crowdval-serve` binary, minus the process
//! boundary. Keeping it in `cargo test` means a protocol or engine change
//! that shifts the wire output fails locally, not just in CI.

use crowdval_service::{Reply, RequestEnvelope, ServiceError, ValidationService};

const CONVERSATION: &str = include_str!("data/conversation.jsonl");
const GOLDEN: &str = include_str!("data/conversation.golden.jsonl");

#[test]
fn committed_conversation_matches_golden_transcript() {
    let mut service = ValidationService::new();
    let mut replies: Vec<String> = Vec::new();
    for line in CONVERSATION.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let reply = match serde_json::from_str::<RequestEnvelope>(trimmed) {
            Ok(envelope) => service.reply(&envelope),
            Err(e) => Reply::err(
                0,
                ServiceError::MalformedRequest {
                    message: e.to_string(),
                },
            ),
        };
        replies.push(serde_json::to_string(&reply).unwrap());
    }
    let golden: Vec<&str> = GOLDEN.lines().collect();
    assert_eq!(
        replies.len(),
        golden.len(),
        "reply count diverged from the golden transcript"
    );
    for (i, (actual, expected)) in replies.iter().zip(&golden).enumerate() {
        assert_eq!(
            actual, expected,
            "reply {i} diverged from the golden transcript"
        );
    }
}
