//! Acceptance test of the service redesign: a scripted multi-tenant
//! conversation — two concurrent tasks, interleaved vote submissions,
//! guidance requests and validations, one snapshot+close+restore cycle —
//! must reproduce the **exact** selection order and final posterior of
//! equivalent, directly driven [`ValidationSession`]s.
//!
//! The direct reference mirrors the service's boundary behaviour with the
//! same [`IdInterner`]s (external ids are interned in first-seen order on
//! both paths), so the comparison is bit-level: the final
//! [`SessionSnapshot`]s of the two paths are compared with `==`, covering
//! the posterior floats, confusion matrices, traces, RNG streams and
//! counters all at once.

use crowdval_core::{HybridStrategy, ProcessConfig, ValidationSession, ValidationSessionBuilder};
use crowdval_model::{GroundTruth, IdInterner, LabelId, ObjectId, Vote, WorkerId};
use crowdval_service::{
    ClientVote, Request, RequestEnvelope, Response, ServiceError, StrategyChoice, TaskConfig,
    TaskSnapshot, ValidationService,
};
use crowdval_sim::{PopulationMix, StreamingConfig, SyntheticConfig};

const LABEL_NAMES: [&str; 2] = ["neg", "pos"];

/// One tenant's scripted workload: external-id vote batches plus the truth
/// to validate against.
struct Workload {
    batches: Vec<Vec<ClientVote>>,
    truth: GroundTruth,
}

impl Workload {
    /// Lays a small synthetic crowd out on a PR-3 arrival schedule and
    /// renames everything into task-scoped external ids.
    fn generate(tag: &str, seed: u64) -> Self {
        let scenario = StreamingConfig {
            base: SyntheticConfig {
                num_objects: 16,
                num_workers: 10,
                reliability: 0.85,
                mix: PopulationMix::all_reliable(),
                ..SyntheticConfig::paper_default(seed)
            },
            initial_fraction: 0.4,
            batch_size: 40,
            late_object_fraction: 0.3,
            late_worker_fraction: 0.25,
        }
        .generate();
        let rename = |votes: &[Vote]| -> Vec<ClientVote> {
            votes
                .iter()
                .map(|v| ClientVote {
                    worker: format!("{tag}-w{}", v.worker.index()),
                    object: format!("{tag}-obj{}", v.object.index()),
                    label: LABEL_NAMES[v.label.index()].to_string(),
                })
                .collect()
        };
        let mut batches = vec![rename(&scenario.initial)];
        batches.extend(scenario.batches.iter().map(|b| rename(b)));
        Workload {
            batches,
            truth: scenario.truth.clone(),
        }
    }

    /// The expert's label for an external object id (oracle).
    fn truth_label(&self, object_name: &str) -> String {
        let idx: usize = object_name
            .rsplit("obj")
            .next()
            .and_then(|s| s.parse().ok())
            .expect("task-scoped object names end in the original index");
        LABEL_NAMES[self.truth.label(ObjectId(idx)).index()].to_string()
    }
}

/// The reference path: a directly driven session behind the same interners
/// the service maintains per task.
struct DirectRun {
    objects: IdInterner,
    workers: IdInterner,
    labels: IdInterner,
    session: ValidationSession,
}

impl DirectRun {
    fn new(seed: u64) -> Self {
        Self {
            objects: IdInterner::new(),
            workers: IdInterner::new(),
            labels: IdInterner::from_names(LABEL_NAMES.to_vec()).unwrap(),
            session: ValidationSessionBuilder::empty(LABEL_NAMES.len())
                .strategy(Box::new(HybridStrategy::new(seed)))
                .config(ProcessConfig::default())
                .try_build()
                .unwrap(),
        }
    }

    fn submit(&mut self, votes: &[ClientVote]) {
        let dense: Vec<Vote> = votes
            .iter()
            .map(|v| {
                Vote::new(
                    ObjectId(self.objects.intern(&v.object)),
                    WorkerId(self.workers.intern(&v.worker)),
                    LabelId(self.labels.get(&v.label).unwrap()),
                )
            })
            .collect();
        self.session.ingest(&dense).unwrap();
    }

    fn guide_and_validate(&mut self, workload: &Workload) -> Option<String> {
        let picked = self.session.select_next()?;
        let name = self.objects.name(picked.index()).unwrap().to_string();
        let label = workload.truth_label(&name);
        self.session
            .integrate(picked, LabelId(self.labels.get(&label).unwrap()))
            .unwrap();
        Some(name)
    }
}

fn send(service: &mut ValidationService, request: Request) -> Response {
    service
        .handle(&RequestEnvelope::latest(request))
        .expect("scripted request must succeed")
}

fn service_guide_and_validate(
    service: &mut ValidationService,
    task: &str,
    workload: &Workload,
) -> Option<String> {
    let object = match send(service, Request::RequestGuidance { task: task.into() }) {
        Response::Guidance { object, .. } => object?,
        other => panic!("unexpected reply {other:?}"),
    };
    let label = workload.truth_label(&object);
    send(
        service,
        Request::SubmitValidation {
            task: task.into(),
            object: object.clone(),
            label,
        },
    );
    Some(object)
}

fn take_snapshot(service: &mut ValidationService, task: &str) -> Box<TaskSnapshot> {
    match send(service, Request::Snapshot { task: task.into() }) {
        Response::Snapshot { snapshot, .. } => snapshot,
        other => panic!("unexpected reply {other:?}"),
    }
}

#[test]
fn multi_tenant_conversation_matches_direct_sessions() {
    let alpha = Workload::generate("a", 9001);
    let beta = Workload::generate("b", 9002);
    let (alpha_seed, beta_seed) = (11, 22);

    let mut service = ValidationService::new();
    for (task, seed) in [("alpha", alpha_seed), ("beta", beta_seed)] {
        send(
            &mut service,
            Request::CreateTask {
                task: task.into(),
                labels: LABEL_NAMES.iter().map(|&l| l.to_string()).collect(),
                config: TaskConfig {
                    strategy: StrategyChoice::Hybrid,
                    seed,
                    ..TaskConfig::default()
                },
            },
        );
    }
    let mut direct_alpha = DirectRun::new(alpha_seed);
    let mut direct_beta = DirectRun::new(beta_seed);

    let mut service_picks: Vec<String> = Vec::new();
    let mut direct_picks: Vec<String> = Vec::new();

    // Interleave the two tenants batch by batch; two validations per task
    // between arrivals. The direct mirrors perform the identical engine
    // call sequence per task — the *interleaving* across tasks exists only
    // in the service, so isolation failures (shared state, cross-tenant
    // index bleed) would surface as divergence.
    let rounds = alpha.batches.len().max(beta.batches.len());
    for round in 0..rounds {
        if let Some(batch) = alpha.batches.get(round) {
            send(
                &mut service,
                Request::SubmitVotes {
                    task: "alpha".into(),
                    votes: batch.clone(),
                },
            );
            direct_alpha.submit(batch);
        }
        if let Some(batch) = beta.batches.get(round) {
            send(
                &mut service,
                Request::SubmitVotes {
                    task: "beta".into(),
                    votes: batch.clone(),
                },
            );
            direct_beta.submit(batch);
        }
        for _ in 0..2 {
            if let Some(pick) = service_guide_and_validate(&mut service, "alpha", &alpha) {
                service_picks.push(format!("alpha:{pick}"));
            }
            if let Some(pick) = direct_alpha.guide_and_validate(&alpha) {
                direct_picks.push(format!("alpha:{pick}"));
            }
            if let Some(pick) = service_guide_and_validate(&mut service, "beta", &beta) {
                service_picks.push(format!("beta:{pick}"));
            }
            if let Some(pick) = direct_beta.guide_and_validate(&beta) {
                direct_picks.push(format!("beta:{pick}"));
            }
        }

        // Mid-conversation crash drill for the alpha tenant: checkpoint,
        // tear down, restore under the same name, keep going. The direct
        // mirror does nothing here — a restore that is anything but
        // bit-identical diverges for the rest of the conversation.
        if round == 1 {
            let snapshot = take_snapshot(&mut service, "alpha");
            // The snapshot survives a JSON round trip (the crash-recovery
            // path writes it to disk).
            let json = serde_json::to_string(&snapshot).unwrap();
            let snapshot: Box<TaskSnapshot> = serde_json::from_str(&json).unwrap();
            send(
                &mut service,
                Request::CloseTask {
                    task: "alpha".into(),
                },
            );
            assert!(matches!(
                service.handle_request(&Request::RequestGuidance {
                    task: "alpha".into()
                }),
                Err(ServiceError::TaskNotFound { .. })
            ));
            send(
                &mut service,
                Request::Restore {
                    task: "alpha".into(),
                    snapshot,
                },
            );
        }
    }

    assert_eq!(
        service_picks, direct_picks,
        "selection order diverged between the service and the direct sessions"
    );

    // Bit-level final-state comparison, per tenant: posterior, confusion
    // matrices, priors, trace, counters, strategy RNG state — everything a
    // snapshot captures.
    let alpha_final = take_snapshot(&mut service, "alpha");
    let beta_final = take_snapshot(&mut service, "beta");
    assert_eq!(
        alpha_final.session,
        direct_alpha.session.snapshot().unwrap(),
        "alpha diverged from its direct session"
    );
    assert_eq!(
        beta_final.session,
        direct_beta.session.snapshot().unwrap(),
        "beta diverged from its direct session"
    );
    assert_eq!(alpha_final.objects, direct_alpha.objects);
    assert_eq!(alpha_final.workers, direct_alpha.workers);
    assert_eq!(beta_final.objects, direct_beta.objects);
    assert_eq!(beta_final.workers, direct_beta.workers);

    // Sanity: the conversation actually validated objects on both tenants.
    assert!(service_picks.iter().any(|p| p.starts_with("alpha:")));
    assert!(service_picks.iter().any(|p| p.starts_with("beta:")));
}
