//! Concurrency tests for the sharded service runtime: the determinism
//! guarantee (per-task request order is preserved within a shard, so any
//! task's final snapshot under concurrent mixed traffic is bit-identical
//! to a serial replay of that task's own request stream), graceful-drain
//! shutdown, back-pressure behavior at a saturated mailbox, runtime-stats
//! aggregation, and a junk-line flood through the concurrent dispatcher.

use crowdval_service::runtime::shard_for_task;
use crowdval_service::serve::{serve, ServeOptions};
use crowdval_service::{
    ClientVote, Dispatch, OverloadPolicy, Reply, ReplyOutcome, Request, RequestEnvelope, Response,
    RuntimeConfig, ServiceError, ShardRuntime, StrategyChoice, TaskConfig, ValidationService,
};
use std::collections::HashMap;

const LABELS: [&str; 2] = ["yes", "no"];

/// SplitMix64: the tests pre-generate request streams deterministically so
/// the same stream can be replayed serially for comparison.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn create(task: &str) -> Request {
    Request::CreateTask {
        task: task.to_string(),
        labels: LABELS.iter().map(|l| l.to_string()).collect(),
        config: TaskConfig {
            strategy: StrategyChoice::EntropyBaseline,
            ..TaskConfig::default()
        },
    }
}

fn one_vote(task: &str, n: u64) -> Request {
    Request::SubmitVotes {
        task: task.to_string(),
        votes: vec![ClientVote {
            worker: format!("w{}", n % 5),
            object: format!("o{}", n % 9),
            label: LABELS[(n % 2) as usize].to_string(),
        }],
    }
}

fn guidance(task: &str) -> Request {
    Request::RequestGuidance {
        task: task.to_string(),
    }
}

fn strategy_for(index: usize) -> StrategyChoice {
    match index % 5 {
        0 => StrategyChoice::Hybrid,
        1 => StrategyChoice::UncertaintyDriven,
        2 => StrategyChoice::WorkerDriven,
        3 => StrategyChoice::EntropyBaseline,
        _ => StrategyChoice::Random,
    }
}

/// The scripted request stream of one tenant: create, then rounds of
/// mixed traffic (vote batch, guidance, validation, posterior query),
/// ending in a snapshot. Every request names *fixed* objects — nothing
/// depends on earlier replies — so the exact same stream can run through
/// the concurrent runtime and through a serial service and be compared.
fn task_script(task: &str, index: usize, rounds: usize) -> Vec<Request> {
    let mut rng = 0x5eed_0000 + index as u64;
    let mut script = vec![Request::CreateTask {
        task: task.to_string(),
        labels: LABELS.iter().map(|l| l.to_string()).collect(),
        config: TaskConfig {
            strategy: strategy_for(index),
            seed: index as u64,
            shortlist: Some(8),
            ..TaskConfig::default()
        },
    }];
    for round in 0..rounds {
        let votes = (0..12)
            .map(|i| ClientVote {
                worker: format!("w{}", i % 6),
                object: format!("o{}", (i + round) % 12),
                label: LABELS[(splitmix(&mut rng) % 2) as usize].to_string(),
            })
            .collect();
        script.push(Request::SubmitVotes {
            task: task.to_string(),
            votes,
        });
        script.push(guidance(task));
        script.push(Request::SubmitValidation {
            task: task.to_string(),
            object: format!("o{}", round % 12),
            label: LABELS[(splitmix(&mut rng) % 2) as usize].to_string(),
        });
        script.push(Request::QueryPosterior {
            task: task.to_string(),
            object: format!("o{}", round % 12),
        });
    }
    script.push(Request::Snapshot {
        task: task.to_string(),
    });
    script
}

/// The key correctness property of the sharded runtime: under concurrent
/// mixed traffic from many tenants, every task's final snapshot is
/// bit-identical (compared on the serialized wire form) to a serial
/// replay of that task's own request stream on a fresh single-threaded
/// service.
#[test]
fn concurrent_mixed_traffic_is_bit_identical_to_serial_replay() {
    const TENANTS: usize = 20;
    const ROUNDS: usize = 16;
    let scripts: Vec<(String, Vec<Request>)> = (0..TENANTS)
        .map(|i| {
            let task = format!("tenant-{i}");
            let script = task_script(&task, i, ROUNDS);
            (task, script)
        })
        .collect();

    // Interleave the tenant streams round-robin into one global stream
    // with unique correlation ids — per-task order is submission order.
    let mut envelopes: Vec<RequestEnvelope> = Vec::new();
    let mut cursors = [0usize; TENANTS];
    let mut next_id = 1u64;
    let mut snapshot_ids: HashMap<u64, usize> = HashMap::new();
    loop {
        let mut progressed = false;
        for (tenant, (_, script)) in scripts.iter().enumerate() {
            if cursors[tenant] < script.len() {
                let request = script[cursors[tenant]].clone();
                if matches!(request, Request::Snapshot { .. }) {
                    snapshot_ids.insert(next_id, tenant);
                }
                envelopes.push(RequestEnvelope::new(next_id, request));
                next_id += 1;
                cursors[tenant] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let total = envelopes.len();
    assert!(total >= 1000, "want thousands of requests, got {total}");

    let (runtime, replies) = ShardRuntime::start(RuntimeConfig {
        num_shards: 4,
        mailbox_capacity: 64,
        overload: OverloadPolicy::Block,
        ..RuntimeConfig::default()
    });
    for envelope in envelopes {
        assert!(matches!(
            runtime.submit(envelope),
            Dispatch::Enqueued { .. }
        ));
    }
    runtime.shutdown();
    let collected: Vec<Reply> = replies.into_iter().collect();
    assert_eq!(collected.len(), total, "a reply per accepted request");

    // Pull each tenant's final snapshot out of the concurrent replies,
    // matched by the echoed correlation id (arrival order is arbitrary).
    let mut concurrent: HashMap<usize, String> = HashMap::new();
    for reply in &collected {
        if let Some(&tenant) = snapshot_ids.get(&reply.request_id) {
            match reply.result() {
                Ok(Response::Snapshot { snapshot, .. }) => {
                    concurrent.insert(tenant, serde_json::to_string(snapshot).unwrap());
                }
                other => panic!("snapshot request failed: {other:?}"),
            }
        }
    }
    assert_eq!(concurrent.len(), TENANTS);

    // Serial replay: each tenant's own stream, alone, on a fresh service.
    for (tenant, (task, script)) in scripts.iter().enumerate() {
        let mut service = ValidationService::new();
        let mut serial = None;
        for request in script.iter().cloned() {
            let reply = service.reply(&RequestEnvelope::latest(request));
            if let ReplyOutcome::Ok(Response::Snapshot { snapshot, .. }) = reply.outcome {
                serial = Some(serde_json::to_string(&snapshot).unwrap());
            }
        }
        assert_eq!(
            concurrent.get(&tenant),
            serial.as_ref(),
            "tenant {task} diverged from its serial replay"
        );
    }
}

/// Graceful shutdown is a drain: every request accepted into a mailbox is
/// processed and its reply flushed before the reply channel disconnects,
/// even when shutdown is called the instant submission stops.
#[test]
fn shutdown_drains_every_accepted_request() {
    let (runtime, replies) = ShardRuntime::start(RuntimeConfig {
        num_shards: 4,
        mailbox_capacity: 256,
        overload: OverloadPolicy::Block,
        ..RuntimeConfig::default()
    });
    let mut submitted = 0u64;
    for t in 0..8 {
        let task = format!("drain-{t}");
        submitted += 1;
        runtime.submit(RequestEnvelope::new(submitted, create(&task)));
        for _ in 0..25 {
            submitted += 1;
            runtime.submit(RequestEnvelope::new(submitted, one_vote(&task, submitted)));
        }
    }
    runtime.shutdown();
    let mut ids: Vec<u64> = replies.into_iter().map(|r| r.request_id).collect();
    ids.sort_unstable();
    assert_eq!(
        ids,
        (1..=submitted).collect::<Vec<_>>(),
        "every accepted request must be answered exactly once"
    );
}

/// Back-pressure at the ingest boundary: a saturated mailbox under the
/// reject policy fails new requests with the documented `Overloaded`
/// error (a typed reply, not a dropped line, not unbounded buffering) and
/// accepts again once the shard drains.
#[test]
fn full_mailbox_rejects_with_overloaded_and_recovers_once_drained() {
    let (runtime, replies) = ShardRuntime::start(RuntimeConfig {
        num_shards: 1,
        mailbox_capacity: 2,
        overload: OverloadPolicy::Reject,
        ..RuntimeConfig::default()
    });
    assert_eq!(shard_for_task("burst", 1), 0);
    runtime.submit(RequestEnvelope::new(1, create("burst")));
    let created = replies.recv().unwrap();
    assert!(created.result().is_ok(), "{:?}", created.result());

    // Park the worker, then saturate the mailbox. The hold may or may not
    // still occupy its slot when the submissions land, so four attempts
    // against capacity 2 guarantee at least one acceptance and at least
    // one rejection either way.
    let hold = runtime.hold_shard(0).expect("idle shard accepts a hold");
    let mut enqueued = 0usize;
    let mut rejected: Vec<u64> = Vec::new();
    for id in 2..=5u64 {
        match runtime.submit(RequestEnvelope::new(id, guidance("burst"))) {
            Dispatch::Enqueued { shard } => {
                assert_eq!(shard, 0);
                enqueued += 1;
            }
            Dispatch::Rejected { shard } => {
                assert_eq!(shard, 0);
                rejected.push(id);
            }
            Dispatch::Answered => unreachable!("guidance is shard-routed"),
            Dispatch::Shed { .. } => unreachable!("unsupervised runtimes never shed"),
        }
    }
    assert!(enqueued >= 1, "capacity 2 admits at least one request");
    assert!(!rejected.is_empty(), "a saturated mailbox must reject");

    // Release the shard; once it drains, submissions are accepted again.
    drop(hold);
    let recovered_id = 99u64;
    loop {
        match runtime.submit(RequestEnvelope::new(recovered_id, guidance("burst"))) {
            Dispatch::Enqueued { .. } => break,
            Dispatch::Rejected { .. } => std::thread::yield_now(),
            Dispatch::Answered | Dispatch::Shed { .. } => unreachable!(),
        }
    }
    runtime.shutdown();
    let collected: Vec<Reply> = replies.into_iter().collect();

    for id in &rejected {
        let reply = collected
            .iter()
            .find(|r| r.request_id == *id)
            .expect("rejected requests still get a reply");
        match reply.result() {
            Err(ServiceError::Overloaded {
                task,
                shard,
                capacity,
                retry_after_ms,
            }) => {
                assert_eq!(task, "burst");
                assert_eq!(*shard, 0);
                assert_eq!(*capacity, 2);
                assert!(*retry_after_ms >= 1, "retry hint is always at least 1ms");
            }
            other => panic!("rejected request must reply Overloaded, got {other:?}"),
        }
    }
    assert!(
        collected
            .iter()
            .any(|r| r.request_id == recovered_id && r.result().is_ok()),
        "the shard must serve requests again after draining"
    );
}

/// `RuntimeStats` is answered by the dispatcher from the shared per-shard
/// counters; the totals account for every routed request and every
/// ingested vote.
#[test]
fn runtime_stats_aggregate_the_per_shard_counters() {
    let (runtime, replies) = ShardRuntime::start(RuntimeConfig {
        num_shards: 4,
        mailbox_capacity: 64,
        overload: OverloadPolicy::Block,
        ..RuntimeConfig::default()
    });
    let mut id = 0u64;
    let mut votes_sent = 0u64;
    for t in 0..6 {
        let task = format!("stats-{t}");
        id += 1;
        runtime.submit(RequestEnvelope::new(id, create(&task)));
        let votes: Vec<ClientVote> = (0..5)
            .map(|i| ClientVote {
                worker: format!("w{i}"),
                object: format!("o{i}"),
                label: LABELS[i % 2].to_string(),
            })
            .collect();
        votes_sent += votes.len() as u64;
        id += 1;
        runtime.submit(RequestEnvelope::new(
            id,
            Request::SubmitVotes { task, votes },
        ));
    }
    // Workers bump their counters before replying, so once every routed
    // request has replied the stats are settled.
    for _ in 0..id {
        replies.recv().expect("a reply per routed request");
    }

    id += 1;
    let dispatch = runtime.submit(RequestEnvelope::new(id, Request::RuntimeStats));
    assert_eq!(dispatch, Dispatch::Answered, "stats never enter a mailbox");
    let reply = replies.recv().unwrap();
    assert_eq!(reply.request_id, id);
    let Ok(Response::RuntimeStats { shards }) = reply.result() else {
        panic!("stats request failed: {:?}", reply.result());
    };
    assert_eq!(shards.len(), 4);
    assert_eq!(
        shards.iter().map(|s| s.requests_served).sum::<u64>(),
        id - 1,
        "every routed request is counted by exactly one shard"
    );
    assert_eq!(
        shards.iter().map(|s| s.votes_ingested).sum::<u64>(),
        votes_sent
    );
    assert_eq!(shards.iter().map(|s| s.tasks).sum::<usize>(), 6);
    for stats in shards {
        assert_eq!(stats.queue_depth, 0, "idle shards report empty queues");
        assert_eq!(stats.mailbox_capacity, 64);
        if stats.requests_served > 0 {
            assert!(stats.service_time_p50_us > 0.0);
            assert!(stats.service_time_p99_us >= stats.service_time_p50_us);
        }
    }
    runtime.shutdown();
}

/// Flooding the concurrent dispatcher with junk lines mixed into valid
/// traffic never panics and never loses a reply: one reply line per
/// request line, malformed ones included.
#[test]
fn junk_floods_through_the_sharded_dispatcher_reply_and_never_panic() {
    const JUNK: [&str; 8] = [
        "{",
        "null",
        "42",
        "[]",
        "\"a bare string\"",
        "{\"version\":2}",
        "{\"version\":2,\"request_id\":7,\"request\":{\"NoSuchRequest\":{}}}",
        "corrupt {] line",
    ];
    let mut rng = 0xbad_5eed_u64;
    let mut lines: Vec<String> = Vec::new();
    let mut requests = 0usize;
    let mut junk = 0usize;
    for i in 0..400u64 {
        if splitmix(&mut rng).is_multiple_of(3) {
            let task = format!("fuzz-{}", i % 7);
            let request = match splitmix(&mut rng) % 3 {
                0 => create(&task),
                1 => one_vote(&task, i),
                _ => guidance(&task),
            };
            let envelope = RequestEnvelope::new(i + 1, request);
            lines.push(serde_json::to_string(&envelope).unwrap());
            requests += 1;
        } else {
            lines.push(JUNK[(splitmix(&mut rng) as usize) % JUNK.len()].to_string());
            junk += 1;
            requests += 1;
        }
    }
    let input = lines.join("\n") + "\n";
    let (out, summary) = serve(
        input.as_bytes(),
        Vec::new(),
        &ServeOptions {
            shards: 4,
            mailbox_capacity: 32,
            overload: OverloadPolicy::Block,
            ..ServeOptions::default()
        },
    );
    assert_eq!(summary.requests, requests);
    assert_eq!(summary.replies, requests, "a reply line per input line");
    assert_eq!(summary.malformed, junk);
    let text = String::from_utf8(out.expect("writer survives junk floods")).unwrap();
    assert_eq!(text.lines().count(), requests);
    for line in text.lines() {
        serde_json::from_str::<Reply>(line).expect("every output line is a parseable reply");
    }
}
