//! "No `Request` input can panic the service": property test driving a
//! [`ValidationService`] with randomly generated — frequently malformed —
//! request sequences. Every request must come back as `Ok(Response)` or
//! `Err(ServiceError)`; a panic anywhere in the engine fails the test.
//!
//! The generator is adversarial on purpose: empty/odd task names and ids,
//! unknown labels, wrong protocol versions, empty and duplicate label sets,
//! restores of corrupted snapshots, queries against tasks that were never
//! created or already closed. It also hammers the JSON boundary of the
//! `crowdval-serve` driver with junk lines.

use crowdval_service::{
    ClientVote, FaultKind, FaultPlan, Reply, Request, RequestEnvelope, ServiceError,
    StrategyChoice, TaskConfig, TaskSnapshot, ValidationService, PROTOCOL_VERSION,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A short id from a deliberately collision-happy and occasionally weird
/// pool (empty strings, unicode, whitespace).
fn gen_id(rng: &mut StdRng) -> String {
    const POOL: [&str; 12] = [
        "",
        "t",
        "alpha",
        "beta",
        "obj-1",
        "obj-2",
        "w1",
        "w2",
        "yes",
        "no",
        "naïve id",
        " \t ",
    ];
    POOL[rng.random_range(0..POOL.len())].to_string()
}

fn gen_labels(rng: &mut StdRng) -> Vec<String> {
    let n = rng.random_range(0..4usize);
    (0..n)
        .map(|_| {
            // Sometimes duplicate labels on purpose.
            if rng.random_bool(0.3) {
                "dup".to_string()
            } else {
                gen_id(rng)
            }
        })
        .collect()
}

fn gen_votes(rng: &mut StdRng) -> Vec<ClientVote> {
    let n = rng.random_range(0..6usize);
    (0..n)
        .map(|_| ClientVote {
            worker: gen_id(rng),
            object: gen_id(rng),
            label: gen_id(rng),
        })
        .collect()
}

/// A corrupted variant of a (possibly genuine) snapshot — shallow field
/// tampering plus deep inconsistencies in the posterior internals (wrong
/// confusion shapes, wrong prior lengths, mismatched assignment dims), the
/// class of malformed input a restore must refuse rather than index into.
fn corrupt_snapshot(rng: &mut StdRng, snapshot: &mut TaskSnapshot) {
    use crowdval_model::{AssignmentMatrix, ConfusionMatrix, ProbabilisticAnswerSet};
    match rng.random_range(0..7u32) {
        0 => snapshot.protocol_version = rng.random_range(0..4u32),
        1 => snapshot.session.format_version = rng.random_range(0..3u32),
        2 => snapshot.objects = crowdval_model::IdInterner::new(),
        3 => {
            snapshot.session.expert =
                crowdval_model::ExpertValidation::empty(rng.random_range(0..5usize));
        }
        4 => {
            // Confusion matrices of the wrong label count.
            let current = &snapshot.session.current;
            snapshot.session.current = ProbabilisticAnswerSet::new(
                current.assignment().clone(),
                vec![ConfusionMatrix::uniform(1); current.num_workers()],
                current.priors().to_vec(),
                current.em_iterations(),
            );
        }
        5 => {
            // Wrong prior length.
            let current = &snapshot.session.current;
            snapshot.session.current = ProbabilisticAnswerSet::new(
                current.assignment().clone(),
                current.confusions().to_vec(),
                vec![1.0; rng.random_range(0..5u64) as usize],
                current.em_iterations(),
            );
        }
        _ => {
            // Assignment over the wrong object/label space.
            let current = &snapshot.session.current;
            snapshot.session.current = ProbabilisticAnswerSet::new(
                AssignmentMatrix::uniform(
                    rng.random_range(0..4u64) as usize,
                    rng.random_range(1..4u64) as usize,
                ),
                current.confusions().to_vec(),
                current.priors().to_vec(),
                current.em_iterations(),
            );
        }
    }
}

/// A fault plan with arbitrary (often out-of-range) shard indices and
/// arrival counts — the dispatcher must refuse or clamp it, never panic.
fn gen_fault_plan(rng: &mut StdRng) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for _ in 0..rng.random_range(0..4usize) {
        let kind = match rng.random_range(0..5u32) {
            0 => FaultKind::Panic,
            1 => FaultKind::Kill,
            2 => FaultKind::Stall {
                ms: rng.random_range(0..3u64),
            },
            3 => FaultKind::DropReply,
            _ => FaultKind::TearCheckpoint,
        };
        plan.push(
            rng.random_range(0..20usize),
            rng.random_range(0..100u64),
            kind,
        );
    }
    plan
}

fn gen_request(rng: &mut StdRng, last_snapshot: &Option<TaskSnapshot>) -> Request {
    match rng.random_range(0..11u32) {
        0 => Request::CreateTask {
            task: gen_id(rng),
            labels: gen_labels(rng),
            config: TaskConfig {
                strategy: match rng.random_range(0..5u32) {
                    0 => StrategyChoice::Hybrid,
                    1 => StrategyChoice::UncertaintyDriven,
                    2 => StrategyChoice::WorkerDriven,
                    3 => StrategyChoice::EntropyBaseline,
                    _ => StrategyChoice::Random,
                },
                seed: rng.random(),
                budget: if rng.random_bool(0.5) {
                    Some(rng.random_range(0..5u64) as usize)
                } else {
                    None
                },
                handle_faulty_workers: rng.random_bool(0.8),
                online_defense: rng.random_bool(0.5),
                shortlist: if rng.random_bool(0.3) {
                    Some(rng.random_range(0..40u64) as usize)
                } else {
                    None
                },
                wal: rng.random_bool(0.5),
                triage: rng.random_bool(0.5),
            },
        },
        1 => Request::SubmitVotes {
            task: gen_id(rng),
            votes: gen_votes(rng),
        },
        2 => Request::RequestGuidance { task: gen_id(rng) },
        3 => Request::SubmitValidation {
            task: gen_id(rng),
            object: gen_id(rng),
            label: gen_id(rng),
        },
        4 => Request::QueryPosterior {
            task: gen_id(rng),
            object: gen_id(rng),
        },
        5 => Request::Snapshot { task: gen_id(rng) },
        6 => {
            // Restore a genuine snapshot (when one exists), often corrupted.
            let mut snapshot = match last_snapshot {
                Some(s) => Box::new(s.clone()),
                None => return Request::Snapshot { task: gen_id(rng) },
            };
            if rng.random_bool(0.5) {
                corrupt_snapshot(rng, &mut snapshot);
            }
            Request::Restore {
                task: gen_id(rng),
                snapshot,
            }
        }
        7 => Request::TriageStats { task: gen_id(rng) },
        8 => Request::CloseTask { task: gen_id(rng) },
        9 => Request::Health,
        _ => Request::FaultInject {
            plan: gen_fault_plan(rng),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Arbitrary request sequences never panic the service, and every reply
    /// is a typed success or failure.
    #[test]
    fn arbitrary_request_sequences_never_panic(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut service = ValidationService::new();
        let mut last_snapshot: Option<TaskSnapshot> = None;
        for step in 0..60 {
            let version = if rng.random_bool(0.9) {
                PROTOCOL_VERSION
            } else {
                rng.random_range(0..5u32)
            };
            let request = gen_request(&mut rng, &last_snapshot);
            let envelope = RequestEnvelope {
                version,
                request_id: step as u64,
                request,
            };
            match service.handle(&envelope) {
                Ok(response) => {
                    if let crowdval_service::Response::Snapshot { snapshot, .. } = response {
                        last_snapshot = Some(*snapshot);
                    }
                }
                Err(error) => {
                    // Errors must render without panicking too.
                    let _ = error.to_string();
                    if version != PROTOCOL_VERSION {
                        prop_assert!(matches!(
                            error,
                            ServiceError::UnsupportedVersion { .. }
                        ), "step {step}: wrong error for version mismatch");
                    }
                }
            }
        }
    }

    /// The JSON boundary never panics either: junk lines produce
    /// `MalformedRequest`, valid envelopes produce a reply that serializes.
    #[test]
    fn json_boundary_never_panics(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut service = ValidationService::new();
        const JUNK: [&str; 8] = [
            "",
            "{",
            "null",
            "42",
            "{\"version\": 1}",
            "{\"version\": \"one\", \"request\": {\"RequestGuidance\": {\"task\": 3}}}",
            "{\"version\": 1, \"request\": {\"NoSuchRequest\": {}}}",
            "[{\"version\": 1}]",
        ];
        for _ in 0..30 {
            let reply = if rng.random_bool(0.5) {
                let line = JUNK[rng.random_range(0..JUNK.len())];
                match serde_json::from_str::<RequestEnvelope>(line) {
                    Ok(envelope) => service.reply(&envelope),
                    Err(e) => Reply::err(
                        0,
                        ServiceError::MalformedRequest {
                            message: e.to_string(),
                        },
                    ),
                }
            } else {
                let request = gen_request(&mut rng, &None);
                service.reply(&RequestEnvelope::latest(request))
            };
            // Every reply serializes to a JSON line.
            let json = serde_json::to_string(&reply).unwrap();
            prop_assert!(!json.contains('\n'));
        }
    }
}
