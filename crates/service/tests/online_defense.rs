//! Service-level acceptance of the online adversarial-worker defense:
//! a task created with [`TaskConfig::online_defense`] must tombstone a
//! constant-answer spammer mid-stream and report the exclusion on the
//! wire (in [`Response::VotesAccepted`]), through
//! [`Request::QueryWorkerTrust`], and in the runtime counters — while a
//! task with the default config tracks the same trust evidence without
//! ever enforcing it.

use crowdval_service::{
    ClientVote, Request, RequestEnvelope, Response, ServiceError, StrategyChoice, TaskConfig,
    ValidationService,
};
use crowdval_sim::{PopulationMix, StreamingConfig, SyntheticConfig};
use std::collections::BTreeSet;

const LABEL_NAMES: [&str; 2] = ["neg", "pos"];
const SPAMMER: &str = "spam";

/// A streaming workload of reliable workers with one constant-answer
/// spammer riding every batch: the spammer votes `neg` on each batch's
/// distinct objects (at most once per object, matching the engine's
/// no-duplicate-arrival contract).
fn batches_with_spammer(seed: u64) -> Vec<Vec<ClientVote>> {
    let scenario = StreamingConfig {
        base: SyntheticConfig {
            num_objects: 24,
            num_workers: 10,
            reliability: 0.9,
            mix: PopulationMix::all_reliable(),
            ..SyntheticConfig::paper_default(seed)
        },
        initial_fraction: 0.3,
        batch_size: 30,
        late_object_fraction: 0.2,
        late_worker_fraction: 0.2,
    }
    .generate();
    let rename = |votes: &[crowdval_model::Vote]| -> Vec<ClientVote> {
        votes
            .iter()
            .map(|v| ClientVote {
                worker: format!("w{}", v.worker.index()),
                object: format!("obj{}", v.object.index()),
                label: LABEL_NAMES[v.label.index()].to_string(),
            })
            .collect()
    };
    let mut spammed_objects: BTreeSet<String> = BTreeSet::new();
    let mut batches = vec![rename(&scenario.initial)];
    batches.extend(scenario.batches.iter().map(|b| rename(b)));
    for batch in batches.iter_mut().skip(1) {
        let targets: Vec<String> = batch
            .iter()
            .map(|v| v.object.clone())
            .filter(|o| spammed_objects.insert(o.clone()))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        batch.extend(targets.into_iter().map(|object| ClientVote {
            worker: SPAMMER.to_string(),
            object,
            label: LABEL_NAMES[0].to_string(),
        }));
    }
    batches
}

fn send(service: &mut ValidationService, request: Request) -> Response {
    service
        .handle(&RequestEnvelope::latest(request))
        .expect("scripted request must succeed")
}

fn create_task(service: &mut ValidationService, task: &str, online_defense: bool) {
    send(
        service,
        Request::CreateTask {
            task: task.into(),
            labels: LABEL_NAMES.iter().map(|&l| l.to_string()).collect(),
            config: TaskConfig {
                strategy: StrategyChoice::EntropyBaseline,
                seed: 7,
                online_defense,
                ..TaskConfig::default()
            },
        },
    );
}

/// Streams the workload into `task`, returning every exclusion and
/// reinstatement reported on the wire, in arrival order.
fn stream(service: &mut ValidationService, task: &str) -> (Vec<String>, Vec<String>) {
    let mut excluded = Vec::new();
    let mut reinstated = Vec::new();
    for batch in batches_with_spammer(4242) {
        match send(
            service,
            Request::SubmitVotes {
                task: task.into(),
                votes: batch,
            },
        ) {
            Response::VotesAccepted {
                workers_excluded,
                workers_reinstated,
                ..
            } => {
                excluded.extend(workers_excluded);
                reinstated.extend(workers_reinstated);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    (excluded, reinstated)
}

#[test]
fn defended_task_reports_spammer_exclusion_on_the_wire() {
    let mut service = ValidationService::new();
    create_task(&mut service, "guarded", true);
    let (excluded, reinstated) = stream(&mut service, "guarded");

    assert_eq!(excluded, vec![SPAMMER.to_string()], "exactly the spammer");
    assert!(reinstated.is_empty(), "nothing exonerated the spammer");

    // The trust report ranks the spammer first and marks it excluded.
    match send(
        &mut service,
        Request::QueryWorkerTrust {
            task: "guarded".into(),
        },
    ) {
        Response::WorkerTrust {
            workers,
            exclusions,
            batches_observed,
            ..
        } => {
            assert!(batches_observed > 0);
            assert_eq!(exclusions, 1);
            let top = &workers[0];
            assert_eq!(top.worker, SPAMMER);
            assert!(top.excluded);
            assert!(top.suspicion >= 0.6, "suspicion {}", top.suspicion);
            assert!(workers.iter().skip(1).all(|w| !w.excluded));
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // The single-threaded runtime stats carry the defense counters too.
    match send(&mut service, Request::RuntimeStats) {
        Response::RuntimeStats { shards } => {
            assert_eq!(shards[0].workers_excluded, 1);
            assert_eq!(shards[0].workers_reinstated, 0);
        }
        other => panic!("unexpected reply {other:?}"),
    }
}

#[test]
fn default_task_tracks_trust_without_enforcing() {
    let mut service = ValidationService::new();
    create_task(&mut service, "open", false);
    let (excluded, reinstated) = stream(&mut service, "open");

    assert!(excluded.is_empty(), "defense off: no wire exclusions");
    assert!(reinstated.is_empty());

    // Tracking is unconditional: the query still exposes the evidence,
    // it just never flipped a tombstone.
    match send(
        &mut service,
        Request::QueryWorkerTrust {
            task: "open".into(),
        },
    ) {
        Response::WorkerTrust {
            workers,
            exclusions,
            ..
        } => {
            assert_eq!(exclusions, 0);
            let top = &workers[0];
            assert_eq!(top.worker, SPAMMER, "spammer still tops the ranking");
            assert!(!top.excluded);
            assert!(top.suspicion >= 0.6, "suspicion {}", top.suspicion);
            assert!(workers.iter().all(|w| !w.excluded));
        }
        other => panic!("unexpected reply {other:?}"),
    }
}

#[test]
fn worker_trust_query_requires_an_existing_task() {
    let mut service = ValidationService::new();
    let err = service
        .handle(&RequestEnvelope::latest(Request::QueryWorkerTrust {
            task: "ghost".into(),
        }))
        .unwrap_err();
    assert!(matches!(err, ServiceError::TaskNotFound { .. }));
}
