//! Chaos tests for the supervised shard runtime: deterministic fault
//! injection kills workers mid-traffic and the runtime must (a) answer
//! every accepted request exactly once — with its real reply or a typed
//! `Unavailable` flush, never silence, never a duplicate correlation id —
//! and (b) recover every task to **exactly the acknowledged prefix**: the
//! final posteriors, trust ledger and triage decisions equal a serial
//! replay of just the `Ok`-replied requests on a fresh single-threaded
//! service.

use crowdval_service::serve::{serve, ServeOptions};
use crowdval_service::{
    ClientVote, Dispatch, FaultKind, FaultPlan, OverloadPolicy, Reply, ReplyOutcome, Request,
    RequestEnvelope, Response, RuntimeConfig, ServiceError, ShardRuntime, StrategyChoice,
    SupervisionConfig, TaskConfig, UnavailableReason, ValidationService,
};
use std::collections::HashMap;
use std::sync::mpsc::Receiver;
use std::time::Duration;

const LABELS: [&str; 2] = ["yes", "no"];
const OBJECTS: usize = 10;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One tenant's scripted stream: create (WAL + triage on, so recovery
/// exercises the delta log and the triage scorer), then rounds of votes,
/// guidance, validation and posterior queries. Requests reference fixed
/// names only, so any acknowledged subset replays serially.
fn task_script(task: &str, index: usize, rounds: usize) -> Vec<Request> {
    let mut rng = 0xc4a0_5000 + index as u64;
    let mut script = vec![Request::CreateTask {
        task: task.to_string(),
        labels: LABELS.iter().map(|l| l.to_string()).collect(),
        config: TaskConfig {
            strategy: match index % 3 {
                0 => StrategyChoice::Hybrid,
                1 => StrategyChoice::UncertaintyDriven,
                _ => StrategyChoice::EntropyBaseline,
            },
            seed: index as u64,
            shortlist: Some(6),
            wal: true,
            triage: true,
            ..TaskConfig::default()
        },
    }];
    for round in 0..rounds {
        let votes = (0..8)
            .map(|i| ClientVote {
                worker: format!("w{}", i % 5),
                object: format!("o{}", (i + round) % OBJECTS),
                label: LABELS[(splitmix(&mut rng) % 2) as usize].to_string(),
            })
            .collect();
        script.push(Request::SubmitVotes {
            task: task.to_string(),
            votes,
        });
        script.push(Request::RequestGuidance {
            task: task.to_string(),
        });
        script.push(Request::SubmitValidation {
            task: task.to_string(),
            object: format!("o{}", round % OBJECTS),
            label: LABELS[(splitmix(&mut rng) % 2) as usize].to_string(),
        });
        script.push(Request::QueryPosterior {
            task: task.to_string(),
            object: format!("o{}", round % OBJECTS),
        });
    }
    script
}

/// The verification probes of one task: the full observable state the
/// acceptance bar names — every object's posterior, the worker-trust
/// ledger, and the triage decision stats.
fn probes(task: &str) -> Vec<Request> {
    let mut list: Vec<Request> = (0..OBJECTS)
        .map(|o| Request::QueryPosterior {
            task: task.to_string(),
            object: format!("o{o}"),
        })
        .collect();
    list.push(Request::QueryWorkerTrust {
        task: task.to_string(),
    });
    list.push(Request::TriageStats {
        task: task.to_string(),
    });
    list
}

/// The headline chaos property: a seeded fault plan kills **every shard at
/// least once** mid-traffic, and after automatic recovery the final
/// per-task posteriors, trust-ledger state and triage decisions are
/// bit-identical (on the serialized wire form) to an unfailed serial
/// replay of exactly the acknowledged (`Ok`-replied) requests.
#[test]
fn crash_recovery_equals_serial_replay_of_the_acknowledged_prefix() {
    const TENANTS: usize = 6;
    const ROUNDS: usize = 8;
    const SHARDS: usize = 2;
    let (runtime, replies) = ShardRuntime::start(RuntimeConfig {
        num_shards: SHARDS,
        mailbox_capacity: 64,
        overload: OverloadPolicy::Block,
        supervision: SupervisionConfig {
            checkpoint_every: 4, // small: recovery exercises anchor + log
            ..SupervisionConfig::chaos()
        },
    });

    // One Panic-or-Kill per shard early in its stream, plus a stall and a
    // second crash — every shard dies at least once, at a seeded,
    // reproducible arrival. Arrivals stay ≤ 15: every shard owning at
    // least one task sees ≥ 25 non-sheddable requests (asserted below),
    // so all faults fire during the mutation phase, before the probes.
    let mut plan = FaultPlan::seeded_crashes(0xdead_beef, SHARDS, 3, 10);
    for shard in 0..SHARDS {
        plan.push(shard, 12, FaultKind::Stall { ms: 1 });
        plan.push(shard, 14 + shard as u64, FaultKind::Panic);
    }
    assert_eq!(
        runtime.submit(RequestEnvelope::new(1, Request::FaultInject { plan })),
        Dispatch::Answered
    );

    // Interleave the tenant streams round-robin; record each envelope so
    // the acknowledged subset can be replayed serially afterwards.
    let scripts: Vec<(String, Vec<Request>)> = (0..TENANTS)
        .map(|i| {
            let task = format!("chaos-{i}");
            let script = task_script(&task, i, ROUNDS);
            (task, script)
        })
        .collect();
    // Every shard must own at least one task (and with it ≥ 25
    // non-sheddable arrivals), or the fault arrivals above never fire.
    for shard in 0..SHARDS {
        assert!(
            scripts
                .iter()
                .any(|(task, _)| crowdval_service::runtime::shard_for_task(task, SHARDS) == shard),
            "shard {shard} owns no task; pick different tenant names"
        );
    }
    let mut submitted: HashMap<u64, (usize, Request)> = HashMap::new();
    let mut next_id = 2u64;
    let mut cursors = [0usize; TENANTS];
    loop {
        let mut progressed = false;
        for (tenant, (_, script)) in scripts.iter().enumerate() {
            if cursors[tenant] < script.len() {
                let request = script[cursors[tenant]].clone();
                submitted.insert(next_id, (tenant, request.clone()));
                let dispatch = runtime.submit(RequestEnvelope::new(next_id, request));
                // Guidance may legitimately come back `Shed` past the
                // watermark; shed/rejected requests simply never join the
                // acknowledged prefix the serial replay reproduces.
                assert_ne!(dispatch, Dispatch::Answered, "mutations are shard-routed");
                next_id += 1;
                cursors[tenant] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // Heal-and-drain: the workers run behind the dispatcher, so the last
    // injected crash may fire after all traffic is already submitted — no
    // later dispatch would notice the dead shard. A `Health` probe is the
    // supervisor's heartbeat: it restarts dead shards and flushes their
    // reply-less requests. Nudge until every mutation has its reply.
    let mut seen: HashMap<u64, Reply> = HashMap::new();
    let collect = |seen: &mut HashMap<u64, Reply>, replies: &Receiver<Reply>| {
        while let Ok(reply) = replies.recv_timeout(Duration::from_millis(20)) {
            assert!(
                seen.insert(reply.request_id, reply).is_none(),
                "duplicate reply for a correlation id"
            );
        }
    };
    let drain_deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        collect(&mut seen, &replies);
        if (1..next_id).all(|id| seen.contains_key(&id)) {
            break;
        }
        assert!(
            std::time::Instant::now() < drain_deadline,
            "mutation replies never drained: {} of {} received",
            seen.len(),
            next_id - 1
        );
        runtime.submit(RequestEnvelope::new(next_id, Request::Health));
        next_id += 1;
    }

    // Every fault has now fired (all mutations are answered, and every
    // fault arrival is below the per-shard mutation count), so the probes
    // run crash-free and observe each task's final recovered state.
    let mut probe_ids: HashMap<u64, (usize, Request)> = HashMap::new();
    for (tenant, (task, _)) in scripts.iter().enumerate() {
        for request in probes(task) {
            probe_ids.insert(next_id, (tenant, request.clone()));
            runtime.submit(RequestEnvelope::new(next_id, request));
            next_id += 1;
        }
    }
    let health_id = next_id;
    assert_eq!(
        runtime.submit(RequestEnvelope::new(health_id, Request::Health)),
        Dispatch::Answered
    );
    next_id += 1;
    let report = runtime.shutdown();
    assert!(
        report.is_clean(),
        "every injected panic was resolved by a restart and every reply \
         delivered before shutdown: {report:?}"
    );

    // Exactly one reply per submitted correlation id — no lost replies,
    // no duplicates, crashes notwithstanding.
    for reply in replies {
        assert!(
            seen.insert(reply.request_id, reply).is_none(),
            "duplicate reply for a correlation id"
        );
    }
    assert_eq!(
        seen.len() as u64,
        next_id - 1,
        "a reply per submitted request"
    );

    let Some(Reply {
        outcome: ReplyOutcome::Ok(Response::Health { shards }),
        ..
    }) = seen.get(&health_id)
    else {
        panic!("health reply missing or failed");
    };
    for health in shards {
        assert!(health.alive, "shard {} not restarted", health.shard);
        assert!(
            health.restarts >= 1,
            "shard {} was never killed — the plan must hit every shard",
            health.shard
        );
        assert!(health.panics_isolated >= 1);
    }
    let losses = seen
        .values()
        .filter(|r| {
            matches!(
                r.result(),
                Err(ServiceError::Unavailable {
                    reason: UnavailableReason::RequestLost,
                    ..
                })
            )
        })
        .count();
    assert!(
        losses >= 1,
        "crashes mid-stream must surface at least one typed RequestLost flush"
    );

    // Serial ground truth: per task, replay only the Ok-replied mutating
    // requests, in submission order, on a fresh single-threaded service —
    // then ask the same probes and compare the serialized responses.
    for (tenant, (task, _)) in scripts.iter().enumerate() {
        let mut service = ValidationService::new();
        let mut ids: Vec<u64> = submitted
            .iter()
            .filter(|(_, (t, _))| *t == tenant)
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable(); // submission order == correlation-id order
        for id in ids {
            let (_, request) = &submitted[&id];
            if !request.is_mutating() || seen[&id].result().is_err() {
                continue;
            }
            let reply = service.reply(&RequestEnvelope::latest(request.clone()));
            assert!(
                reply.result().is_ok(),
                "acknowledged request {id} must replay cleanly: {:?}",
                reply.result()
            );
        }
        let mut probe_list: Vec<u64> = probe_ids
            .iter()
            .filter(|(_, (t, _))| *t == tenant)
            .map(|(id, _)| *id)
            .collect();
        probe_list.sort_unstable();
        for id in probe_list {
            let (_, request) = &probe_ids[&id];
            let serial = service.reply(&RequestEnvelope::latest(request.clone()));
            let chaos_json = serde_json::to_string(&seen[&id].outcome).unwrap();
            let serial_json = serde_json::to_string(&serial.outcome).unwrap();
            assert_eq!(
                chaos_json, serial_json,
                "task {task}: probe {request:?} diverged from the serial replay"
            );
        }
    }
}

/// Satellite: injected shard death mid-stream through the **serve** loop —
/// every input line still gets exactly one output line, correlation ids
/// are unique, and the summary reports the failure accounting instead of
/// panicking anything.
#[test]
fn serve_drains_every_line_under_injected_shard_death() {
    let mut lines: Vec<String> = Vec::new();
    let mut plan = FaultPlan::new();
    plan.push(0, 9, FaultKind::Kill);
    plan.push(1, 7, FaultKind::Panic);
    lines.push(
        serde_json::to_string(&RequestEnvelope::new(1, Request::FaultInject { plan })).unwrap(),
    );
    let mut next_id = 2u64;
    for t in 0..4 {
        let task = format!("serve-chaos-{t}");
        for request in task_script(&task, t, 6) {
            lines.push(serde_json::to_string(&RequestEnvelope::new(next_id, request)).unwrap());
            next_id += 1;
        }
    }
    let total = lines.len();
    let input = lines.join("\n") + "\n";
    let (out, summary) = serve(
        input.as_bytes(),
        Vec::new(),
        &ServeOptions {
            shards: 2,
            mailbox_capacity: 32,
            overload: OverloadPolicy::Block,
            supervision: SupervisionConfig::chaos(),
        },
    );
    assert_eq!(summary.requests, total);
    assert_eq!(
        summary.replies, total,
        "a reply line per input line, shard deaths included"
    );
    assert!(!summary.writer_panicked);
    let text = String::from_utf8(out.expect("writer survives shard chaos")).unwrap();
    let mut ids: Vec<u64> = text
        .lines()
        .map(|line| {
            serde_json::from_str::<Reply>(line)
                .expect("parseable reply")
                .request_id
        })
        .collect();
    ids.sort_unstable();
    let expected: Vec<u64> = (1..=total as u64).collect();
    assert_eq!(ids, expected, "unique, complete correlation ids");
}

/// Without supervision a dead shard stays dead — but dies *typed*: the
/// panic is isolated, later submissions get `Unavailable` replies instead
/// of crashing the dispatcher, and shutdown reports a [`ShardFailure`]
/// instead of re-panicking on join.
#[test]
fn unsupervised_worker_death_is_typed_not_contagious() {
    let (runtime, replies) = ShardRuntime::start(RuntimeConfig {
        num_shards: 1,
        mailbox_capacity: 8,
        overload: OverloadPolicy::Reject,
        supervision: SupervisionConfig {
            fault_injection: true, // faults armed, but no restarts
            ..SupervisionConfig::default()
        },
    });
    let mut plan = FaultPlan::new();
    plan.push(0, 2, FaultKind::Kill);
    runtime.submit(RequestEnvelope::new(1, Request::FaultInject { plan }));
    runtime.submit(RequestEnvelope::new(
        2,
        Request::CreateTask {
            task: "doomed".into(),
            labels: LABELS.iter().map(|l| l.to_string()).collect(),
            config: TaskConfig::default(),
        },
    ));
    // Arrival 2 dies before handling; its reply is lost (unsupervised mode
    // keeps no ledger — that is exactly what supervision adds).
    runtime.submit(RequestEnvelope::new(
        3,
        Request::RequestGuidance {
            task: "doomed".into(),
        },
    ));
    // Keep poking the shard while it dies. Early attempts may still be
    // accepted into the mailbox (or rejected `Overloaded` once it fills);
    // once the worker is gone, submissions come back `Rejected` with the
    // typed `WorkerPanicked` reply — counted below, never a panic here.
    for attempt in 0..200u64 {
        if let Dispatch::Rejected { shard } = runtime.submit(RequestEnvelope::new(
            100 + attempt,
            Request::RequestGuidance {
                task: "doomed".into(),
            },
        )) {
            assert_eq!(shard, 0);
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let report = runtime.shutdown();
    assert_eq!(report.failures.len(), 1, "{report:?}");
    assert_eq!(report.failures[0].shard, 0);
    assert!(
        report.failures[0].panic.contains("injected fault: kill"),
        "panic payload surfaces in the typed failure: {:?}",
        report.failures[0]
    );
    let unavailable = replies
        .into_iter()
        .filter(|r| {
            matches!(
                r.result(),
                Err(ServiceError::Unavailable {
                    reason: UnavailableReason::WorkerPanicked,
                    ..
                })
            )
        })
        .count();
    assert!(unavailable >= 1, "typed WorkerPanicked replies expected");
}
