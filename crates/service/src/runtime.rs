//! The sharded service runtime: parallel request dispatch with per-task
//! shard ownership and bounded-mailbox back-pressure.
//!
//! # Architecture
//!
//! ```text
//!                      ┌────────────────────────────────────────────┐
//!   submit(envelope) ──┤ dispatcher (caller thread)                 │
//!                      │  · version check                           │
//!                      │  · RuntimeStats answered from counters     │
//!                      │  · route: shard_for_task(name) % shards    │
//!                      └──────┬──────────────┬──────────────────────┘
//!                   bounded   │              │   bounded
//!                   mailbox   ▼              ▼   mailbox
//!                      ┌────────────┐  ┌────────────┐
//!                      │ shard 0    │  │ shard N-1  │   one thread each,
//!                      │ worker +   │  │ worker +   │   exclusively owns
//!                      │ Validation │  │ Validation │   its tasks
//!                      │  Service   │  │  Service   │
//!                      └──────┬─────┘  └──────┬─────┘
//!                             └───────┬───────┘
//!                                     ▼
//!                            replies (mpsc), out of
//!                            submission order, matched
//!                            by the echoed request_id
//! ```
//!
//! Every task name hashes to exactly one shard ([`shard_for_task`]) and
//! **never migrates**, so each worker mutates its sessions with plain
//! `&mut` calls — no lock is taken anywhere on the request path. The
//! global name→shard registry of the single-threaded service is replaced
//! by this stateless first-seen-equals-forever hash: routing costs one FNV
//! pass over the task name, and the per-shard task maps are private to
//! their worker.
//!
//! # Ordering
//!
//! A shard mailbox is FIFO and a shard has one worker, so **requests for
//! the same task execute in submission order** — the property behind the
//! determinism guarantee: any task's final snapshot under concurrent mixed
//! traffic is bit-identical to a serial replay of that task's own request
//! stream. Requests for *different* tasks may execute — and reply — in any
//! order; clients match replies by the echoed `request_id`.
//!
//! # Back-pressure
//!
//! Mailboxes are bounded. When the target shard's mailbox is full,
//! [`ShardRuntime::submit`] either fails the request with
//! [`ServiceError::Overloaded`] (telling the client to retry — the
//! [`OverloadPolicy::Reject`] default) or blocks the submitting thread
//! until a slot frees ([`OverloadPolicy::Block`], what the lossless
//! JSON-lines driver uses). Memory stays bounded either way; a saturated
//! shard never takes the process down with it.

use crate::protocol::{
    Reply, RequestEnvelope, Response, ServiceError, ShardStats, PROTOCOL_VERSION,
};
use crate::shard::{spawn_shard, ShardHandle, ShardJob};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};

/// Maps a task name to its owning shard: 64-bit FNV-1a over the name's
/// bytes, reduced mod `num_shards`. Stable across runs and builds — a
/// restart routes every task to the same shard.
pub fn shard_for_task(task: &str, num_shards: usize) -> usize {
    debug_assert!(num_shards > 0);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in task.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % num_shards as u64) as usize
}

/// What to do when the target shard's mailbox is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Fail fast: the request is not accepted and the client receives
    /// [`ServiceError::Overloaded`] as its reply — the retry signal of a
    /// service boundary.
    #[default]
    Reject,
    /// Block the submitting thread until the mailbox has room. Lossless;
    /// back-pressure propagates to the ingest source by stalling it (what
    /// `crowdval-serve` uses so a scripted conversation never drops lines).
    Block,
}

/// Configuration of a [`ShardRuntime`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Worker/shard count. Tasks hash across shards; speedup needs
    /// multiple cores, correctness does not.
    pub num_shards: usize,
    /// Bounded mailbox capacity per shard.
    pub mailbox_capacity: usize,
    /// Full-mailbox behavior.
    pub overload: OverloadPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            num_shards: 4,
            mailbox_capacity: 1024,
            overload: OverloadPolicy::Reject,
        }
    }
}

/// How [`ShardRuntime::submit`] disposed of an envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Accepted into a shard mailbox; the reply will arrive on the reply
    /// channel.
    Enqueued { shard: usize },
    /// Answered by the dispatcher itself (version error, `RuntimeStats`);
    /// the reply is already on the reply channel.
    Answered,
    /// Rejected by back-pressure ([`OverloadPolicy::Reject`]); the
    /// [`ServiceError::Overloaded`] reply is already on the reply channel.
    Rejected { shard: usize },
}

/// Keeps a shard worker parked until dropped (see
/// [`ShardRuntime::hold_shard`]). Requests submitted to the held shard
/// queue up behind the gate and execute, in order, after release.
pub struct HoldGuard {
    _gate: SyncSender<()>,
}

/// The sharded, multi-threaded front door: dispatches requests across
/// shard workers that exclusively own their tasks.
///
/// Construction returns the runtime plus the reply receiver; replies carry
/// the echoed `request_id` and arrive in completion order, not submission
/// order. [`ShardRuntime::shutdown`] drains every mailbox — each accepted
/// request is processed and its reply flushed — before the receiver
/// disconnects.
///
/// ```
/// use crowdval_service::runtime::{RuntimeConfig, ShardRuntime};
/// use crowdval_service::{Request, RequestEnvelope, TaskConfig};
///
/// let (runtime, replies) = ShardRuntime::start(RuntimeConfig::default());
/// runtime.submit(RequestEnvelope::new(1, Request::CreateTask {
///     task: "moderation".into(),
///     labels: vec!["ok".into(), "spam".into()],
///     config: TaskConfig::default(),
/// }));
/// runtime.shutdown();
/// let reply = replies.recv().unwrap();
/// assert_eq!(reply.request_id, 1);
/// assert!(reply.result().is_ok());
/// ```
pub struct ShardRuntime {
    shards: Vec<ShardHandle>,
    reply_tx: Sender<Reply>,
    config: RuntimeConfig,
}

impl ShardRuntime {
    /// Spawns the shard workers and returns the runtime plus the reply
    /// channel. `num_shards` and `mailbox_capacity` are clamped to ≥ 1.
    pub fn start(config: RuntimeConfig) -> (Self, Receiver<Reply>) {
        let config = RuntimeConfig {
            num_shards: config.num_shards.max(1),
            mailbox_capacity: config.mailbox_capacity.max(1),
            ..config
        };
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        let shards = (0..config.num_shards)
            .map(|shard| spawn_shard(shard, config.mailbox_capacity, reply_tx.clone()))
            .collect();
        (
            Self {
                shards,
                reply_tx,
                config,
            },
            reply_rx,
        )
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The configuration the runtime runs.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// A clone of the reply-channel sender, for callers that inject their
    /// own replies into the same stream (the serve driver does this for
    /// lines that fail to parse).
    pub fn reply_sender(&self) -> Sender<Reply> {
        self.reply_tx.clone()
    }

    /// Dispatches one envelope. Protocol-version failures and
    /// [`crate::Request::RuntimeStats`] are answered by the dispatcher
    /// itself (they must stay answerable while shards are saturated);
    /// everything else is routed to the shard owning the task.
    ///
    /// Requests submitted from one thread execute in submission order per
    /// task; see the module docs for the ordering and back-pressure
    /// contracts.
    pub fn submit(&self, envelope: RequestEnvelope) -> Dispatch {
        let request_id = envelope.request_id;
        if envelope.version != PROTOCOL_VERSION {
            self.answer(Reply::err(
                request_id,
                ServiceError::UnsupportedVersion {
                    requested: envelope.version,
                    supported: PROTOCOL_VERSION,
                },
            ));
            return Dispatch::Answered;
        }
        let Some(task) = envelope.request.task_name() else {
            // RuntimeStats: read the shared counters, no mailbox involved.
            self.answer(Reply::ok(
                request_id,
                Response::RuntimeStats {
                    shards: self.stats(),
                },
            ));
            return Dispatch::Answered;
        };
        let shard = shard_for_task(task, self.shards.len());
        let task = task.to_string();
        let handle = &self.shards[shard];
        // Count the slot before sending: the worker decrements after
        // processing, so depth can transiently read one high, never low.
        handle.counters.queue_depth.fetch_add(1, Ordering::Relaxed);
        let job = ShardJob::Request(Box::new(envelope));
        match self.config.overload {
            OverloadPolicy::Block => {
                handle
                    .mailbox
                    .send(job)
                    .expect("shard worker alive while runtime exists");
                Dispatch::Enqueued { shard }
            }
            OverloadPolicy::Reject => match handle.mailbox.try_send(job) {
                Ok(()) => Dispatch::Enqueued { shard },
                Err(TrySendError::Full(_)) => {
                    handle.counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    handle.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    self.answer(Reply::err(
                        request_id,
                        ServiceError::Overloaded {
                            task,
                            shard,
                            capacity: self.config.mailbox_capacity,
                        },
                    ));
                    Dispatch::Rejected { shard }
                }
                Err(TrySendError::Disconnected(_)) => {
                    unreachable!("shard worker alive while runtime exists")
                }
            },
        }
    }

    /// The per-shard counters, lock-free (values may lag in-flight work by
    /// a few relaxed stores).
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.counters.stats(i, self.config.mailbox_capacity))
            .collect()
    }

    /// Parks a shard's worker until the returned guard is dropped. The
    /// hold itself occupies one mailbox slot; requests submitted behind it
    /// queue up (or trip back-pressure once the mailbox fills) and execute
    /// in order after release. Built for deterministic back-pressure tests
    /// and maintenance drills.
    ///
    /// Fails with [`ServiceError::Overloaded`] when the mailbox is already
    /// full — a held shard cannot be held twice deeper.
    pub fn hold_shard(&self, shard: usize) -> Result<HoldGuard, ServiceError> {
        let (gate, parked) = std::sync::mpsc::sync_channel(1);
        match self.shards[shard].mailbox.try_send(ShardJob::Hold(parked)) {
            Ok(()) => Ok(HoldGuard { _gate: gate }),
            Err(_) => Err(ServiceError::Overloaded {
                task: String::new(),
                shard,
                capacity: self.config.mailbox_capacity,
            }),
        }
    }

    /// Graceful shutdown: closes every mailbox, waits for each worker to
    /// drain its queued requests and flush their replies, then disconnects
    /// the reply channel. Every request that was accepted (`Enqueued`) is
    /// guaranteed a reply on the receiver before it reports disconnect —
    /// nothing accepted is ever silently dropped.
    pub fn shutdown(self) {
        let Self {
            shards, reply_tx, ..
        } = self;
        // Closing the mailboxes first lets all workers drain in parallel.
        let workers: Vec<_> = shards
            .into_iter()
            .map(|s| {
                drop(s.mailbox);
                s.worker
            })
            .collect();
        for worker in workers {
            worker.join().expect("shard worker panicked");
        }
        // All worker-held senders are gone; dropping ours disconnects the
        // receiver once the already-sent replies are consumed.
        drop(reply_tx);
    }

    fn answer(&self, reply: Reply) {
        // The receiver half may already be gone during teardown; dropping
        // the reply then is correct (nobody is listening).
        let _ = self.reply_tx.send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_to_shard_hashing_is_stable_and_total() {
        // Pinned values: the registry must route identically across runs
        // and builds, or restored deployments would scatter tasks.
        assert_eq!(
            shard_for_task("sentiment", 4),
            shard_for_task("sentiment", 4)
        );
        for shards in 1..=8 {
            for name in ["a", "b", "task-17", "", "日本語"] {
                assert!(shard_for_task(name, shards) < shards);
            }
        }
        assert_eq!(shard_for_task("anything", 1), 0);
    }

    #[test]
    fn hashing_spreads_tasks_across_shards() {
        let mut hits = [0usize; 4];
        for i in 0..1000 {
            hits[shard_for_task(&format!("task-{i}"), 4)] += 1;
        }
        for (shard, &count) in hits.iter().enumerate() {
            assert!(
                (150..=350).contains(&count),
                "shard {shard} owns {count} of 1000 tasks — hash is skewed"
            );
        }
    }
}
