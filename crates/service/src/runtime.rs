//! The sharded service runtime: parallel request dispatch with per-task
//! shard ownership, bounded-mailbox back-pressure and supervised crash
//! recovery.
//!
//! # Architecture
//!
//! ```text
//!                      ┌────────────────────────────────────────────┐
//!   submit(envelope) ──┤ dispatcher (caller thread)                 │
//!                      │  · version check                           │
//!                      │  · RuntimeStats/Health from counters       │
//!                      │  · route: shard_for_task(name) % shards    │
//!                      │  · supervised: restart dead shard, shed,   │
//!                      │    deadline + exponential back-off         │
//!                      └──────┬──────────────┬──────────────────────┘
//!                   bounded   │              │   bounded
//!                   mailbox   ▼              ▼   mailbox
//!                      ┌────────────┐  ┌────────────┐
//!                      │ shard 0    │  │ shard N-1  │   one thread each,
//!                      │ worker +   │  │ worker +   │   exclusively owns
//!                      │ Validation │  │ Validation │   its tasks
//!                      │  Service   │  │  Service   │
//!                      └──────┬─────┘  └──────┬─────┘
//!                             └───────┬───────┘
//!                                     ▼
//!                            replies (mpsc), out of
//!                            submission order, matched
//!                            by the echoed request_id
//! ```
//!
//! Every task name hashes to exactly one shard ([`shard_for_task`]) and
//! **never migrates**, so each worker mutates its sessions with plain
//! `&mut` calls — no lock is taken anywhere on the request path. The
//! global name→shard registry of the single-threaded service is replaced
//! by this stateless first-seen-equals-forever hash: routing costs one FNV
//! pass over the task name, and the per-shard task maps are private to
//! their worker.
//!
//! # Ordering
//!
//! A shard mailbox is FIFO and a shard has one worker, so **requests for
//! the same task execute in submission order** — the property behind the
//! determinism guarantee: any task's final snapshot under concurrent mixed
//! traffic is bit-identical to a serial replay of that task's own request
//! stream. Requests for *different* tasks may execute — and reply — in any
//! order; clients match replies by the echoed `request_id`.
//!
//! # Back-pressure
//!
//! Mailboxes are bounded. When the target shard's mailbox is full,
//! [`ShardRuntime::submit`] either fails the request with
//! [`ServiceError::Overloaded`] (telling the client to retry after the
//! embedded `retry_after_ms` hint — the [`OverloadPolicy::Reject`]
//! default) or blocks the submitting thread until a slot frees
//! ([`OverloadPolicy::Block`], what the lossless JSON-lines driver uses).
//! Memory stays bounded either way; a saturated shard never takes the
//! process down with it.
//!
//! # Supervision
//!
//! Worker panics are **isolated unconditionally**: a panicking worker
//! records its payload and dies cleanly, and [`ShardRuntime::shutdown`]
//! reports typed [`ShardFailure`]s instead of re-panicking on `join`.
//! With [`SupervisionConfig::enabled`] the runtime additionally
//! self-heals: each shard keeps per-task crash checkpoints (a
//! side-effect-free anchor snapshot plus the log of acknowledged
//! mutations), a dead shard is detected on its next dispatch and restarted
//! with its tasks rebuilt to exactly the acknowledged prefix, accepted
//! requests that lost their reply in the crash are flushed as typed
//! `Unavailable { reason: RequestLost }` replies, correctness-critical
//! requests ride out full mailboxes with bounded exponential back-off
//! under a deadline, and sheddable reads are refused early once a queue
//! crosses the shed watermark. The deterministic fault-injection hooks
//! behind [`SupervisionConfig::fault_injection`] (see [`crate::fault`])
//! drive all of this in tests and the chaos bench.

use crate::fault::FaultRegistry;
use crate::protocol::{
    Reply, Request, RequestEnvelope, Response, ServiceError, ShardHealth, ShardStats,
    UnavailableReason, PROTOCOL_VERSION,
};
use crate::service::ValidationService;
use crate::shard::{spawn_shard, ShardHandle, ShardJob, ShardShared};
use crate::supervisor::{rebuild_service, ShardFailure, ShutdownReport, SupervisionConfig};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Maps a task name to its owning shard: 64-bit FNV-1a over the name's
/// bytes, reduced mod `num_shards`. Stable across runs and builds — a
/// restart routes every task to the same shard.
pub fn shard_for_task(task: &str, num_shards: usize) -> usize {
    debug_assert!(num_shards > 0);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in task.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % num_shards as u64) as usize
}

/// What to do when the target shard's mailbox is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Fail fast: the request is not accepted and the client receives
    /// [`ServiceError::Overloaded`] as its reply — the retry signal of a
    /// service boundary.
    #[default]
    Reject,
    /// Block the submitting thread until the mailbox has room. Lossless;
    /// back-pressure propagates to the ingest source by stalling it (what
    /// `crowdval-serve` uses so a scripted conversation never drops lines).
    /// Under supervision, blocking is bounded by the dispatch deadline.
    Block,
}

/// Configuration of a [`ShardRuntime`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Worker/shard count. Tasks hash across shards; speedup needs
    /// multiple cores, correctness does not.
    pub num_shards: usize,
    /// Bounded mailbox capacity per shard.
    pub mailbox_capacity: usize,
    /// Full-mailbox behavior.
    pub overload: OverloadPolicy,
    /// Crash recovery, deadlines and shedding; off by default so the
    /// unsupervised dispatch hot path is byte-for-byte the old one.
    pub supervision: SupervisionConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            num_shards: 4,
            mailbox_capacity: 1024,
            overload: OverloadPolicy::Reject,
            supervision: SupervisionConfig::default(),
        }
    }
}

/// How [`ShardRuntime::submit`] disposed of an envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Accepted into a shard mailbox; the reply will arrive on the reply
    /// channel.
    Enqueued { shard: usize },
    /// Answered by the dispatcher itself (version error, `RuntimeStats`,
    /// `Health`, `FaultInject`); the reply is already on the reply channel.
    Answered,
    /// Rejected by back-pressure or a dead shard; the typed error reply
    /// ([`ServiceError::Overloaded`] or [`ServiceError::Unavailable`]) is
    /// already on the reply channel.
    Rejected { shard: usize },
    /// Refused by the shed policy (sheddable request, queue past the
    /// watermark); the `Unavailable { reason: Shed }` reply is already on
    /// the reply channel.
    Shed { shard: usize },
}

/// Keeps a shard worker parked until dropped (see
/// [`ShardRuntime::hold_shard`]). Requests submitted to the held shard
/// queue up behind the gate and execute, in order, after release.
pub struct HoldGuard {
    _gate: SyncSender<()>,
}

/// The sharded, multi-threaded front door: dispatches requests across
/// shard workers that exclusively own their tasks.
///
/// Construction returns the runtime plus the reply receiver; replies carry
/// the echoed `request_id` and arrive in completion order, not submission
/// order. [`ShardRuntime::shutdown`] drains every mailbox — each accepted
/// request is processed and its reply flushed (or, if its worker crashed,
/// flushed as a typed `Unavailable` error) — before the receiver
/// disconnects.
///
/// ```
/// use crowdval_service::runtime::{RuntimeConfig, ShardRuntime};
/// use crowdval_service::{Request, RequestEnvelope, TaskConfig};
///
/// let (runtime, replies) = ShardRuntime::start(RuntimeConfig::default());
/// runtime.submit(RequestEnvelope::new(1, Request::CreateTask {
///     task: "moderation".into(),
///     labels: vec!["ok".into(), "spam".into()],
///     config: TaskConfig::default(),
/// }));
/// let report = runtime.shutdown();
/// assert!(report.is_clean());
/// let reply = replies.recv().unwrap();
/// assert_eq!(reply.request_id, 1);
/// assert!(reply.result().is_ok());
/// ```
pub struct ShardRuntime {
    /// One slot per shard. The mutex serializes dispatch with restart: a
    /// shard's handle is only swapped while no send to it is in flight.
    /// Uncontended in the common single-dispatcher setup.
    slots: Vec<Mutex<ShardHandle>>,
    /// The dispatcher-owned state each worker is wired to (counters,
    /// checkpoints, ledger, panic slot) — survives worker restarts.
    shared: Vec<ShardShared>,
    faults: Arc<FaultRegistry>,
    reply_tx: Sender<Reply>,
    config: RuntimeConfig,
}

impl ShardRuntime {
    /// Spawns the shard workers and returns the runtime plus the reply
    /// channel. `num_shards` and `mailbox_capacity` are clamped to ≥ 1.
    pub fn start(config: RuntimeConfig) -> (Self, Receiver<Reply>) {
        let config = RuntimeConfig {
            num_shards: config.num_shards.max(1),
            mailbox_capacity: config.mailbox_capacity.max(1),
            ..config
        };
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        let faults = Arc::new(FaultRegistry::new(config.num_shards));
        let shared: Vec<ShardShared> = (0..config.num_shards)
            .map(|_| ShardShared::new(config.supervision, Arc::clone(&faults)))
            .collect();
        let slots = shared
            .iter()
            .enumerate()
            .map(|(shard, shared)| {
                Mutex::new(spawn_shard(
                    shard,
                    config.mailbox_capacity,
                    reply_tx.clone(),
                    shared.clone(),
                    ValidationService::new(),
                ))
            })
            .collect();
        (
            Self {
                slots,
                shared,
                faults,
                reply_tx,
                config,
            },
            reply_rx,
        )
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.slots.len()
    }

    /// The configuration the runtime runs.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// A clone of the reply-channel sender, for callers that inject their
    /// own replies into the same stream (the serve driver does this for
    /// lines that fail to parse).
    pub fn reply_sender(&self) -> Sender<Reply> {
        self.reply_tx.clone()
    }

    /// Dispatches one envelope. Protocol-version failures,
    /// [`crate::Request::RuntimeStats`], [`crate::Request::Health`] and
    /// [`crate::Request::FaultInject`] are answered by the dispatcher
    /// itself (they must stay answerable while shards are saturated or
    /// down); everything else is routed to the shard owning the task.
    ///
    /// Requests submitted from one thread execute in submission order per
    /// task; see the module docs for the ordering, back-pressure and
    /// supervision contracts.
    pub fn submit(&self, envelope: RequestEnvelope) -> Dispatch {
        let request_id = envelope.request_id;
        if envelope.version != PROTOCOL_VERSION {
            self.answer(Reply::err(
                request_id,
                ServiceError::UnsupportedVersion {
                    requested: envelope.version,
                    supported: PROTOCOL_VERSION,
                },
            ));
            return Dispatch::Answered;
        }
        let Some(task) = envelope.request.task_name() else {
            let reply = match &envelope.request {
                Request::RuntimeStats => Reply::ok(
                    request_id,
                    Response::RuntimeStats {
                        shards: self.stats(),
                    },
                ),
                Request::Health => Reply::ok(
                    request_id,
                    Response::Health {
                        shards: self.health(),
                    },
                ),
                Request::FaultInject { plan } => {
                    if self.config.supervision.fault_injection {
                        let armed = self.faults.arm(plan);
                        Reply::ok(
                            request_id,
                            Response::FaultInjected {
                                armed,
                                pending: self.faults.pending(),
                            },
                        )
                    } else {
                        Reply::err(request_id, ServiceError::FaultInjectionDisabled)
                    }
                }
                other => unreachable!("task-less request {other:?} not handled"),
            };
            self.answer(reply);
            return Dispatch::Answered;
        };
        let shard = shard_for_task(task, self.slots.len());
        let task = task.to_string();
        if self.config.supervision.enabled {
            self.submit_supervised(envelope, shard, task)
        } else {
            self.submit_plain(envelope, shard, task)
        }
    }

    /// The pre-supervision dispatch path, unchanged except that a dead
    /// worker (an isolated panic; unsupervised runtimes do not restart)
    /// produces a typed `Unavailable` reply instead of panicking the
    /// dispatcher.
    fn submit_plain(&self, envelope: RequestEnvelope, shard: usize, task: String) -> Dispatch {
        let request_id = envelope.request_id;
        let shared = &self.shared[shard];
        let slot = self.lock_slot(shard);
        // Count the slot before sending: the worker decrements after
        // processing, so depth can transiently read one high, never low.
        shared.counters.queue_depth.fetch_add(1, Ordering::Relaxed);
        let job = ShardJob::Request(Box::new(envelope));
        match self.config.overload {
            OverloadPolicy::Block => match slot.mailbox.send(job) {
                Ok(()) => Dispatch::Enqueued { shard },
                Err(_) => {
                    shared.counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    self.answer(Reply::err(
                        request_id,
                        ServiceError::Unavailable {
                            task,
                            shard,
                            retry_after_ms: self.retry_after_ms(shard),
                            reason: UnavailableReason::WorkerPanicked,
                        },
                    ));
                    Dispatch::Rejected { shard }
                }
            },
            OverloadPolicy::Reject => match slot.mailbox.try_send(job) {
                Ok(()) => Dispatch::Enqueued { shard },
                Err(TrySendError::Full(_)) => {
                    shared.counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    let retry_after_ms = self.retry_after_ms(shard);
                    self.answer(Reply::err(
                        request_id,
                        ServiceError::Overloaded {
                            task,
                            shard,
                            capacity: self.config.mailbox_capacity,
                            retry_after_ms,
                        },
                    ));
                    Dispatch::Rejected { shard }
                }
                Err(TrySendError::Disconnected(_)) => {
                    shared.counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    self.answer(Reply::err(
                        request_id,
                        ServiceError::Unavailable {
                            task,
                            shard,
                            retry_after_ms: self.retry_after_ms(shard),
                            reason: UnavailableReason::WorkerPanicked,
                        },
                    ));
                    Dispatch::Rejected { shard }
                }
            },
        }
    }

    /// The supervised dispatch path: restart a dead shard before routing,
    /// shed advisory reads past the watermark, and ride out full mailboxes
    /// with bounded exponential back-off under the dispatch deadline.
    fn submit_supervised(&self, envelope: RequestEnvelope, shard: usize, task: String) -> Dispatch {
        let request_id = envelope.request_id;
        let sup = self.config.supervision;
        let shared = &self.shared[shard];
        let mut slot = self.lock_slot(shard);
        if slot.worker.is_finished() {
            self.restart_shard(&mut slot, shard);
        }
        if envelope.request.is_sheddable() {
            let depth = shared.counters.queue_depth.load(Ordering::Relaxed);
            let watermark =
                ((sup.shed_watermark * self.config.mailbox_capacity as f64) as usize).max(1);
            if depth >= watermark {
                shared
                    .counters
                    .shed_requests
                    .fetch_add(1, Ordering::Relaxed);
                self.answer(Reply::err(
                    request_id,
                    ServiceError::Unavailable {
                        task,
                        shard,
                        retry_after_ms: self.retry_after_ms(shard),
                        reason: UnavailableReason::Shed,
                    },
                ));
                return Dispatch::Shed { shard };
            }
        }
        // Accepted from the ledger's point of view: from here on the
        // request either gets its service reply or is flushed as a typed
        // `Unavailable` — never silence.
        shared.ledger.push(request_id, &task);
        shared.counters.queue_depth.fetch_add(1, Ordering::Relaxed);
        let mut job = ShardJob::Request(Box::new(envelope));
        let deadline = Instant::now() + Duration::from_millis(sup.deadline_ms);
        let mut retries = 0u32;
        loop {
            match slot.mailbox.try_send(job) {
                Ok(()) => return Dispatch::Enqueued { shard },
                Err(TrySendError::Full(returned)) => {
                    job = returned;
                    let sheddable = matches!(
                        &job,
                        ShardJob::Request(envelope) if envelope.request.is_sheddable()
                    );
                    let expired = retries >= sup.max_retries || Instant::now() >= deadline;
                    if sheddable || expired {
                        shared.ledger.remove(request_id);
                        shared.counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        let (reason, dispatch) = if sheddable {
                            shared
                                .counters
                                .shed_requests
                                .fetch_add(1, Ordering::Relaxed);
                            (UnavailableReason::Shed, Dispatch::Shed { shard })
                        } else {
                            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                            (
                                UnavailableReason::DeadlineExceeded,
                                Dispatch::Rejected { shard },
                            )
                        };
                        self.answer(Reply::err(
                            request_id,
                            ServiceError::Unavailable {
                                task,
                                shard,
                                retry_after_ms: self.retry_after_ms(shard),
                                reason,
                            },
                        ));
                        return dispatch;
                    }
                    // Exponential back-off: 1, 2, 4, … ms, capped by the
                    // deadline. The worker drains independently of the
                    // slot lock, so waiting here makes room.
                    let backoff = Duration::from_millis(1u64 << retries.min(10));
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    std::thread::sleep(backoff.min(remaining));
                    retries += 1;
                }
                Err(TrySendError::Disconnected(returned)) => {
                    // The worker died after the liveness check (an armed
                    // fault fired, or a real panic). This request was
                    // never accepted by a worker, so pull its ledger entry
                    // out *before* the restart drains the rest — otherwise
                    // the drain would flush it with `RequestLost` and the
                    // resend below would answer it a second time.
                    shared.ledger.remove(request_id);
                    self.restart_shard(&mut slot, shard);
                    if let ShardJob::Request(envelope) = &returned {
                        debug_assert_eq!(envelope.request_id, request_id);
                    }
                    job = returned;
                    shared.ledger.push(request_id, &task);
                    shared.counters.queue_depth.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Restarts a dead shard: reap the worker, flush reply-less requests,
    /// rebuild the service from the checkpoint store, spawn a fresh
    /// worker. Called with the shard's slot locked. Returns `true` (it
    /// currently always succeeds; the return keeps the resend loop above
    /// honest about its one-retry contract).
    fn restart_shard(&self, slot: &mut MutexGuard<'_, ShardHandle>, shard: usize) -> bool {
        let start = Instant::now();
        let shared = &self.shared[shard];
        // Every accepted-but-unanswered request died with the worker (the
        // in-flight one, everything queued behind it, injected reply
        // drops). Flush them with typed errors before anything else so no
        // correlation id is ever left hanging.
        let lost = shared.ledger.drain();
        shared
            .counters
            .requests_lost
            .fetch_add(lost.len() as u64, Ordering::Relaxed);
        for (request_id, task) in lost {
            self.answer(Reply::err(
                request_id,
                ServiceError::Unavailable {
                    task,
                    shard,
                    retry_after_ms: 1,
                    reason: UnavailableReason::RequestLost,
                },
            ));
        }
        shared.counters.queue_depth.store(0, Ordering::Relaxed);
        // Rebuild exactly the acknowledged prefix from the checkpoints.
        let (service, outcome) = rebuild_service(&shared.checkpoints);
        shared
            .counters
            .recovered_objects
            .fetch_add(outcome.recovered_objects, Ordering::Relaxed);
        let replacement = spawn_shard(
            shard,
            self.config.mailbox_capacity,
            self.reply_tx.clone(),
            shared.clone(),
            service,
        );
        let dead = std::mem::replace(&mut **slot, replacement);
        drop(dead.mailbox);
        // The worker isolated its panic and exited cleanly; its payload
        // sits in the panic slot. Joining cannot block (is_finished or
        // disconnected) and cannot panic — but stay defensive.
        if let Err(payload) = dead.worker.join() {
            shared.panic_slot.record(payload.as_ref());
        }
        // The panic is resolved by this restart; consume the payload so
        // shutdown does not re-report it.
        let _ = shared.panic_slot.take();
        shared.counters.restarts.fetch_add(1, Ordering::Relaxed);
        shared.counters.recovery_us.fetch_add(
            start.elapsed().as_micros().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        true
    }

    /// The retry hint for back-pressure replies: queue depth × median
    /// service time, in milliseconds, at least 1 — "roughly how long until
    /// the shard has worked off what is already queued".
    fn retry_after_ms(&self, shard: usize) -> u64 {
        let counters = &self.shared[shard].counters;
        let depth = counters.queue_depth.load(Ordering::Relaxed) as f64;
        let p50_us = counters.latency.quantile_us(0.50);
        ((depth * p50_us / 1000.0).ceil() as u64).max(1)
    }

    /// The per-shard counters, lock-free (values may lag in-flight work by
    /// a few relaxed stores).
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shared
            .iter()
            .enumerate()
            .map(|(i, s)| s.counters.stats(i, self.config.mailbox_capacity))
            .collect()
    }

    /// Per-shard liveness and recovery telemetry — the payload of
    /// [`crate::Request::Health`]. Briefly locks each slot to read worker
    /// liveness; never touches a mailbox, so it answers while shards are
    /// saturated or down.
    ///
    /// Under supervision a health probe actively **heals**: a dead shard
    /// found here is restarted on the spot (reply-less requests flushed,
    /// state rebuilt from checkpoints), not just on the next dispatch to
    /// it — the probe doubles as the supervisor's heartbeat, so a shard
    /// whose traffic stopped mid-crash still comes back.
    pub fn health(&self) -> Vec<ShardHealth> {
        (0..self.slots.len())
            .map(|shard| {
                let alive = {
                    let mut slot = self.lock_slot(shard);
                    if self.config.supervision.enabled && slot.worker.is_finished() {
                        self.restart_shard(&mut slot, shard);
                    }
                    !slot.worker.is_finished()
                };
                let shared = &self.shared[shard];
                ShardHealth {
                    shard,
                    alive,
                    restarts: shared.counters.restarts.load(Ordering::Relaxed),
                    panics_isolated: shared.counters.panics_isolated.load(Ordering::Relaxed),
                    queue_depth: shared.counters.queue_depth.load(Ordering::Relaxed),
                    checkpointed_tasks: shared.checkpoints.len(),
                    recovery_us: shared.counters.recovery_us.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Parks a shard's worker until the returned guard is dropped. The
    /// hold itself occupies one mailbox slot; requests submitted behind it
    /// queue up (or trip back-pressure once the mailbox fills) and execute
    /// in order after release. Built for deterministic back-pressure tests
    /// and maintenance drills.
    ///
    /// Fails with [`ServiceError::Overloaded`] when the mailbox is already
    /// full — a held shard cannot be held twice deeper.
    pub fn hold_shard(&self, shard: usize) -> Result<HoldGuard, ServiceError> {
        let (gate, parked) = std::sync::mpsc::sync_channel(1);
        match self
            .lock_slot(shard)
            .mailbox
            .try_send(ShardJob::Hold(parked))
        {
            Ok(()) => Ok(HoldGuard { _gate: gate }),
            Err(_) => Err(ServiceError::Overloaded {
                task: String::new(),
                shard,
                capacity: self.config.mailbox_capacity,
                retry_after_ms: self.retry_after_ms(shard),
            }),
        }
    }

    /// Graceful shutdown: closes every mailbox, waits for each worker to
    /// drain its queued requests and flush their replies, then disconnects
    /// the reply channel. Every request that was accepted (`Enqueued`) is
    /// guaranteed a reply on the receiver before it reports disconnect —
    /// if a worker died before replying, the reply is a typed
    /// `Unavailable { reason: RequestLost }` flush (supervised runtimes;
    /// an unsupervised runtime has no ledger to flush from).
    ///
    /// Worker panics surface as typed [`ShardFailure`]s in the returned
    /// [`ShutdownReport`] — shutdown itself never panics.
    pub fn shutdown(self) -> ShutdownReport {
        let Self {
            slots,
            shared,
            reply_tx,
            ..
        } = self;
        let mut report = ShutdownReport::default();
        // Closing the mailboxes first lets all workers drain in parallel.
        let workers: Vec<_> = slots
            .into_iter()
            .map(|slot| {
                let handle = match slot.into_inner() {
                    Ok(handle) => handle,
                    Err(poisoned) => poisoned.into_inner(),
                };
                drop(handle.mailbox);
                handle.worker
            })
            .collect();
        for (shard, worker) in workers.into_iter().enumerate() {
            if let Err(payload) = worker.join() {
                // A panic that escaped the worker's own boundary (it
                // should not — the request loop is wrapped); still a
                // typed report, never a re-panic.
                shared[shard].panic_slot.record(payload.as_ref());
            }
            if let Some(panic) = shared[shard].panic_slot.take() {
                report.failures.push(ShardFailure { shard, panic });
            }
            let lost = shared[shard].ledger.drain();
            shared[shard]
                .counters
                .requests_lost
                .fetch_add(lost.len() as u64, Ordering::Relaxed);
            report.requests_flushed += lost.len();
            for (request_id, task) in lost {
                let _ = reply_tx.send(Reply::err(
                    request_id,
                    ServiceError::Unavailable {
                        task,
                        shard,
                        retry_after_ms: 1,
                        reason: UnavailableReason::RequestLost,
                    },
                ));
            }
        }
        // All worker-held senders are gone; dropping ours disconnects the
        // receiver once the already-sent replies are consumed.
        drop(reply_tx);
        report
    }

    fn lock_slot(&self, shard: usize) -> MutexGuard<'_, ShardHandle> {
        // A poisoned slot lock means a *dispatching* thread panicked while
        // holding it; the handle inside is still structurally sound (swap
        // is a single assignment), so recover the guard.
        match self.slots[shard].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn answer(&self, reply: Reply) {
        // The receiver half may already be gone during teardown; dropping
        // the reply then is correct (nobody is listening).
        let _ = self.reply_tx.send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_to_shard_hashing_is_stable_and_total() {
        // Pinned values: the registry must route identically across runs
        // and builds, or restored deployments would scatter tasks.
        assert_eq!(
            shard_for_task("sentiment", 4),
            shard_for_task("sentiment", 4)
        );
        for shards in 1..=8 {
            for name in ["a", "b", "task-17", "", "日本語"] {
                assert!(shard_for_task(name, shards) < shards);
            }
        }
        assert_eq!(shard_for_task("anything", 1), 0);
    }

    #[test]
    fn hashing_spreads_tasks_across_shards() {
        let mut hits = [0usize; 4];
        for i in 0..1000 {
            hits[shard_for_task(&format!("task-{i}"), 4)] += 1;
        }
        for (shard, &count) in hits.iter().enumerate() {
            assert!(
                (150..=350).contains(&count),
                "shard {shard} owns {count} of 1000 tasks — hash is skewed"
            );
        }
    }
}
