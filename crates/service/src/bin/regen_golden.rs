//! Regenerates the committed service smoke conversation and its golden
//! transcript (`crates/service/tests/data/`). Run after any change that
//! shifts the wire output — protocol shapes, snapshot layout, EM floats:
//!
//! ```text
//! cargo run --release -p crowdval-service --bin crowdval-regen-golden
//! ```
//!
//! The conversation embeds a `TaskSnapshot` inside its `Restore` request
//! (the crash drill restores exactly what the earlier `Snapshot` request
//! returned). That embedded snapshot goes stale whenever the snapshot
//! layout changes, so regeneration is two passes: replay the conversation
//! up to the `Snapshot` request to capture a fresh snapshot, splice it into
//! the `Restore` line, then replay the patched conversation end-to-end and
//! write every reply as the new golden transcript.

use crowdval_service::{
    Reply, ReplyOutcome, Request, RequestEnvelope, Response, ServiceError, ValidationService,
};
use std::path::PathBuf;

/// Extracts the correlation id and task name from a raw `Restore` request
/// line. String-level on purpose: the embedded snapshot is usually stale
/// against the current protocol types (that is the reason this tool
/// exists), so a typed parse of the whole envelope cannot be relied on.
fn restore_task_name(line: &str) -> Option<(u64, String)> {
    let rest = line.strip_prefix(r#"{"version":5,"request_id":"#)?;
    let comma = rest.find(',')?;
    let request_id: u64 = rest[..comma].parse().ok()?;
    let rest = rest[comma..].strip_prefix(r#","request":{"Restore":{"task":""#)?;
    let end = rest.find('"')?;
    Some((request_id, rest[..end].to_string()))
}

fn data_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
}

fn main() {
    let conversation_path = data_dir().join("conversation.jsonl");
    let golden_path = data_dir().join("conversation.golden.jsonl");
    let text = std::fs::read_to_string(&conversation_path).expect("read conversation.jsonl");

    // Pass 1: replay up to (and including) the first Snapshot request to
    // capture a snapshot consistent with the current build.
    let mut service = ValidationService::new();
    let mut fresh_snapshot = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let Ok(envelope) = serde_json::from_str::<RequestEnvelope>(trimmed) else {
            continue; // deliberate junk lines and the stale Restore line
        };
        let is_snapshot = matches!(envelope.request, Request::Snapshot { .. });
        if let ReplyOutcome::Ok(Response::Snapshot { snapshot, .. }) =
            service.reply(&envelope).outcome
        {
            fresh_snapshot = Some(snapshot);
        }
        if is_snapshot {
            break;
        }
    }
    let fresh_snapshot = fresh_snapshot.expect("conversation contains a Snapshot request");

    // Splice the fresh snapshot into the Restore line, preserving the
    // requested task name and everything else verbatim. The embedded old
    // snapshot is exactly what goes stale across layout changes, so the
    // line frequently no longer parses as a typed request — the task name
    // is therefore extracted from the raw JSON prefix instead.
    let mut patched_lines: Vec<String> = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim();
        match restore_task_name(trimmed) {
            Some((request_id, task)) => {
                let envelope = RequestEnvelope::new(
                    request_id,
                    Request::Restore {
                        task,
                        snapshot: fresh_snapshot.clone(),
                    },
                );
                patched_lines.push(serde_json::to_string(&envelope).expect("envelope serializes"));
            }
            None => patched_lines.push(line.to_string()),
        }
    }
    let patched = patched_lines.join("\n") + "\n";

    // Pass 2: full replay of the patched conversation — the golden
    // transcript is every reply, one line per non-comment request line,
    // exactly as `crowdval-serve` would emit it.
    let mut service = ValidationService::new();
    let mut golden = String::new();
    for line in patched.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let reply = match serde_json::from_str::<RequestEnvelope>(trimmed) {
            Ok(envelope) => service.reply(&envelope),
            Err(e) => Reply::err(
                0,
                ServiceError::MalformedRequest {
                    message: e.to_string(),
                },
            ),
        };
        golden.push_str(&serde_json::to_string(&reply).expect("reply serializes"));
        golden.push('\n');
    }

    std::fs::write(&conversation_path, patched).expect("write conversation.jsonl");
    std::fs::write(&golden_path, golden).expect("write conversation.golden.jsonl");
    println!(
        "regenerated {} and {}",
        conversation_path.display(),
        golden_path.display()
    );
}
