//! JSON-lines driver for the validation service.
//!
//! Reads one [`crowdval_service::RequestEnvelope`] per stdin line, writes
//! one [`crowdval_service::Reply`] per stdout line — `{"request_id":…,
//! "outcome":{"Ok":…}}` on success, `…{"Err":…}` on any failure, including
//! lines that do not parse at all. The process never dies on bad input, and
//! on EOF it drains every accepted request and flushes its reply before
//! exiting — nothing accepted is silently dropped.
//!
//! Blank lines and `#`-prefixed comment lines are skipped, so scripted
//! conversations (see `crates/service/tests/data/`) can be annotated.
//!
//! Usage:
//!
//! ```text
//! crowdval-serve [--shards N] [--mailbox CAP] [--reject] \
//!     < conversation.jsonl > transcript.jsonl
//! ```
//!
//! * `--shards N` — dispatch across N shard worker threads (per-task
//!   ownership; replies may be written out of input order and are matched
//!   by the echoed `request_id`). Default 0: serial in-process service,
//!   replies in input order — the deterministic mode the golden-transcript
//!   check relies on.
//! * `--mailbox CAP` — per-shard mailbox bound (default 1024).
//! * `--reject` — reply `Overloaded` when a shard mailbox is full instead
//!   of blocking the reader (the lossless default for piped scripts).
//! * `--supervise` — enable crash recovery: per-task checkpoints, automatic
//!   shard restarts, dispatch deadlines and overload shedding (sharded mode
//!   only).
//! * `--chaos` — `--supervise` plus deterministic fault injection: the
//!   stream may carry `FaultInject` requests arming seeded fault plans (for
//!   chaos drills; never enable in production).

use crowdval_service::serve::{serve, ServeOptions};
use crowdval_service::{OverloadPolicy, SupervisionConfig};
use std::io;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    let options = ServeOptions {
        shards: flag("--shards").unwrap_or(0),
        mailbox_capacity: flag("--mailbox").unwrap_or(1024),
        overload: if args.iter().any(|a| a == "--reject") {
            OverloadPolicy::Reject
        } else {
            OverloadPolicy::Block
        },
        supervision: if args.iter().any(|a| a == "--chaos") {
            SupervisionConfig::chaos()
        } else if args.iter().any(|a| a == "--supervise") {
            SupervisionConfig::enabled()
        } else {
            SupervisionConfig::default()
        },
    };
    let stdin = io::stdin();
    let (_, summary) = serve(stdin.lock(), io::stdout(), &options);
    if options.shards > 0 {
        eprintln!(
            "crowdval-serve: {} requests, {} replies, {} malformed, {} overloaded, {} shed",
            summary.requests, summary.replies, summary.malformed, summary.overloaded, summary.shed
        );
        if summary.shard_failures > 0 || summary.requests_flushed > 0 {
            eprintln!(
                "crowdval-serve: {} shard failures, {} reply-less requests flushed",
                summary.shard_failures, summary.requests_flushed
            );
        }
        if summary.writer_panicked {
            eprintln!("crowdval-serve: writer thread panicked; output truncated");
        }
    }
}
