//! JSON-lines driver for the validation service.
//!
//! Reads one [`RequestEnvelope`] per stdin line, writes one [`Reply`] per
//! stdout line — `{"Ok": …}` on success, `{"Err": …}` on any failure,
//! including lines that do not parse at all. The process never dies on bad
//! input: unparseable lines yield `ServiceError::MalformedRequest`, and the
//! service itself guarantees no request can panic it.
//!
//! Blank lines and `#`-prefixed comment lines are skipped, so scripted
//! conversations (see `crates/service/tests/data/`) can be annotated.
//!
//! Usage:
//!
//! ```text
//! crowdval-serve < conversation.jsonl > transcript.jsonl
//! ```

use crowdval_service::{Reply, RequestEnvelope, ServiceError, ValidationService};
use std::io::{self, BufRead, Write};

fn main() {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let mut service = ValidationService::new();
    // One reply buffer for the whole conversation: each line serializes into
    // the cleared buffer instead of allocating a fresh `String` per reply,
    // so steady-state serving does not churn the allocator per request.
    let mut reply_buf: Vec<u8> = Vec::with_capacity(4096);

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break, // stdin closed or unreadable: clean shutdown
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let reply = match serde_json::from_str::<RequestEnvelope>(trimmed) {
            Ok(envelope) => service.reply(&envelope),
            Err(e) => Reply::Err(ServiceError::MalformedRequest {
                message: e.to_string(),
            }),
        };
        reply_buf.clear();
        match serde_json::to_writer(&mut reply_buf, &reply) {
            Ok(()) => {
                reply_buf.push(b'\n');
                if out.write_all(&reply_buf).is_err() {
                    break; // downstream closed the pipe
                }
            }
            Err(e) => {
                eprintln!("failed to serialize reply: {e}");
            }
        }
    }
}
