//! JSON-lines driver for the validation service.
//!
//! Reads one [`RequestEnvelope`] per stdin line, writes one [`Reply`] per
//! stdout line — `{"Ok": …}` on success, `{"Err": …}` on any failure,
//! including lines that do not parse at all. The process never dies on bad
//! input: unparseable lines yield `ServiceError::MalformedRequest`, and the
//! service itself guarantees no request can panic it.
//!
//! Blank lines and `#`-prefixed comment lines are skipped, so scripted
//! conversations (see `crates/service/tests/data/`) can be annotated.
//!
//! Usage:
//!
//! ```text
//! crowdval-serve < conversation.jsonl > transcript.jsonl
//! ```

use crowdval_service::{Reply, RequestEnvelope, ServiceError, ValidationService};
use std::io::{self, BufRead, Write};

fn main() {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let mut service = ValidationService::new();

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break, // stdin closed or unreadable: clean shutdown
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let reply = match serde_json::from_str::<RequestEnvelope>(trimmed) {
            Ok(envelope) => service.reply(&envelope),
            Err(e) => Reply::Err(ServiceError::MalformedRequest {
                message: e.to_string(),
            }),
        };
        match serde_json::to_string(&reply) {
            Ok(json) => {
                if writeln!(out, "{json}").is_err() {
                    break; // downstream closed the pipe
                }
            }
            Err(e) => {
                eprintln!("failed to serialize reply: {e}");
            }
        }
    }
}
