//! The JSON-lines serve loop behind the `crowdval-serve` binary, factored
//! out so tests can drive it over in-memory buffers — graceful-shutdown
//! draining and the concurrent dispatcher included.
//!
//! Two modes:
//!
//! * **Serial** (`shards == 0`): one in-process [`ValidationService`], one
//!   reply line per request line, in input order. Deterministic — the mode
//!   the golden-transcript check runs.
//! * **Sharded** (`shards ≥ 1`): a [`ShardRuntime`] dispatches requests
//!   concurrently; a writer thread flushes replies as they complete, so
//!   replies to different tasks may be written out of input order and
//!   clients match them by the echoed `request_id`. Per-task order is
//!   still input order.
//!
//! In both modes the loop exits on EOF only after every accepted request
//! has been processed and its reply written: the sharded path closes the
//! mailboxes, joins the workers (each drains its queue first) and then
//! lets the writer thread consume the reply channel to disconnect. No
//! accepted request is ever silently dropped.

use crate::protocol::{Reply, RequestEnvelope, ServiceError};
use crate::runtime::{Dispatch, OverloadPolicy, RuntimeConfig, ShardRuntime};
use crate::service::ValidationService;
use crate::supervisor::SupervisionConfig;
use std::io::{BufRead, Write};
use std::panic::AssertUnwindSafe;

/// Configuration of one serve run.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// 0 = serial in-process service; N ≥ 1 = sharded runtime with N
    /// worker threads.
    pub shards: usize,
    /// Mailbox capacity per shard (sharded mode only).
    pub mailbox_capacity: usize,
    /// Full-mailbox behavior (sharded mode only). The driver defaults to
    /// [`OverloadPolicy::Block`]: a JSON-lines conversation is a lossless
    /// stream, so back-pressure stalls the reader instead of dropping
    /// requests.
    pub overload: OverloadPolicy,
    /// Crash recovery, deadlines and shedding for the sharded runtime
    /// (sharded mode only; the serial path has no workers to supervise).
    pub supervision: SupervisionConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            shards: 0,
            mailbox_capacity: 1024,
            overload: OverloadPolicy::Block,
            supervision: SupervisionConfig::default(),
        }
    }
}

/// What a serve run did, for logging and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines consumed (blank and comment lines excluded).
    pub requests: usize,
    /// Reply lines written. Always equals `requests` unless the output
    /// pipe broke mid-run.
    pub replies: usize,
    /// Lines that failed to parse as a [`RequestEnvelope`] (each still
    /// produced a `MalformedRequest` reply line).
    pub malformed: usize,
    /// Requests rejected by back-pressure (each still produced an
    /// `Overloaded` reply line; only with [`OverloadPolicy::Reject`]).
    pub overloaded: usize,
    /// Requests refused by the shed policy (supervised sharded mode; each
    /// still produced an `Unavailable { reason: Shed }` reply line).
    pub shed: usize,
    /// Shard workers that died with an unresolved panic (typed
    /// [`crate::supervisor::ShardFailure`]s from shutdown, logged to
    /// stderr — never re-panicked).
    pub shard_failures: usize,
    /// Accepted requests whose reply was lost to a worker crash and
    /// flushed as `Unavailable { reason: RequestLost }` at shutdown.
    pub requests_flushed: usize,
    /// The writer thread panicked; the output writer was lost with it and
    /// `serve` returned `None` in its place.
    pub writer_panicked: bool,
}

/// Runs the JSON-lines loop: one [`RequestEnvelope`] per input line, one
/// [`Reply`] per output line. Blank lines and `#`-comments are skipped.
/// Returns the output writer (handed back from the writer thread in
/// sharded mode; `None` only if the writer thread panicked — see
/// [`ServeSummary::writer_panicked`]) and the run summary.
///
/// The writer must be `Send + 'static` because sharded mode moves it into
/// the writer thread; `io::Stdout` and `Vec<u8>` both qualify.
pub fn serve<R: BufRead, W: Write + Send + 'static>(
    input: R,
    output: W,
    options: &ServeOptions,
) -> (Option<W>, ServeSummary) {
    if options.shards == 0 {
        serve_serial(input, output)
    } else {
        serve_sharded(input, output, options)
    }
}

/// One reply serialized into a reused buffer, one line. `false` when the
/// downstream pipe is gone.
fn write_reply<W: Write>(out: &mut W, buf: &mut Vec<u8>, reply: &Reply) -> bool {
    buf.clear();
    match serde_json::to_writer(&mut *buf, reply) {
        Ok(()) => {
            buf.push(b'\n');
            out.write_all(buf).is_ok()
        }
        Err(e) => {
            eprintln!("failed to serialize reply: {e}");
            true
        }
    }
}

fn serve_serial<R: BufRead, W: Write>(input: R, mut output: W) -> (Option<W>, ServeSummary) {
    let mut service = ValidationService::new();
    let mut summary = ServeSummary::default();
    // One reply buffer for the whole conversation: each line serializes
    // into the cleared buffer instead of allocating a fresh `String` per
    // reply, so steady-state serving does not churn the allocator.
    let mut reply_buf: Vec<u8> = Vec::with_capacity(4096);
    for line in input.lines() {
        let Ok(line) = line else {
            break; // input closed or unreadable: clean shutdown
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        summary.requests += 1;
        let reply = match serde_json::from_str::<RequestEnvelope>(trimmed) {
            Ok(envelope) => service.reply(&envelope),
            Err(e) => {
                summary.malformed += 1;
                Reply::err(
                    0,
                    ServiceError::MalformedRequest {
                        message: e.to_string(),
                    },
                )
            }
        };
        if !write_reply(&mut output, &mut reply_buf, &reply) {
            break; // downstream closed the pipe
        }
        summary.replies += 1;
    }
    (Some(output), summary)
}

fn serve_sharded<R: BufRead, W: Write + Send + 'static>(
    input: R,
    output: W,
    options: &ServeOptions,
) -> (Option<W>, ServeSummary) {
    let (runtime, replies) = ShardRuntime::start(RuntimeConfig {
        num_shards: options.shards,
        mailbox_capacity: options.mailbox_capacity,
        overload: options.overload,
        supervision: options.supervision,
    });
    // Malformed-line replies join the same channel the shards answer on:
    // a single writer, a single output path, no interleaving hazards.
    let malformed_tx = runtime.reply_sender();
    let writer = std::thread::Builder::new()
        .name("crowdval-serve-writer".to_string())
        .spawn(move || {
            // The writer lives in an `Option` outside the unwind boundary
            // so the already-written output survives a panic in the write
            // loop (and the caller gets its buffer back even then).
            let mut output_slot = Some(output);
            let mut written = 0usize;
            let mut panicked = false;
            {
                let out = output_slot.as_mut().expect("writer output installed above");
                let mut reply_buf: Vec<u8> = Vec::with_capacity(4096);
                let mut drain = || {
                    for reply in replies.iter() {
                        if !write_reply(out, &mut reply_buf, &reply) {
                            break; // downstream closed; stop writing
                        }
                        written += 1;
                    }
                };
                if std::panic::catch_unwind(AssertUnwindSafe(&mut drain)).is_err() {
                    panicked = true;
                }
            }
            (output_slot, written, panicked)
        })
        .expect("spawn serve writer thread");

    let mut summary = ServeSummary::default();
    for line in input.lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        summary.requests += 1;
        match serde_json::from_str::<RequestEnvelope>(trimmed) {
            Ok(envelope) => match runtime.submit(envelope) {
                Dispatch::Rejected { .. } => summary.overloaded += 1,
                Dispatch::Shed { .. } => summary.shed += 1,
                Dispatch::Enqueued { .. } | Dispatch::Answered => {}
            },
            Err(e) => {
                summary.malformed += 1;
                let _ = malformed_tx.send(Reply::err(
                    0,
                    ServiceError::MalformedRequest {
                        message: e.to_string(),
                    },
                ));
            }
        }
    }
    // EOF: drain every shard mailbox and flush all replies before exit.
    drop(malformed_tx);
    let report = runtime.shutdown();
    summary.shard_failures = report.failures.len();
    summary.requests_flushed = report.requests_flushed;
    for failure in &report.failures {
        eprintln!("crowdval-serve: {failure}");
    }
    // A writer panic costs us the writer, never the process: surface it in
    // the summary as typed data instead of re-panicking the join.
    let (output, written, panicked) = match writer.join() {
        Ok((output, written, panicked)) => (output, written, panicked),
        Err(_) => (None, 0, true),
    };
    summary.replies = written;
    summary.writer_panicked = panicked;
    (output, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conversation() -> String {
        let mut lines = vec![
            "# a comment".to_string(),
            String::new(),
            r#"{"version":5,"request_id":1,"request":{"CreateTask":{"task":"t","labels":["a","b"],"config":{"strategy":"EntropyBaseline","seed":0,"budget":null,"handle_faulty_workers":true,"online_defense":false,"shortlist":null,"wal":false,"triage":false}}}}"#.to_string(),
            r#"{"version":5,"request_id":2,"request":{"SubmitVotes":{"task":"t","votes":[{"worker":"w","object":"o","label":"a"}]}}}"#.to_string(),
            "this is junk".to_string(),
            r#"{"version":5,"request_id":3,"request":"RuntimeStats"}"#.to_string(),
        ];
        lines.push(String::new());
        lines.join("\n")
    }

    #[test]
    fn serial_mode_replies_in_input_order() {
        let (out, summary) = serve(
            conversation().as_bytes(),
            Vec::new(),
            &ServeOptions::default(),
        );
        let text = String::from_utf8(out.expect("serial mode always returns the writer")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(summary.requests, 4);
        assert_eq!(summary.replies, 4);
        assert_eq!(summary.malformed, 1);
        assert!(!summary.writer_panicked);
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"request_id\":1"));
        assert!(lines[1].contains("\"request_id\":2"));
        assert!(lines[2].contains("MalformedRequest"));
        assert!(lines[3].contains("RuntimeStats"));
    }

    #[test]
    fn sharded_mode_answers_every_line_and_drains_on_eof() {
        let (out, summary) = serve(
            conversation().as_bytes(),
            Vec::new(),
            &ServeOptions {
                shards: 2,
                ..ServeOptions::default()
            },
        );
        let text = String::from_utf8(out.expect("no writer panic, writer comes back")).unwrap();
        assert_eq!(summary.requests, 4);
        assert_eq!(summary.replies, 4, "a reply line per request line");
        assert_eq!(summary.malformed, 1);
        assert_eq!(summary.shard_failures, 0);
        assert_eq!(text.lines().count(), 4);
        // Out-of-order is allowed; completeness is not negotiable.
        for id in [1, 2, 3] {
            assert!(
                text.contains(&format!("\"request_id\":{id}")),
                "missing reply for request {id}"
            );
        }
        assert!(text.contains("MalformedRequest"));
    }
}
