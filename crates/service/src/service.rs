//! The multi-tenant validation service: a registry of named tasks, each
//! wrapping one [`ValidationSession`], driven through the versioned command
//! protocol of [`crate::protocol`].
//!
//! Invariants the service maintains:
//!
//! * **No panic is reachable from any request.** Every malformed input —
//!   wrong protocol version, unknown task, unknown label, inconsistent
//!   snapshot — maps to a [`ServiceError`]; the underlying session's
//!   fallible surface (`try_build`, `ingest`, `integrate`, `restore`)
//!   carries the rest.
//! * **External ids are the contract.** Workers, objects and labels are
//!   interned per task in first-seen order; the dense indices the engine
//!   runs on never appear in a request or response. Because interning order
//!   equals ingestion order, a task driven through the service reproduces
//!   the exact selection order and posterior of a directly driven
//!   [`ValidationSession`] fed the same votes.
//! * **Atomic vote batches.** A `SubmitVotes` batch with any unknown label
//!   fails before anything is interned or ingested.

use crate::protocol::WorkerTrustEntry;
use crate::protocol::{
    ClientVote, LabelProbability, Reply, Request, RequestEnvelope, Response, ServiceError,
    ShardHealth, ShardStats, StrategyChoice, TaskConfig, TaskDelta, TaskSnapshot,
    MIN_SNAPSHOT_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::shard::LatencyHistogram;
use crate::supervisor::RecoveryAnchor;
use crowdval_core::{
    EntropyBaseline, HybridStrategy, ProcessConfig, RandomSelection, SelectionStrategy,
    TriageConfig, UncertaintyDriven, ValidationSession, ValidationSessionBuilder, WorkerDriven,
};
use crowdval_model::{IdInterner, LabelId, ObjectId, Vote, WorkerId};
use crowdval_spammer::TrustConfig;
use std::collections::BTreeMap;
use std::time::Instant;

/// One tenant: a validation session plus its three external-id mappings.
struct TaskState {
    objects: IdInterner,
    workers: IdInterner,
    labels: IdInterner,
    session: ValidationSession,
}

impl TaskState {
    /// Maps a dense object index back to its external id. The interner
    /// covers every object the session knows (votes are the only way
    /// objects enter), so the lookup cannot fail for engine-produced ids.
    fn object_name(&self, object: ObjectId) -> String {
        self.objects
            .name(object.index())
            .unwrap_or("<unknown>")
            .to_string()
    }

    /// Maps a dense worker index back to its external id.
    fn worker_name(&self, worker: WorkerId) -> String {
        self.workers
            .name(worker.index())
            .unwrap_or("<unknown>")
            .to_string()
    }

    /// Maps a list of dense worker ids to external ids.
    fn worker_names(&self, workers: &[WorkerId]) -> Vec<String> {
        workers.iter().map(|&w| self.worker_name(w)).collect()
    }
}

/// A registry of named validation tasks behind the versioned protocol.
///
/// ```
/// use crowdval_service::{Request, RequestEnvelope, Response, TaskConfig, ValidationService};
///
/// let mut service = ValidationService::new();
/// let reply = service.handle(&RequestEnvelope::latest(Request::CreateTask {
///     task: "moderation".into(),
///     labels: vec!["ok".into(), "spam".into()],
///     config: TaskConfig::default(),
/// }));
/// assert!(matches!(reply, Ok(Response::TaskCreated { .. })));
/// ```
#[derive(Default)]
pub struct ValidationService {
    tasks: BTreeMap<String, TaskState>,
    /// Requests finished through [`ValidationService::handle`] (typed
    /// errors included; direct `handle_request` calls are not counted).
    served: u64,
    /// Votes accepted across all `SubmitVotes` batches.
    votes_ingested: u64,
    /// Workers tombstoned by the online defense across all tasks.
    workers_excluded: u64,
    /// Workers reinstated by the online defense across all tasks.
    workers_reinstated: u64,
    /// Service-time histogram over [`ValidationService::handle`] calls —
    /// the single-threaded answer to [`Request::RuntimeStats`]. The sharded
    /// runtime keeps its own per-shard counters instead.
    latency: LatencyHistogram,
}

impl ValidationService {
    /// An empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Names of the live tasks, sorted.
    pub fn task_names(&self) -> Vec<String> {
        self.tasks.keys().cloned().collect()
    }

    /// Handles one enveloped request, checking the protocol version first.
    pub fn handle(&mut self, envelope: &RequestEnvelope) -> Result<Response, ServiceError> {
        let start = Instant::now();
        let result = if envelope.version != PROTOCOL_VERSION {
            Err(ServiceError::UnsupportedVersion {
                requested: envelope.version,
                supported: PROTOCOL_VERSION,
            })
        } else {
            self.handle_request(&envelope.request)
        };
        self.latency.record(start.elapsed());
        self.served += 1;
        result
    }

    /// Convenience wrapper turning the result into a serializable
    /// [`Reply`] echoing the envelope's correlation id — what the
    /// JSON-lines driver writes per input line.
    pub fn reply(&mut self, envelope: &RequestEnvelope) -> Reply {
        match self.handle(envelope) {
            Ok(response) => Reply::ok(envelope.request_id, response),
            Err(error) => Reply::err(envelope.request_id, error),
        }
    }

    /// Handles one request (version already checked).
    pub fn handle_request(&mut self, request: &Request) -> Result<Response, ServiceError> {
        match request {
            Request::CreateTask {
                task,
                labels,
                config,
            } => self.create_task(task, labels, *config),
            Request::SubmitVotes { task, votes } => self.submit_votes(task, votes),
            Request::RequestGuidance { task } => self.request_guidance(task),
            Request::SubmitValidation {
                task,
                object,
                label,
            } => self.submit_validation(task, object, label),
            Request::QueryPosterior { task, object } => self.query_posterior(task, object),
            Request::QueryWorkerTrust { task } => self.query_worker_trust(task),
            Request::TriageStats { task } => self.triage_stats(task),
            Request::Snapshot { task } => self.snapshot(task),
            Request::Restore { task, snapshot } => self.restore(task, snapshot),
            Request::SnapshotDelta { task } => self.snapshot_delta(task),
            Request::RestoreDelta {
                task,
                snapshot,
                delta,
            } => self.restore_delta(task, snapshot, delta),
            Request::CloseTask { task } => self.close_task(task),
            Request::RuntimeStats => Ok(Response::RuntimeStats {
                shards: vec![self.self_stats()],
            }),
            Request::Health => Ok(Response::Health {
                shards: vec![ShardHealth {
                    shard: 0,
                    alive: true,
                    restarts: 0,
                    panics_isolated: 0,
                    queue_depth: 0,
                    checkpointed_tasks: 0,
                    recovery_us: 0,
                }],
            }),
            // A serial in-process service has no supervisor and no fault
            // registry; refusing (rather than silently accepting) keeps
            // chaos plans from being armed where they can never fire.
            Request::FaultInject { .. } => Err(ServiceError::FaultInjectionDisabled),
        }
    }

    /// This service described as a single shard with no mailbox — the
    /// single-threaded answer to [`Request::RuntimeStats`]. (Under the
    /// sharded runtime the dispatcher answers from the real per-shard
    /// counters instead; a shard-owned service never sees the request.)
    fn self_stats(&self) -> ShardStats {
        ShardStats {
            shard: 0,
            tasks: self.tasks.len(),
            queue_depth: 0,
            mailbox_capacity: 0,
            requests_served: self.served,
            votes_ingested: self.votes_ingested,
            overload_rejections: 0,
            workers_excluded: self.workers_excluded,
            workers_reinstated: self.workers_reinstated,
            objects_auto_finalized: self.triage_totals().0,
            objects_escalated: self.triage_totals().1,
            memory_bytes: self.memory_bytes(),
            service_time_p50_us: self.latency.quantile_us(0.50),
            service_time_p99_us: self.latency.quantile_us(0.99),
            restarts: 0,
            panics_isolated: 0,
            recovered_objects: 0,
            shed_requests: 0,
            requests_lost: 0,
        }
    }

    /// Measured heap bytes of the answer storage across all live tasks —
    /// the [`ShardStats::memory_bytes`] gauge.
    pub fn memory_bytes(&self) -> u64 {
        self.tasks
            .values()
            .map(|state| state.session.memory_bytes() as u64)
            .sum()
    }

    /// Triage totals across all live tasks, `(auto_finalized, escalated)` —
    /// the [`ShardStats::objects_auto_finalized`] /
    /// [`ShardStats::objects_escalated`] gauges.
    pub fn triage_totals(&self) -> (u64, u64) {
        self.tasks.values().fold((0, 0), |(f, e), state| {
            let c = state.session.triage_counters();
            (f + c.auto_finalized, e + c.escalated)
        })
    }

    fn task_mut(&mut self, task: &str) -> Result<&mut TaskState, ServiceError> {
        self.tasks
            .get_mut(task)
            .ok_or_else(|| ServiceError::TaskNotFound {
                task: task.to_string(),
            })
    }

    fn create_task(
        &mut self,
        task: &str,
        labels: &[String],
        config: TaskConfig,
    ) -> Result<Response, ServiceError> {
        if task.is_empty() {
            return Err(ServiceError::InvalidTask {
                message: "task name must not be empty".to_string(),
            });
        }
        if self.tasks.contains_key(task) {
            return Err(ServiceError::TaskExists {
                task: task.to_string(),
            });
        }
        if labels.is_empty() {
            return Err(ServiceError::InvalidTask {
                message: "a task needs at least one label".to_string(),
            });
        }
        let label_interner =
            IdInterner::from_names(labels.to_vec()).map_err(|e| ServiceError::InvalidTask {
                message: e.to_string(),
            })?;
        let mut session = ValidationSessionBuilder::empty(labels.len())
            .strategy(build_strategy(config))
            .config(ProcessConfig {
                budget: config.budget,
                handle_faulty_workers: config.handle_faulty_workers,
                trust: if config.online_defense {
                    TrustConfig::streaming_default()
                } else {
                    TrustConfig::default()
                },
                triage: if config.triage {
                    TriageConfig::calibrated()
                } else {
                    TriageConfig::default()
                },
                ..ProcessConfig::default()
            })
            .try_build()?;
        if config.wal {
            session.enable_delta_log();
        }
        self.tasks.insert(
            task.to_string(),
            TaskState {
                objects: IdInterner::new(),
                workers: IdInterner::new(),
                labels: label_interner,
                session,
            },
        );
        Ok(Response::TaskCreated {
            task: task.to_string(),
            num_labels: labels.len(),
        })
    }

    fn submit_votes(&mut self, task: &str, votes: &[ClientVote]) -> Result<Response, ServiceError> {
        let task_name = task.to_string();
        let state = self.task_mut(task)?;
        // Resolve every label before interning anything: a batch with an
        // unknown label must leave the task untouched.
        let mut resolved_labels = Vec::with_capacity(votes.len());
        for vote in votes {
            let label =
                state
                    .labels
                    .get(&vote.label)
                    .ok_or_else(|| ServiceError::UnknownLabel {
                        task: task_name.clone(),
                        label: vote.label.clone(),
                    })?;
            resolved_labels.push(label);
        }
        // From here on nothing can fail: labels are in range by
        // construction and interning only appends. Reserve the interners
        // for the worst case (every vote naming a fresh id) so the loop
        // never rehashes mid-batch.
        state.objects.reserve(votes.len());
        state.workers.reserve(votes.len());
        let dense: Vec<Vote> = votes
            .iter()
            .zip(resolved_labels)
            .map(|(vote, label)| {
                Vote::new(
                    ObjectId(state.objects.intern(&vote.object)),
                    WorkerId(state.workers.intern(&vote.worker)),
                    LabelId(label),
                )
            })
            .collect();
        let update = state.session.ingest(&dense)?;
        let workers_excluded = state.worker_names(&update.workers_excluded);
        let workers_reinstated = state.worker_names(&update.workers_reinstated);
        self.votes_ingested += update.votes_ingested as u64;
        self.workers_excluded += workers_excluded.len() as u64;
        self.workers_reinstated += workers_reinstated.len() as u64;
        Ok(Response::VotesAccepted {
            task: task_name,
            votes: update.votes_ingested,
            new_objects: update.new_objects,
            new_workers: update.new_workers,
            em_iterations: update.em_iterations,
            uncertainty: update.uncertainty,
            workers_excluded,
            workers_reinstated,
        })
    }

    fn request_guidance(&mut self, task: &str) -> Result<Response, ServiceError> {
        let task_name = task.to_string();
        let state = self.task_mut(task)?;
        let object = state.session.select_next().map(|o| state.object_name(o));
        Ok(Response::Guidance {
            task: task_name,
            object,
        })
    }

    fn submit_validation(
        &mut self,
        task: &str,
        object: &str,
        label: &str,
    ) -> Result<Response, ServiceError> {
        let task_name = task.to_string();
        let state = self.task_mut(task)?;
        let object_idx = state
            .objects
            .get(object)
            .ok_or_else(|| ServiceError::UnknownObject {
                task: task_name.clone(),
                object: object.to_string(),
            })?;
        let label_idx = state
            .labels
            .get(label)
            .ok_or_else(|| ServiceError::UnknownLabel {
                task: task_name.clone(),
                label: label.to_string(),
            })?;
        // Tombstone flips are surfaced by diffing the exclusion set around
        // the call — `integrate`'s return value carries only the flagged
        // objects.
        let excluded_before = state.session.excluded_workers();
        let flagged = state
            .session
            .integrate(ObjectId(object_idx), LabelId(label_idx))?;
        let excluded_after = state.session.excluded_workers();
        let workers_excluded: Vec<String> = excluded_after
            .iter()
            .filter(|w| excluded_before.binary_search(w).is_err())
            .map(|&w| state.worker_name(w))
            .collect();
        let workers_reinstated: Vec<String> = excluded_before
            .iter()
            .filter(|w| excluded_after.binary_search(w).is_err())
            .map(|&w| state.worker_name(w))
            .collect();
        let flagged = flagged.into_iter().map(|o| state.object_name(o)).collect();
        let uncertainty = state.session.uncertainty();
        let validations = state.session.iterations();
        self.workers_excluded += workers_excluded.len() as u64;
        self.workers_reinstated += workers_reinstated.len() as u64;
        Ok(Response::ValidationAccepted {
            task: task_name,
            object: object.to_string(),
            flagged,
            uncertainty,
            validations,
            workers_excluded,
            workers_reinstated,
        })
    }

    fn query_worker_trust(&mut self, task: &str) -> Result<Response, ServiceError> {
        let task_name = task.to_string();
        let state = self.task_mut(task)?;
        let mut workers: Vec<WorkerTrustEntry> = state
            .session
            .worker_trust_reports()
            .into_iter()
            .map(|r| WorkerTrustEntry {
                worker: state.worker_name(r.worker),
                votes: r.votes,
                validations: r.validations,
                suspicion: r.suspicion,
                excluded: r.excluded,
                em_flagged: r.em_flagged,
            })
            .collect();
        workers.sort_by(|a, b| {
            b.suspicion
                .total_cmp(&a.suspicion)
                .then_with(|| a.worker.cmp(&b.worker))
        });
        let telemetry = state.session.defense_telemetry();
        Ok(Response::WorkerTrust {
            task: task_name,
            workers,
            batches_observed: telemetry.batches_observed,
            low_kappa_batches: telemetry.low_kappa_batches,
            exclusions: telemetry.exclusions,
            reinstatements: telemetry.reinstatements,
        })
    }

    fn triage_stats(&mut self, task: &str) -> Result<Response, ServiceError> {
        let task_name = task.to_string();
        let state = self.task_mut(task)?;
        let counters = state.session.triage_counters();
        Ok(Response::TriageStats {
            task: task_name,
            enabled: state.session.process_config().triage.enabled,
            scored: counters.scored,
            auto_finalized: counters.auto_finalized,
            contentious: counters.contentious,
            escalated: counters.escalated,
            audit_records: state.session.triage_audit().len(),
        })
    }

    fn query_posterior(&mut self, task: &str, object: &str) -> Result<Response, ServiceError> {
        let task_name = task.to_string();
        let state = self.task_mut(task)?;
        let object_idx = state
            .objects
            .get(object)
            .ok_or_else(|| ServiceError::UnknownObject {
                task: task_name.clone(),
                object: object.to_string(),
            })?;
        let o = ObjectId(object_idx);
        let assignment = state.session.current().assignment();
        let probabilities = state
            .labels
            .iter()
            .map(|(l, name)| LabelProbability {
                label: name.to_string(),
                probability: assignment.prob(o, LabelId(l)),
            })
            .collect();
        let validated = state.session.expert().get(o);
        let label = validated.unwrap_or_else(|| assignment.most_likely(o).0);
        Ok(Response::Posterior {
            task: task_name,
            object: object.to_string(),
            label: state
                .labels
                .name(label.index())
                .unwrap_or("<unknown>")
                .to_string(),
            validated: validated.is_some(),
            probabilities,
        })
    }

    fn snapshot(&mut self, task: &str) -> Result<Response, ServiceError> {
        let task_name = task.to_string();
        let state = self.task_mut(task)?;
        let session = state.session.snapshot()?;
        Ok(Response::Snapshot {
            task: task_name,
            snapshot: Box::new(TaskSnapshot {
                protocol_version: PROTOCOL_VERSION,
                wal: state.session.delta_log_enabled(),
                objects: state.objects.clone(),
                workers: state.workers.clone(),
                labels: state.labels.clone(),
                session,
            }),
        })
    }

    fn snapshot_delta(&mut self, task: &str) -> Result<Response, ServiceError> {
        let task_name = task.to_string();
        let state = self.task_mut(task)?;
        let session = state.session.delta_snapshot()?;
        let events = session.events.len();
        Ok(Response::SnapshotDelta {
            task: task_name,
            delta: Box::new(TaskDelta {
                protocol_version: PROTOCOL_VERSION,
                objects: state.objects.clone(),
                workers: state.workers.clone(),
                session,
            }),
            events,
        })
    }

    /// Shared validation of a restore target and its anchor snapshot: a
    /// fresh non-empty task name, a restorable protocol version and
    /// interners consistent with the snapshotted session.
    fn check_restore(&self, task: &str, snapshot: &TaskSnapshot) -> Result<(), ServiceError> {
        if task.is_empty() {
            return Err(ServiceError::InvalidTask {
                message: "task name must not be empty".to_string(),
            });
        }
        if self.tasks.contains_key(task) {
            return Err(ServiceError::TaskExists {
                task: task.to_string(),
            });
        }
        if !(MIN_SNAPSHOT_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&snapshot.protocol_version)
        {
            return Err(ServiceError::UnsupportedVersion {
                requested: snapshot.protocol_version,
                supported: PROTOCOL_VERSION,
            });
        }
        let answers = &snapshot.session.answers;
        if snapshot.objects.len() != answers.num_objects()
            || snapshot.workers.len() != answers.num_workers()
            || snapshot.labels.len() != answers.num_labels()
        {
            return Err(ServiceError::InvalidSnapshot {
                message: format!(
                    "interners name {} objects / {} workers / {} labels, \
                     session holds {} / {} / {}",
                    snapshot.objects.len(),
                    snapshot.workers.len(),
                    snapshot.labels.len(),
                    answers.num_objects(),
                    answers.num_workers(),
                    answers.num_labels(),
                ),
            });
        }
        Ok(())
    }

    fn restore(&mut self, task: &str, snapshot: &TaskSnapshot) -> Result<Response, ServiceError> {
        self.check_restore(task, snapshot)?;
        let mut session = ValidationSession::restore(snapshot.session.clone())?;
        if snapshot.wal {
            // The snapshotted task was logging deltas; the restored one
            // keeps doing so, anchored at this (just-restored) state.
            session.enable_delta_log();
        }
        self.tasks.insert(
            task.to_string(),
            TaskState {
                objects: snapshot.objects.clone(),
                workers: snapshot.workers.clone(),
                labels: snapshot.labels.clone(),
                session,
            },
        );
        Ok(Response::Restored {
            task: task.to_string(),
            objects: snapshot.objects.len(),
            workers: snapshot.workers.len(),
            validations: snapshot.session.iteration,
        })
    }

    fn restore_delta(
        &mut self,
        task: &str,
        snapshot: &TaskSnapshot,
        delta: &TaskDelta,
    ) -> Result<Response, ServiceError> {
        self.check_restore(task, snapshot)?;
        if !(MIN_SNAPSHOT_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&delta.protocol_version) {
            return Err(ServiceError::UnsupportedVersion {
                requested: delta.protocol_version,
                supported: PROTOCOL_VERSION,
            });
        }
        // The delta's interners must extend the anchor's: same names in the
        // same dense order up to the anchor's length, plus whatever arrived
        // after the anchor. A mismatch means the delta belongs to a
        // different task lineage.
        for (anchor, at_delta, kind) in [
            (&snapshot.objects, &delta.objects, "object"),
            (&snapshot.workers, &delta.workers, "worker"),
        ] {
            if at_delta.len() < anchor.len()
                || anchor
                    .iter()
                    .any(|(index, name)| at_delta.name(index) != Some(name))
            {
                return Err(ServiceError::InvalidSnapshot {
                    message: format!("the delta's {kind} ids do not extend the anchor snapshot's"),
                });
            }
        }
        let mut session =
            ValidationSession::restore_with_delta(snapshot.session.clone(), delta.session.clone())?;
        // The replayed session must know exactly the ids the delta's
        // interners name — anything else means the delta's dense votes and
        // its id mappings disagree.
        if delta.objects.len() != session.answers().num_objects()
            || delta.workers.len() != session.answers().num_workers()
        {
            return Err(ServiceError::InvalidSnapshot {
                message: format!(
                    "delta interners name {} objects / {} workers, \
                     the replayed session holds {} / {}",
                    delta.objects.len(),
                    delta.workers.len(),
                    session.answers().num_objects(),
                    session.answers().num_workers(),
                ),
            });
        }
        if snapshot.wal {
            session.enable_delta_log();
        }
        let validations = session.iterations();
        self.tasks.insert(
            task.to_string(),
            TaskState {
                objects: delta.objects.clone(),
                workers: delta.workers.clone(),
                labels: snapshot.labels.clone(),
                session,
            },
        );
        Ok(Response::Restored {
            task: task.to_string(),
            objects: delta.objects.len(),
            workers: delta.workers.len(),
            validations,
        })
    }

    fn close_task(&mut self, task: &str) -> Result<Response, ServiceError> {
        let state = self
            .tasks
            .remove(task)
            .ok_or_else(|| ServiceError::TaskNotFound {
                task: task.to_string(),
            })?;
        Ok(Response::TaskClosed {
            task: task.to_string(),
            votes: state.session.answers().matrix().num_answers(),
            validations: state.session.iterations(),
        })
    }

    /// Whether a task with this name is live.
    pub fn has_task(&self, task: &str) -> bool {
        self.tasks.contains_key(task)
    }

    /// Captures a crash-recovery anchor of one task — the full snapshot
    /// *plus* the task's client-visible delta log — **side-effect-free**:
    /// unlike [`Request::Snapshot`], taking it does not re-anchor the
    /// task's delta log, so background checkpoints are invisible to
    /// clients using `SnapshotDelta`.
    pub fn checkpoint_task(&self, task: &str) -> Result<RecoveryAnchor, ServiceError> {
        let state = self
            .tasks
            .get(task)
            .ok_or_else(|| ServiceError::TaskNotFound {
                task: task.to_string(),
            })?;
        let wal_enabled = state.session.delta_log_enabled();
        let session = state.session.recovery_snapshot()?;
        let wal = if wal_enabled {
            Some(state.session.delta_snapshot()?)
        } else {
            None
        };
        Ok(RecoveryAnchor {
            snapshot: TaskSnapshot {
                protocol_version: PROTOCOL_VERSION,
                wal: wal_enabled,
                objects: state.objects.clone(),
                workers: state.workers.clone(),
                labels: state.labels.clone(),
                session,
            },
            wal,
        })
    }

    /// Installs a recovered task from a crash-recovery anchor, reinstating
    /// its delta log verbatim (anchor counters and pending events), so a
    /// post-recovery `SnapshotDelta` is indistinguishable from a pre-crash
    /// one. Returns the restored object count. Validation mirrors
    /// [`Request::Restore`]; corrupt anchors come back as typed errors.
    pub fn install_recovered(
        &mut self,
        task: &str,
        anchor: RecoveryAnchor,
    ) -> Result<usize, ServiceError> {
        let RecoveryAnchor { snapshot, wal } = anchor;
        self.check_restore(task, &snapshot)?;
        let mut session = ValidationSession::restore(snapshot.session)?;
        match wal {
            Some(delta) => session.install_delta_log(delta)?,
            None if snapshot.wal => session.enable_delta_log(),
            None => {}
        }
        let objects = snapshot.objects.len();
        self.tasks.insert(
            task.to_string(),
            TaskState {
                objects: snapshot.objects,
                workers: snapshot.workers,
                labels: snapshot.labels,
                session,
            },
        );
        Ok(objects)
    }

    /// Drops a task without the [`Request::CloseTask`] bookkeeping — used
    /// when a recovery replay fails halfway and the partial task must not
    /// survive.
    pub fn evict_task(&mut self, task: &str) {
        self.tasks.remove(task);
    }
}

/// Builds the session strategy for a [`TaskConfig`].
fn build_strategy(config: TaskConfig) -> Box<dyn SelectionStrategy> {
    let uncertainty = match config.shortlist {
        Some(limit) => UncertaintyDriven::with_max_evaluated(limit),
        None => UncertaintyDriven::new(),
    };
    match config.strategy {
        StrategyChoice::Hybrid => {
            Box::new(HybridStrategy::with_uncertainty(uncertainty, config.seed))
        }
        StrategyChoice::UncertaintyDriven => Box::new(uncertainty),
        StrategyChoice::WorkerDriven => Box::new(WorkerDriven),
        StrategyChoice::EntropyBaseline => Box::new(EntropyBaseline),
        StrategyChoice::Random => Box::new(RandomSelection::new(config.seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn create(service: &mut ValidationService, task: &str) {
        let reply = service.handle(&RequestEnvelope::latest(Request::CreateTask {
            task: task.into(),
            labels: vec!["yes".into(), "no".into()],
            config: TaskConfig {
                strategy: StrategyChoice::EntropyBaseline,
                ..TaskConfig::default()
            },
        }));
        assert!(matches!(reply, Ok(Response::TaskCreated { .. })));
    }

    fn vote(worker: &str, object: &str, label: &str) -> ClientVote {
        ClientVote {
            worker: worker.into(),
            object: object.into(),
            label: label.into(),
        }
    }

    #[test]
    fn version_mismatch_is_refused() {
        let mut service = ValidationService::new();
        let reply = service.handle(&RequestEnvelope {
            version: 99,
            request_id: 0,
            request: Request::RequestGuidance { task: "t".into() },
        });
        assert!(matches!(
            reply,
            Err(ServiceError::UnsupportedVersion { requested: 99, .. })
        ));
    }

    #[test]
    fn unknown_task_and_duplicate_create_are_typed_errors() {
        let mut service = ValidationService::new();
        assert!(matches!(
            service.handle_request(&Request::RequestGuidance { task: "t".into() }),
            Err(ServiceError::TaskNotFound { .. })
        ));
        create(&mut service, "t");
        let reply = service.handle_request(&Request::CreateTask {
            task: "t".into(),
            labels: vec!["a".into()],
            config: TaskConfig::default(),
        });
        assert!(matches!(reply, Err(ServiceError::TaskExists { .. })));
        assert_eq!(service.task_names(), vec!["t".to_string()]);
    }

    #[test]
    fn create_rejects_bad_label_sets() {
        let mut service = ValidationService::new();
        assert!(matches!(
            service.handle_request(&Request::CreateTask {
                task: "t".into(),
                labels: vec![],
                config: TaskConfig::default(),
            }),
            Err(ServiceError::InvalidTask { .. })
        ));
        assert!(matches!(
            service.handle_request(&Request::CreateTask {
                task: "t".into(),
                labels: vec!["dup".into(), "dup".into()],
                config: TaskConfig::default(),
            }),
            Err(ServiceError::InvalidTask { .. })
        ));
        assert_eq!(service.num_tasks(), 0);
    }

    #[test]
    fn unknown_labels_fail_vote_batches_atomically() {
        let mut service = ValidationService::new();
        create(&mut service, "t");
        let reply = service.handle_request(&Request::SubmitVotes {
            task: "t".into(),
            votes: vec![vote("w1", "o1", "yes"), vote("w1", "o2", "maybe")],
        });
        assert!(matches!(reply, Err(ServiceError::UnknownLabel { .. })));
        // Nothing was interned: the valid first vote's object is unknown too.
        assert!(matches!(
            service.handle_request(&Request::QueryPosterior {
                task: "t".into(),
                object: "o1".into(),
            }),
            Err(ServiceError::UnknownObject { .. })
        ));
    }

    #[test]
    fn submit_guide_validate_query_round_trip() {
        let mut service = ValidationService::new();
        create(&mut service, "t");
        let votes: Vec<ClientVote> = (0..4)
            .flat_map(|w| {
                (0..6).map(move |o| {
                    vote(
                        &format!("w{w}"),
                        &format!("obj-{o}"),
                        if o % 2 == 0 { "yes" } else { "no" },
                    )
                })
            })
            .collect();
        let reply = service
            .handle_request(&Request::SubmitVotes {
                task: "t".into(),
                votes,
            })
            .unwrap();
        match reply {
            Response::VotesAccepted {
                votes,
                new_objects,
                new_workers,
                ..
            } => {
                assert_eq!(votes, 24);
                assert_eq!(new_objects, 6);
                assert_eq!(new_workers, 4);
            }
            other => panic!("unexpected reply {other:?}"),
        }

        let guided = match service
            .handle_request(&Request::RequestGuidance { task: "t".into() })
            .unwrap()
        {
            Response::Guidance {
                object: Some(object),
                ..
            } => object,
            other => panic!("unexpected reply {other:?}"),
        };
        assert!(guided.starts_with("obj-"));

        let reply = service
            .handle_request(&Request::SubmitValidation {
                task: "t".into(),
                object: guided.clone(),
                label: "yes".into(),
            })
            .unwrap();
        assert!(matches!(
            reply,
            Response::ValidationAccepted { validations: 1, .. }
        ));

        match service
            .handle_request(&Request::QueryPosterior {
                task: "t".into(),
                object: guided,
            })
            .unwrap()
        {
            Response::Posterior {
                label,
                validated,
                probabilities,
                ..
            } => {
                assert_eq!(label, "yes");
                assert!(validated);
                assert_eq!(probabilities.len(), 2);
                let total: f64 = probabilities.iter().map(|p| p.probability).sum();
                assert!((total - 1.0).abs() < 1e-9);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn snapshot_restore_round_trips_a_task() {
        let mut service = ValidationService::new();
        create(&mut service, "t");
        service
            .handle_request(&Request::SubmitVotes {
                task: "t".into(),
                votes: (0..3)
                    .flat_map(|w| {
                        (0..4).map(move |o| vote(&format!("w{w}"), &format!("o{o}"), "yes"))
                    })
                    .collect(),
            })
            .unwrap();
        let snapshot = match service
            .handle_request(&Request::Snapshot { task: "t".into() })
            .unwrap()
        {
            Response::Snapshot { snapshot, .. } => snapshot,
            other => panic!("unexpected reply {other:?}"),
        };
        // Restoring over a live task is refused; into a fresh name works.
        assert!(matches!(
            service.handle_request(&Request::Restore {
                task: "t".into(),
                snapshot: snapshot.clone(),
            }),
            Err(ServiceError::TaskExists { .. })
        ));
        let reply = service
            .handle_request(&Request::Restore {
                task: "t2".into(),
                snapshot,
            })
            .unwrap();
        assert!(matches!(
            reply,
            Response::Restored {
                objects: 4,
                workers: 3,
                ..
            }
        ));
        // The restored task answers queries about the external ids.
        assert!(matches!(
            service.handle_request(&Request::QueryPosterior {
                task: "t2".into(),
                object: "o2".into(),
            }),
            Ok(Response::Posterior { .. })
        ));
    }

    #[test]
    fn delta_snapshot_replays_onto_the_anchor() {
        let mut service = ValidationService::new();
        service
            .handle_request(&Request::CreateTask {
                task: "t".into(),
                labels: vec!["yes".into(), "no".into()],
                config: TaskConfig {
                    strategy: StrategyChoice::EntropyBaseline,
                    wal: true,
                    ..TaskConfig::default()
                },
            })
            .unwrap();
        let batch = |tag: usize| -> Vec<ClientVote> {
            (0..3)
                .flat_map(move |w| {
                    (0..4).map(move |o| {
                        vote(
                            &format!("w{tag}-{w}"),
                            &format!("o{tag}-{o}"),
                            if o % 2 == 0 { "yes" } else { "no" },
                        )
                    })
                })
                .collect()
        };
        service
            .handle_request(&Request::SubmitVotes {
                task: "t".into(),
                votes: batch(0),
            })
            .unwrap();
        // Anchor; taking it re-anchors the task's event log.
        let anchor = match service
            .handle_request(&Request::Snapshot { task: "t".into() })
            .unwrap()
        {
            Response::Snapshot { snapshot, .. } => snapshot,
            other => panic!("unexpected reply {other:?}"),
        };
        assert!(anchor.wal);
        // Post-anchor traffic: fresh objects *and* workers, plus one
        // guided validation.
        service
            .handle_request(&Request::SubmitVotes {
                task: "t".into(),
                votes: batch(1),
            })
            .unwrap();
        let guided = match service
            .handle_request(&Request::RequestGuidance { task: "t".into() })
            .unwrap()
        {
            Response::Guidance {
                object: Some(object),
                ..
            } => object,
            other => panic!("unexpected reply {other:?}"),
        };
        service
            .handle_request(&Request::SubmitValidation {
                task: "t".into(),
                object: guided,
                label: "yes".into(),
            })
            .unwrap();
        let delta = match service
            .handle_request(&Request::SnapshotDelta { task: "t".into() })
            .unwrap()
        {
            Response::SnapshotDelta { delta, events, .. } => {
                assert!(events >= 3, "ingest + select + integrate were logged");
                delta
            }
            other => panic!("unexpected reply {other:?}"),
        };
        let reply = service
            .handle_request(&Request::RestoreDelta {
                task: "t2".into(),
                snapshot: anchor,
                delta,
            })
            .unwrap();
        assert!(matches!(
            reply,
            Response::Restored {
                objects: 8,
                workers: 6,
                validations: 1,
                ..
            }
        ));
        // The replayed task checkpoints bit-identically to the live one.
        let live = service
            .handle_request(&Request::Snapshot { task: "t".into() })
            .unwrap();
        let replayed = service
            .handle_request(&Request::Snapshot { task: "t2".into() })
            .unwrap();
        let strip = |r: Response| match r {
            Response::Snapshot { snapshot, .. } => snapshot,
            other => panic!("unexpected reply {other:?}"),
        };
        assert_eq!(strip(live), strip(replayed));
    }

    #[test]
    fn delta_snapshot_without_wal_is_a_typed_error() {
        let mut service = ValidationService::new();
        create(&mut service, "t");
        assert!(matches!(
            service.handle_request(&Request::SnapshotDelta { task: "t".into() }),
            Err(ServiceError::Model { .. })
        ));
    }

    #[test]
    fn runtime_stats_report_the_single_threaded_view() {
        let mut service = ValidationService::new();
        create(&mut service, "t");
        service
            .handle(&RequestEnvelope::latest(Request::SubmitVotes {
                task: "t".into(),
                votes: vec![vote("w", "o", "yes")],
            }))
            .unwrap();
        let reply = service.reply(&RequestEnvelope::new(9, Request::RuntimeStats));
        assert_eq!(reply.request_id, 9);
        match reply.into_result().unwrap() {
            Response::RuntimeStats { shards } => {
                assert_eq!(shards.len(), 1);
                assert_eq!(shards[0].shard, 0);
                assert_eq!(shards[0].tasks, 1);
                assert_eq!(shards[0].votes_ingested, 1);
                // create + submit were both counted before this request.
                assert!(shards[0].requests_served >= 2);
                assert_eq!(shards[0].mailbox_capacity, 0);
                assert_eq!(shards[0].queue_depth, 0);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn triage_stats_report_the_policy_state() {
        let mut service = ValidationService::new();
        // Triage off: the request still answers, with enabled = false.
        create(&mut service, "plain");
        match service
            .handle_request(&Request::TriageStats {
                task: "plain".into(),
            })
            .unwrap()
        {
            Response::TriageStats {
                task,
                enabled,
                scored,
                auto_finalized,
                ..
            } => {
                assert_eq!(task, "plain");
                assert!(!enabled);
                assert_eq!(scored, 0);
                assert_eq!(auto_finalized, 0);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        // Triage on: the calibrated preset is active from creation.
        service
            .handle_request(&Request::CreateTask {
                task: "triaged".into(),
                labels: vec!["yes".into(), "no".into()],
                config: TaskConfig {
                    strategy: StrategyChoice::EntropyBaseline,
                    triage: true,
                    ..TaskConfig::default()
                },
            })
            .unwrap();
        match service
            .handle_request(&Request::TriageStats {
                task: "triaged".into(),
            })
            .unwrap()
        {
            Response::TriageStats { enabled, .. } => assert!(enabled),
            other => panic!("unexpected reply {other:?}"),
        }
        assert!(matches!(
            service.handle_request(&Request::TriageStats {
                task: "missing".into(),
            }),
            Err(ServiceError::TaskNotFound { .. })
        ));
        // The per-shard rollup mirrors the per-task counters.
        match service.handle_request(&Request::RuntimeStats).unwrap() {
            Response::RuntimeStats { shards } => {
                assert_eq!(shards[0].objects_auto_finalized, 0);
                assert_eq!(shards[0].objects_escalated, 0);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn close_task_reports_a_summary_and_frees_the_name() {
        let mut service = ValidationService::new();
        create(&mut service, "t");
        service
            .handle_request(&Request::SubmitVotes {
                task: "t".into(),
                votes: vec![vote("w", "o", "yes")],
            })
            .unwrap();
        let reply = service
            .handle_request(&Request::CloseTask { task: "t".into() })
            .unwrap();
        assert!(matches!(
            reply,
            Response::TaskClosed {
                votes: 1,
                validations: 0,
                ..
            }
        ));
        assert_eq!(service.num_tasks(), 0);
        create(&mut service, "t");
    }
}
