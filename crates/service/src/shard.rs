//! One shard of the sharded service runtime: a dedicated worker thread that
//! **exclusively owns** a [`ValidationService`] registry slice and drains a
//! bounded mailbox of requests.
//!
//! Ownership is the whole concurrency story. A task lives on exactly one
//! shard (chosen by hashing its name, see
//! [`crate::runtime::shard_for_task`]) and never migrates, so the worker
//! mutates its sessions without any locking — the hot path is a plain
//! `&mut` call, exactly as fast as the single-threaded service. The only
//! shared state is the mailbox channel and a handful of relaxed atomic
//! counters ([`ShardCounters`]) the dispatcher reads for
//! [`crate::Request::RuntimeStats`].
//!
//! The mailbox is a [`std::sync::mpsc::sync_channel`] of fixed capacity:
//! when it fills, the dispatcher either rejects the request with
//! [`crate::ServiceError::Overloaded`] or blocks the submitting thread
//! (see [`crate::runtime::OverloadPolicy`]) — queue growth is bounded
//! either way. A worker exits only when every mailbox sender is gone *and*
//! the mailbox is empty, which is what makes
//! [`crate::runtime::ShardRuntime::shutdown`] a drain: accepted requests
//! are always processed and replied to before the thread ends.

use crate::protocol::{Reply, ReplyOutcome, RequestEnvelope, Response, ShardStats};
use crate::service::ValidationService;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Log-spaced latency histogram: bucket `i ≥ 1` counts durations in
/// `[2^(i-1), 2^i)` nanoseconds (bucket 0 is exactly zero), so recording is
/// one `leading_zeros` plus one relaxed atomic increment — cheap enough for
/// every request — and quantiles are read lock-free from whole-bucket
/// counts. The geometric bucket midpoint bounds the quantile estimate's
/// relative error by √2.
pub struct LatencyHistogram {
    buckets: [AtomicU64; Self::BUCKETS],
}

impl LatencyHistogram {
    /// 48 buckets reach 2^47 ns ≈ 39 hours — beyond any request.
    const BUCKETS: usize = 48;

    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one service time.
    pub fn record(&self, duration: Duration) {
        let nanos = duration.as_nanos().min(u64::MAX as u128) as u64;
        let index = (64 - nanos.leading_zeros() as usize).min(Self::BUCKETS - 1);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[cfg(test)]
    pub fn samples(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in microseconds, estimated at the
    /// geometric midpoint of the bucket holding the target rank. Returns 0
    /// while no samples are recorded.
    pub fn quantile_us(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (index, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                if index == 0 {
                    return 0.0;
                }
                // Geometric midpoint of [2^(i-1), 2^i) ns, in µs.
                return 2f64.powi(index as i32 - 1) * std::f64::consts::SQRT_2 / 1000.0;
            }
        }
        unreachable!("target rank is within the total count");
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The per-shard counters the dispatcher reads for
/// [`crate::Request::RuntimeStats`] without touching the mailbox. All
/// updates are relaxed: the numbers are monitoring data, not
/// synchronization.
pub struct ShardCounters {
    /// Live tasks on this shard (maintained by the worker).
    pub(crate) tasks: AtomicUsize,
    /// Requests accepted into the mailbox and not yet finished.
    pub(crate) queue_depth: AtomicUsize,
    /// Requests the worker has finished processing.
    pub(crate) served: AtomicU64,
    /// Votes accepted across all `SubmitVotes` handled by this shard.
    pub(crate) votes_ingested: AtomicU64,
    /// Requests rejected at the ingest boundary (mailbox full, reject
    /// policy). Maintained by the dispatcher, reported per shard.
    pub(crate) rejected: AtomicU64,
    /// Workers tombstoned by the online defense across this shard's tasks.
    pub(crate) workers_excluded: AtomicU64,
    /// Workers reinstated by the online defense across this shard's tasks.
    pub(crate) workers_reinstated: AtomicU64,
    /// Objects auto-finalized by the triage policy across this shard's
    /// tasks, as last measured by the worker (refreshed after every
    /// handled request).
    pub(crate) objects_auto_finalized: AtomicU64,
    /// Objects escalated past triage to the expert across this shard's
    /// tasks, as last measured by the worker.
    pub(crate) objects_escalated: AtomicU64,
    /// Heap bytes of the answer storage across this shard's tasks, as last
    /// measured by the worker (refreshed after every handled request).
    pub(crate) memory_bytes: AtomicU64,
    /// Service-time histogram (handling only; queue wait excluded).
    pub(crate) latency: LatencyHistogram,
}

impl ShardCounters {
    pub(crate) fn new() -> Self {
        Self {
            tasks: AtomicUsize::new(0),
            queue_depth: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            votes_ingested: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            workers_excluded: AtomicU64::new(0),
            workers_reinstated: AtomicU64::new(0),
            objects_auto_finalized: AtomicU64::new(0),
            objects_escalated: AtomicU64::new(0),
            memory_bytes: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    /// Snapshot of the counters as a protocol [`ShardStats`] value.
    pub(crate) fn stats(&self, shard: usize, mailbox_capacity: usize) -> ShardStats {
        ShardStats {
            shard,
            tasks: self.tasks.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            mailbox_capacity,
            requests_served: self.served.load(Ordering::Relaxed),
            votes_ingested: self.votes_ingested.load(Ordering::Relaxed),
            overload_rejections: self.rejected.load(Ordering::Relaxed),
            workers_excluded: self.workers_excluded.load(Ordering::Relaxed),
            workers_reinstated: self.workers_reinstated.load(Ordering::Relaxed),
            objects_auto_finalized: self.objects_auto_finalized.load(Ordering::Relaxed),
            objects_escalated: self.objects_escalated.load(Ordering::Relaxed),
            memory_bytes: self.memory_bytes.load(Ordering::Relaxed),
            service_time_p50_us: self.latency.quantile_us(0.50),
            service_time_p99_us: self.latency.quantile_us(0.99),
        }
    }
}

/// What travels through a shard mailbox.
pub(crate) enum ShardJob {
    /// A client request; the reply goes out through the shared reply
    /// channel.
    Request(Box<RequestEnvelope>),
    /// Parks the worker until the sender half of the gate is dropped.
    /// Used by [`crate::runtime::ShardRuntime::hold_shard`] to quiesce a
    /// shard deterministically (back-pressure tests, maintenance drills);
    /// queued requests behind the gate are processed after release, in
    /// order.
    Hold(Receiver<()>),
}

/// A running shard: its mailbox sender, shared counters and join handle.
pub(crate) struct ShardHandle {
    pub(crate) mailbox: SyncSender<ShardJob>,
    pub(crate) counters: Arc<ShardCounters>,
    pub(crate) worker: JoinHandle<()>,
}

/// Spawns one shard worker owning a fresh [`ValidationService`].
pub(crate) fn spawn_shard(
    shard: usize,
    mailbox_capacity: usize,
    reply_tx: Sender<Reply>,
) -> ShardHandle {
    let (mailbox, jobs) = std::sync::mpsc::sync_channel::<ShardJob>(mailbox_capacity);
    let counters = Arc::new(ShardCounters::new());
    let worker_counters = Arc::clone(&counters);
    let worker = std::thread::Builder::new()
        .name(format!("crowdval-shard-{shard}"))
        .spawn(move || run_worker(jobs, reply_tx, worker_counters))
        .expect("spawn shard worker thread");
    ShardHandle {
        mailbox,
        counters,
        worker,
    }
}

/// The worker loop: drain the mailbox until every sender is gone. The
/// owned service is single-owner state — see the invariant documented on
/// [`crowdval_core::ValidationSession`].
fn run_worker(jobs: Receiver<ShardJob>, reply_tx: Sender<Reply>, counters: Arc<ShardCounters>) {
    let mut service = ValidationService::new();
    for job in jobs {
        match job {
            ShardJob::Request(envelope) => {
                let start = Instant::now();
                let reply = service.reply(&envelope);
                counters.latency.record(start.elapsed());
                match &reply.outcome {
                    ReplyOutcome::Ok(Response::VotesAccepted {
                        votes,
                        workers_excluded,
                        workers_reinstated,
                        ..
                    }) => {
                        counters
                            .votes_ingested
                            .fetch_add(*votes as u64, Ordering::Relaxed);
                        counters
                            .workers_excluded
                            .fetch_add(workers_excluded.len() as u64, Ordering::Relaxed);
                        counters
                            .workers_reinstated
                            .fetch_add(workers_reinstated.len() as u64, Ordering::Relaxed);
                    }
                    ReplyOutcome::Ok(Response::ValidationAccepted {
                        workers_excluded,
                        workers_reinstated,
                        ..
                    }) => {
                        counters
                            .workers_excluded
                            .fetch_add(workers_excluded.len() as u64, Ordering::Relaxed);
                        counters
                            .workers_reinstated
                            .fetch_add(workers_reinstated.len() as u64, Ordering::Relaxed);
                    }
                    _ => {}
                }
                counters.tasks.store(service.num_tasks(), Ordering::Relaxed);
                counters
                    .memory_bytes
                    .store(service.memory_bytes(), Ordering::Relaxed);
                let (auto_finalized, escalated) = service.triage_totals();
                counters
                    .objects_auto_finalized
                    .store(auto_finalized, Ordering::Relaxed);
                counters
                    .objects_escalated
                    .store(escalated, Ordering::Relaxed);
                counters.served.fetch_add(1, Ordering::Relaxed);
                counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
                // A vanished collector is not an error during shutdown:
                // keep draining so accepted requests still execute.
                let _ = reply_tx.send(reply);
            }
            ShardJob::Hold(gate) => {
                // Blocks until the holder drops (or signals) the sender.
                let _ = gate.recv();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_empty_until_recorded() {
        let h = LatencyHistogram::new();
        assert_eq!(h.samples(), 0);
        assert_eq!(h.quantile_us(0.5), 0.0);
        assert_eq!(h.quantile_us(0.99), 0.0);
    }

    #[test]
    fn histogram_quantiles_bracket_the_recorded_scale() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // ~1e5 ns
        }
        h.record(Duration::from_millis(50)); // 5e7 ns tail
        assert_eq!(h.samples(), 100);
        let p50 = h.quantile_us(0.5);
        // Log-bucketed: the estimate is within √2 of 100µs.
        assert!((70.0..142.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((70.0..142.0).contains(&p99), "p99 {p99}");
        let p100 = h.quantile_us(1.0);
        assert!((35_000.0..71_000.0).contains(&p100), "p100 {p100}");
    }

    #[test]
    fn histogram_handles_zero_and_huge_durations() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.quantile_us(1.0), 0.0);
        h.record(Duration::from_secs(1 << 30)); // clamps to the last bucket
        assert_eq!(h.samples(), 2);
        assert!(h.quantile_us(1.0) > 0.0);
    }
}
