//! One shard of the sharded service runtime: a dedicated worker thread that
//! **exclusively owns** a [`ValidationService`] registry slice and drains a
//! bounded mailbox of requests.
//!
//! Ownership is the whole concurrency story. A task lives on exactly one
//! shard (chosen by hashing its name, see
//! [`crate::runtime::shard_for_task`]) and never migrates, so the worker
//! mutates its sessions without any locking — the hot path is a plain
//! `&mut` call, exactly as fast as the single-threaded service. The only
//! shared state is the mailbox channel and a handful of relaxed atomic
//! counters ([`ShardCounters`]) the dispatcher reads for
//! [`crate::Request::RuntimeStats`].
//!
//! The mailbox is a [`std::sync::mpsc::sync_channel`] of fixed capacity:
//! when it fills, the dispatcher either rejects the request with
//! [`crate::ServiceError::Overloaded`] or blocks the submitting thread
//! (see [`crate::runtime::OverloadPolicy`]) — queue growth is bounded
//! either way. A worker exits only when every mailbox sender is gone *and*
//! the mailbox is empty, which is what makes
//! [`crate::runtime::ShardRuntime::shutdown`] a drain: accepted requests
//! are always processed and replied to before the thread ends.

use crate::fault::{FaultKind, FaultRegistry};
use crate::protocol::{Reply, ReplyOutcome, Request, RequestEnvelope, Response, ShardStats};
use crate::service::ValidationService;
use crate::supervisor::{
    encode_anchor, CheckpointStore, PanicSlot, PendingLedger, SupervisionConfig,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Log-spaced latency histogram: bucket `i ≥ 1` counts durations in
/// `[2^(i-1), 2^i)` nanoseconds (bucket 0 is exactly zero), so recording is
/// one `leading_zeros` plus one relaxed atomic increment — cheap enough for
/// every request — and quantiles are read lock-free from whole-bucket
/// counts. The geometric bucket midpoint bounds the quantile estimate's
/// relative error by √2.
pub struct LatencyHistogram {
    buckets: [AtomicU64; Self::BUCKETS],
}

impl LatencyHistogram {
    /// 48 buckets reach 2^47 ns ≈ 39 hours — beyond any request.
    const BUCKETS: usize = 48;

    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one service time.
    pub fn record(&self, duration: Duration) {
        let nanos = duration.as_nanos().min(u64::MAX as u128) as u64;
        let index = (64 - nanos.leading_zeros() as usize).min(Self::BUCKETS - 1);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[cfg(test)]
    pub fn samples(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in microseconds, estimated at the
    /// geometric midpoint of the bucket holding the target rank. Returns 0
    /// while no samples are recorded.
    pub fn quantile_us(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (index, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                if index == 0 {
                    return 0.0;
                }
                // Geometric midpoint of [2^(i-1), 2^i) ns, in µs.
                return 2f64.powi(index as i32 - 1) * std::f64::consts::SQRT_2 / 1000.0;
            }
        }
        unreachable!("target rank is within the total count");
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The per-shard counters the dispatcher reads for
/// [`crate::Request::RuntimeStats`] without touching the mailbox. All
/// updates are relaxed: the numbers are monitoring data, not
/// synchronization.
pub struct ShardCounters {
    /// Live tasks on this shard (maintained by the worker).
    pub(crate) tasks: AtomicUsize,
    /// Requests accepted into the mailbox and not yet finished.
    pub(crate) queue_depth: AtomicUsize,
    /// Requests the worker has finished processing.
    pub(crate) served: AtomicU64,
    /// Votes accepted across all `SubmitVotes` handled by this shard.
    pub(crate) votes_ingested: AtomicU64,
    /// Requests rejected at the ingest boundary (mailbox full, reject
    /// policy). Maintained by the dispatcher, reported per shard.
    pub(crate) rejected: AtomicU64,
    /// Workers tombstoned by the online defense across this shard's tasks.
    pub(crate) workers_excluded: AtomicU64,
    /// Workers reinstated by the online defense across this shard's tasks.
    pub(crate) workers_reinstated: AtomicU64,
    /// Objects auto-finalized by the triage policy across this shard's
    /// tasks, as last measured by the worker (refreshed after every
    /// handled request).
    pub(crate) objects_auto_finalized: AtomicU64,
    /// Objects escalated past triage to the expert across this shard's
    /// tasks, as last measured by the worker.
    pub(crate) objects_escalated: AtomicU64,
    /// Heap bytes of the answer storage across this shard's tasks, as last
    /// measured by the worker (refreshed after every handled request).
    pub(crate) memory_bytes: AtomicU64,
    /// Times the supervisor restarted this shard's worker. Maintained by
    /// the dispatcher; survives restarts because the counters are shared
    /// by `Arc`, not owned by the worker.
    pub(crate) restarts: AtomicU64,
    /// Worker panics isolated by the panic boundary.
    pub(crate) panics_isolated: AtomicU64,
    /// Objects brought back by checkpoint recovery across all restarts.
    pub(crate) recovered_objects: AtomicU64,
    /// Sheddable requests refused under overload / mid-recovery.
    pub(crate) shed_requests: AtomicU64,
    /// Accepted requests flushed as `Unavailable { reason: RequestLost }`.
    pub(crate) requests_lost: AtomicU64,
    /// Total time spent rebuilding this shard's state after crashes, µs.
    pub(crate) recovery_us: AtomicU64,
    /// Service-time histogram (handling only; queue wait excluded).
    pub(crate) latency: LatencyHistogram,
}

impl ShardCounters {
    pub(crate) fn new() -> Self {
        Self {
            tasks: AtomicUsize::new(0),
            queue_depth: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            votes_ingested: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            workers_excluded: AtomicU64::new(0),
            workers_reinstated: AtomicU64::new(0),
            objects_auto_finalized: AtomicU64::new(0),
            objects_escalated: AtomicU64::new(0),
            memory_bytes: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            panics_isolated: AtomicU64::new(0),
            recovered_objects: AtomicU64::new(0),
            shed_requests: AtomicU64::new(0),
            requests_lost: AtomicU64::new(0),
            recovery_us: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    /// Snapshot of the counters as a protocol [`ShardStats`] value.
    pub(crate) fn stats(&self, shard: usize, mailbox_capacity: usize) -> ShardStats {
        ShardStats {
            shard,
            tasks: self.tasks.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            mailbox_capacity,
            requests_served: self.served.load(Ordering::Relaxed),
            votes_ingested: self.votes_ingested.load(Ordering::Relaxed),
            overload_rejections: self.rejected.load(Ordering::Relaxed),
            workers_excluded: self.workers_excluded.load(Ordering::Relaxed),
            workers_reinstated: self.workers_reinstated.load(Ordering::Relaxed),
            objects_auto_finalized: self.objects_auto_finalized.load(Ordering::Relaxed),
            objects_escalated: self.objects_escalated.load(Ordering::Relaxed),
            memory_bytes: self.memory_bytes.load(Ordering::Relaxed),
            service_time_p50_us: self.latency.quantile_us(0.50),
            service_time_p99_us: self.latency.quantile_us(0.99),
            restarts: self.restarts.load(Ordering::Relaxed),
            panics_isolated: self.panics_isolated.load(Ordering::Relaxed),
            recovered_objects: self.recovered_objects.load(Ordering::Relaxed),
            shed_requests: self.shed_requests.load(Ordering::Relaxed),
            requests_lost: self.requests_lost.load(Ordering::Relaxed),
        }
    }
}

/// What travels through a shard mailbox.
pub(crate) enum ShardJob {
    /// A client request; the reply goes out through the shared reply
    /// channel.
    Request(Box<RequestEnvelope>),
    /// Parks the worker until the sender half of the gate is dropped.
    /// Used by [`crate::runtime::ShardRuntime::hold_shard`] to quiesce a
    /// shard deterministically (back-pressure tests, maintenance drills);
    /// queued requests behind the gate are processed after release, in
    /// order.
    Hold(Receiver<()>),
}

/// A running shard: its mailbox sender and join handle. The shared pieces
/// (counters, checkpoints, ledger, panic slot) live in the runtime and
/// survive the worker — a restarted shard gets a fresh handle wired to the
/// same shared state.
pub(crate) struct ShardHandle {
    pub(crate) mailbox: SyncSender<ShardJob>,
    pub(crate) worker: JoinHandle<()>,
}

/// Dispatcher-owned state a shard worker is wired to: everything that must
/// outlive the worker thread for supervision to work.
#[derive(Clone)]
pub(crate) struct ShardShared {
    pub(crate) config: SupervisionConfig,
    pub(crate) counters: Arc<ShardCounters>,
    pub(crate) checkpoints: Arc<CheckpointStore>,
    pub(crate) ledger: Arc<PendingLedger>,
    pub(crate) panic_slot: Arc<PanicSlot>,
    pub(crate) faults: Arc<FaultRegistry>,
}

impl ShardShared {
    pub(crate) fn new(config: SupervisionConfig, faults: Arc<FaultRegistry>) -> Self {
        Self {
            config,
            counters: Arc::new(ShardCounters::new()),
            checkpoints: Arc::new(CheckpointStore::new()),
            ledger: Arc::new(PendingLedger::new()),
            panic_slot: Arc::new(PanicSlot::new()),
            faults,
        }
    }
}

/// Spawns one shard worker owning the given [`ValidationService`] (fresh at
/// startup, checkpoint-recovered on a restart).
pub(crate) fn spawn_shard(
    shard: usize,
    mailbox_capacity: usize,
    reply_tx: Sender<Reply>,
    shared: ShardShared,
    service: ValidationService,
) -> ShardHandle {
    let (mailbox, jobs) = std::sync::mpsc::sync_channel::<ShardJob>(mailbox_capacity);
    let worker = std::thread::Builder::new()
        .name(format!("crowdval-shard-{shard}"))
        .spawn(move || run_worker(shard, jobs, reply_tx, shared, service))
        .expect("spawn shard worker thread");
    ShardHandle { mailbox, worker }
}

/// The worker loop: drain the mailbox until every sender is gone (or an
/// isolated panic kills the worker — the dispatcher restarts it from the
/// checkpoint store). The owned service is single-owner state — see the
/// invariant documented on [`crowdval_core::ValidationSession`].
///
/// The order per request is load-bearing for recovery:
/// **handle → checkpoint → ledger-remove → reply**. Every injected or real
/// panic fires before the checkpoint append, so the checkpoint log holds
/// exactly the acknowledged mutations; nothing panics between the ledger
/// removal and the reply send, so a request is either still in the ledger
/// (flushed as `Unavailable` on crash) or replied to — never both, never
/// neither.
fn run_worker(
    shard: usize,
    jobs: Receiver<ShardJob>,
    reply_tx: Sender<Reply>,
    shared: ShardShared,
    mut service: ValidationService,
) {
    for job in jobs {
        match job {
            ShardJob::Request(envelope) => {
                let fault = shared.faults.on_arrival(shard);
                let start = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    match fault {
                        Some(FaultKind::Kill) => {
                            panic!("injected fault: kill before handling")
                        }
                        Some(FaultKind::Stall { ms }) => {
                            std::thread::sleep(Duration::from_millis(ms))
                        }
                        _ => {}
                    }
                    let reply = service.reply(&envelope);
                    if fault == Some(FaultKind::Panic) {
                        panic!("injected fault: panic before acknowledgement");
                    }
                    reply
                }));
                let reply = match outcome {
                    Ok(reply) => reply,
                    Err(payload) => {
                        // Isolate the panic: record the payload for the
                        // dispatcher and die cleanly. The half-mutated
                        // service drops with this thread; the in-flight
                        // request (and anything queued behind it) is still
                        // in the ledger and gets flushed as `Unavailable`.
                        shared.panic_slot.record(payload.as_ref());
                        shared
                            .counters
                            .panics_isolated
                            .fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                shared.counters.latency.record(start.elapsed());
                match &reply.outcome {
                    ReplyOutcome::Ok(Response::VotesAccepted {
                        votes,
                        workers_excluded,
                        workers_reinstated,
                        ..
                    }) => {
                        shared
                            .counters
                            .votes_ingested
                            .fetch_add(*votes as u64, Ordering::Relaxed);
                        shared
                            .counters
                            .workers_excluded
                            .fetch_add(workers_excluded.len() as u64, Ordering::Relaxed);
                        shared
                            .counters
                            .workers_reinstated
                            .fetch_add(workers_reinstated.len() as u64, Ordering::Relaxed);
                    }
                    ReplyOutcome::Ok(Response::ValidationAccepted {
                        workers_excluded,
                        workers_reinstated,
                        ..
                    }) => {
                        shared
                            .counters
                            .workers_excluded
                            .fetch_add(workers_excluded.len() as u64, Ordering::Relaxed);
                        shared
                            .counters
                            .workers_reinstated
                            .fetch_add(workers_reinstated.len() as u64, Ordering::Relaxed);
                    }
                    _ => {}
                }
                if shared.config.enabled {
                    maintain_checkpoints(&mut service, &shared, &envelope, &reply);
                }
                if fault == Some(FaultKind::TearCheckpoint) {
                    if let Some(task) = envelope.request.task_name() {
                        shared.checkpoints.tear(task);
                    }
                }
                let counters = &shared.counters;
                counters.tasks.store(service.num_tasks(), Ordering::Relaxed);
                counters
                    .memory_bytes
                    .store(service.memory_bytes(), Ordering::Relaxed);
                let (auto_finalized, escalated) = service.triage_totals();
                counters
                    .objects_auto_finalized
                    .store(auto_finalized, Ordering::Relaxed);
                counters
                    .objects_escalated
                    .store(escalated, Ordering::Relaxed);
                counters.served.fetch_add(1, Ordering::Relaxed);
                counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
                // An injected reply drop only applies to read-only
                // requests: dropping the acknowledgement of a mutation
                // would leave "what the client knows" ill-defined, which
                // is the reference state recovery is proven against. The
                // undelivered id stays in the ledger and is flushed as
                // `Unavailable { reason: RequestLost }` at the next
                // restart or at shutdown.
                if fault == Some(FaultKind::DropReply) && !envelope.request.is_mutating() {
                    continue;
                }
                shared.ledger.remove(envelope.request_id);
                // A vanished collector is not an error during shutdown:
                // keep draining so accepted requests still execute.
                let _ = reply_tx.send(reply);
            }
            ShardJob::Hold(gate) => {
                // Blocks until the holder drops (or signals) the sender.
                let _ = gate.recv();
            }
        }
    }
}

/// Keeps the shard's checkpoint store describing exactly the acknowledged
/// state: anchor new tasks, log acknowledged mutations, re-anchor every
/// [`SupervisionConfig::checkpoint_every`] of them, drop closed tasks.
fn maintain_checkpoints(
    service: &mut ValidationService,
    shared: &ShardShared,
    envelope: &RequestEnvelope,
    reply: &Reply,
) {
    let Some(task) = envelope.request.task_name() else {
        return;
    };
    if !matches!(reply.outcome, ReplyOutcome::Ok(_)) {
        // Typed errors mutate nothing (atomic batches, validated
        // restores), so the checkpoint is still current.
        return;
    }
    if matches!(envelope.request, Request::CloseTask { .. }) || !service.has_task(task) {
        shared.checkpoints.remove(task);
        return;
    }
    if !envelope.request.is_mutating() {
        return;
    }
    match shared.checkpoints.append(task, envelope.request.clone()) {
        Some(len) if len >= shared.config.checkpoint_every.max(1) => {
            re_anchor(service, shared, task)
        }
        Some(_) => {}
        // First acknowledged mutation of this task (creation, restore):
        // anchor it so the task survives a crash from now on.
        None => re_anchor(service, shared, task),
    }
}

/// Replaces a task's recovery anchor with its current (post-mutation)
/// state. A task whose state cannot be checkpointed loses crash coverage —
/// its entry is dropped so recovery never replays a stale anchor.
fn re_anchor(service: &ValidationService, shared: &ShardShared, task: &str) {
    match service.checkpoint_task(task) {
        Ok(anchor) => shared.checkpoints.set_anchor(task, encode_anchor(&anchor)),
        Err(_) => shared.checkpoints.remove(task),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_empty_until_recorded() {
        let h = LatencyHistogram::new();
        assert_eq!(h.samples(), 0);
        assert_eq!(h.quantile_us(0.5), 0.0);
        assert_eq!(h.quantile_us(0.99), 0.0);
    }

    #[test]
    fn histogram_quantiles_bracket_the_recorded_scale() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // ~1e5 ns
        }
        h.record(Duration::from_millis(50)); // 5e7 ns tail
        assert_eq!(h.samples(), 100);
        let p50 = h.quantile_us(0.5);
        // Log-bucketed: the estimate is within √2 of 100µs.
        assert!((70.0..142.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((70.0..142.0).contains(&p99), "p99 {p99}");
        let p100 = h.quantile_us(1.0);
        assert!((35_000.0..71_000.0).contains(&p100), "p100 {p100}");
    }

    #[test]
    fn histogram_handles_zero_and_huge_durations() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.quantile_us(1.0), 0.0);
        h.record(Duration::from_secs(1 << 30)); // clamps to the last bucket
        assert_eq!(h.samples(), 2);
        assert!(h.quantile_us(1.0) > 0.0);
    }
}
