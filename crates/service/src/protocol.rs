//! The versioned request/response protocol of the validation service.
//!
//! Every message is a plain serde value (and therefore one JSON object per
//! line under the `crowdval-serve` driver). Requests travel inside a
//! [`RequestEnvelope`] carrying the protocol version; the service refuses
//! versions it does not speak with a typed error instead of guessing. The
//! request kinds map onto the paper's validation loop (§3.2,
//! Algorithm 1):
//!
//! | Request | Paper step | Session call |
//! |---|---|---|
//! | [`Request::CreateTask`] | — | `ValidationSessionBuilder::try_build` |
//! | [`Request::SubmitVotes`] | vote arrival (§5.4) | `ingest` |
//! | [`Request::RequestGuidance`] | select (step 1) | `select_next` |
//! | [`Request::SubmitValidation`] | conclude/filter (steps 2–4) | `integrate` |
//! | [`Request::QueryPosterior`] | read `P` / `d` | `current` / `deterministic_assignment` |
//! | [`Request::QueryWorkerTrust`] | online defense | `worker_trust_reports` |
//! | [`Request::Snapshot`] | — | `snapshot` |
//! | [`Request::Restore`] | — | `restore` |
//! | [`Request::SnapshotDelta`] | — | `delta_snapshot` |
//! | [`Request::RestoreDelta`] | — | `restore_with_delta` |
//! | [`Request::CloseTask`] | — | drop |
//!
//! Clients speak **stable string ids** for workers, objects and labels; the
//! per-task [`crowdval_model::IdInterner`]s translate to the dense internal
//! indices at the boundary, so mid-session churn (new workers and objects
//! arriving in any order) never leaks index-assignment order into the
//! contract.
//!
//! Since v2 every envelope also carries a **correlation id**
//! ([`RequestEnvelope::request_id`]) that the service echoes back in the
//! [`Reply`]. Under the sharded runtime ([`crate::runtime::ShardRuntime`])
//! replies to different tasks may come back out of submission order; the
//! echoed id is how clients re-associate them. Two further v2 additions
//! serve the runtime: [`Request::RuntimeStats`] reads the per-shard
//! counters, and [`ServiceError::Overloaded`] is the back-pressure signal a
//! full shard mailbox pushes back to the ingest boundary.

use crowdval_core::snapshot::{SessionDelta, SessionSnapshot};
use crowdval_model::IdInterner;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The protocol version this build speaks. Bumped on any incompatible
/// change to the request/response shapes.
///
/// **v2** (incompatible with v1): [`RequestEnvelope`] gained the required
/// `request_id` correlation field and [`Reply`] echoes it; the
/// [`Request::RuntimeStats`] / [`Response::RuntimeStats`] pair and
/// [`ServiceError::Overloaded`] were added for the sharded runtime. The
/// online-defense surface ([`Request::QueryWorkerTrust`] /
/// [`Response::WorkerTrust`], [`TaskConfig::online_defense`] and the
/// defense fields of the accept replies) rides on v2 — new enum variants
/// are invisible to clients that never send them.
///
/// **v3** (incompatible with v2): incremental checkpoints.
/// [`TaskConfig`] gained the required `wal` switch, [`TaskSnapshot`]
/// records it, and the [`Request::SnapshotDelta`] /
/// [`Request::RestoreDelta`] pair moves [`TaskDelta`]s — event logs
/// replayed on an anchoring full snapshot instead of cloning the corpus.
/// [`ShardStats`] also gained the required `memory_bytes` gauge.
///
/// **v4** (incompatible with v3): agreement-prediction triage.
/// [`TaskConfig`] gained the required `triage` switch (mapping to the
/// engine's calibrated triage preset), the [`Request::TriageStats`] /
/// [`Response::TriageStats`] pair reads a task's triage counters and audit
/// depth, [`ShardStats`] gained the `objects_auto_finalized` /
/// `objects_escalated` counters, and the embedded session snapshot carries
/// the churn tracker and triage state (snapshot format v5).
///
/// **v5** (incompatible with v4): supervision and fault tolerance.
/// [`ServiceError::Overloaded`] gained the required `retry_after_ms` hint
/// and the new [`ServiceError::Unavailable`] carries the same hint for
/// shed, deadline-exceeded and crash-lost requests (see the *client retry
/// contract* below). The [`Request::Health`] / [`Response::Health`] pair
/// reads per-shard liveness and recovery telemetry, [`Request::FaultInject`]
/// arms a deterministic [`crate::fault::FaultPlan`] on runtimes built with
/// fault injection enabled, and [`ShardStats`] gained the `restarts`,
/// `panics_isolated`, `recovered_objects`, `shed_requests` and
/// `requests_lost` counters.
///
/// # Client retry contract
///
/// Back-pressure and failure replies are **typed and retryable**; no
/// accepted-then-lost request goes unanswered:
///
/// * [`ServiceError::Overloaded`] — the request was *not* accepted. Wait
///   `retry_after_ms` (a hint derived from the shard's live queue depth and
///   median service time), then resubmit the identical envelope. Task state
///   is untouched, so retrying cannot double-apply.
/// * [`ServiceError::Unavailable`] with [`UnavailableReason::Shed`] or
///   [`UnavailableReason::DeadlineExceeded`] — same contract as
///   `Overloaded`: not accepted, safe to resubmit after `retry_after_ms`.
/// * [`ServiceError::Unavailable`] with [`UnavailableReason::RequestLost`]
///   or [`UnavailableReason::WorkerPanicked`] — the request was accepted
///   but its shard crashed before a success reply was produced. The
///   supervisor has rolled the owning task back to its **acknowledged
///   prefix**: every earlier `Ok` reply still holds, the lost request left
///   no partial state behind. Mutating requests are therefore safe to
///   resubmit once; read-only requests can simply be retried.
/// * Every accepted request receives exactly one reply with its
///   correlation id — on crash or shutdown, unanswerable requests are
///   flushed as `Unavailable` rather than silently dropped.
pub const PROTOCOL_VERSION: u32 = 5;

/// Oldest snapshot protocol version [`Request::Restore`] still accepts.
/// The v3→v4 bump changed the [`TaskSnapshot`] layout (the `triage` config
/// field and the embedded session's churn/triage state), so older
/// checkpoints are refused; the v4→v5 bump left the snapshot layout
/// untouched (it only extended the control surface), so v4 checkpoints
/// still restore.
pub const MIN_SNAPSHOT_PROTOCOL_VERSION: u32 = 4;

/// A request plus the protocol version the client speaks and the client's
/// correlation id for the reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Protocol version; must equal [`PROTOCOL_VERSION`].
    pub version: u32,
    /// Client-chosen correlation id, echoed verbatim in the [`Reply`].
    /// Under concurrent dispatch replies arrive out of submission order;
    /// clients that care must pick distinguishable ids (the serial driver
    /// preserves order regardless).
    pub request_id: u64,
    /// The request proper.
    pub request: Request,
}

impl RequestEnvelope {
    /// Wraps a request in the current protocol version under the given
    /// correlation id.
    pub fn new(request_id: u64, request: Request) -> Self {
        Self {
            version: PROTOCOL_VERSION,
            request_id,
            request,
        }
    }

    /// Wraps a request in the current protocol version with correlation id
    /// 0 — for serial drivers and tests where replies cannot interleave.
    pub fn latest(request: Request) -> Self {
        Self::new(0, request)
    }
}

/// One vote as a client submits it: stable string ids only.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientVote {
    /// The answering worker's external id.
    pub worker: String,
    /// The answered object's external id.
    pub object: String,
    /// The answered label — must be one of the task's labels.
    pub label: String,
}

/// Which guidance strategy a task runs (paper §5.2–§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StrategyChoice {
    /// Dynamically weighted hybrid (§5.4) — the paper's default.
    #[default]
    Hybrid,
    /// Information-gain maximization (§5.2).
    UncertaintyDriven,
    /// Expected spammer detections (§5.3).
    WorkerDriven,
    /// Highest-entropy baseline.
    EntropyBaseline,
    /// Uniform random baseline.
    Random,
}

/// Per-task configuration supplied at creation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskConfig {
    /// Guidance strategy for [`Request::RequestGuidance`].
    pub strategy: StrategyChoice,
    /// Seed of the strategy's RNG stream (hybrid roulette / random picks);
    /// fixing it makes a task's guidance sequence reproducible.
    pub seed: u64,
    /// Expert-effort budget `b`; `None` allows validating every object.
    pub budget: Option<usize>,
    /// Whether detected faulty workers are excluded from aggregation (§5.3).
    pub handle_faulty_workers: bool,
    /// Width of the entropy pre-filter shortlist for hypothesis scoring
    /// (§5.4) — the latency/quality knob of guidance requests. `None` uses
    /// the engine default.
    pub shortlist: Option<usize>,
    /// Whether the streaming trust ledger may auto-tombstone (and
    /// reinstate) suspicious workers on every ingest and validation. The
    /// ledger *tracks* trust either way — [`Request::QueryWorkerTrust`]
    /// always answers — but only an enforcing task flips exclusions outside
    /// the classic §5.3 detector path.
    pub online_defense: bool,
    /// Whether the task keeps a write-ahead event log so
    /// [`Request::SnapshotDelta`] can answer. Costs `O(events since the
    /// last full snapshot)` memory; off by default.
    pub wal: bool,
    /// Whether the task runs agreement-prediction triage (the engine's
    /// calibrated preset): objects the convergence predictor scores
    /// unanimous are finalized without an expert query (with an audit
    /// trail), predicted-contentious objects are pre-filtered into the
    /// guidance pool, and the rest escalate to normal selection. Off by
    /// default; [`Request::TriageStats`] answers either way.
    pub triage: bool,
}

impl Default for TaskConfig {
    fn default() -> Self {
        Self {
            strategy: StrategyChoice::default(),
            seed: 0,
            budget: None,
            handle_faulty_workers: true,
            shortlist: None,
            online_defense: false,
            wal: false,
            triage: false,
        }
    }
}

/// The service's command vocabulary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Registers a new named task with a fixed label set. The label list
    /// doubles as the label-id namespace: labels are fixed for the lifetime
    /// of the task (a classification task does not sprout new classes
    /// mid-stream), while workers and objects may churn freely.
    CreateTask {
        task: String,
        labels: Vec<String>,
        config: TaskConfig,
    },
    /// Streams a batch of crowd votes into a task. Unknown workers and
    /// objects are registered on first sight; unknown labels fail the whole
    /// batch atomically (nothing is ingested).
    SubmitVotes {
        task: String,
        votes: Vec<ClientVote>,
    },
    /// Asks the task's guidance strategy which object the expert should
    /// validate next.
    RequestGuidance { task: String },
    /// Integrates one expert validation.
    SubmitValidation {
        task: String,
        object: String,
        label: String,
    },
    /// Reads the current posterior and deterministic label of one object.
    QueryPosterior { task: String, object: String },
    /// Checkpoints a task into a serializable [`TaskSnapshot`].
    Snapshot { task: String },
    /// Recreates a task from a snapshot (crash recovery / migration). The
    /// restored task resumes bit-identically to an uninterrupted one.
    Restore {
        task: String,
        snapshot: Box<TaskSnapshot>,
    },
    /// Checkpoints a task incrementally: the event log since the task's
    /// last full [`Request::Snapshot`], as a [`TaskDelta`]. `O(events)`
    /// instead of the full snapshot's `O(corpus)` — the checkpoint-stall
    /// fix at million-object scale. Requires [`TaskConfig::wal`].
    SnapshotDelta { task: String },
    /// Recreates a task from an anchoring full snapshot plus the delta
    /// taken from it, by replaying the delta's events. The result is
    /// bit-identical to the task the delta was taken from.
    RestoreDelta {
        task: String,
        snapshot: Box<TaskSnapshot>,
        delta: Box<TaskDelta>,
    },
    /// Reads the online-defense state of a task: per-worker trust reports
    /// plus the cumulative defense telemetry. Answers in every task mode —
    /// the trust ledger tracks even when enforcement
    /// ([`TaskConfig::online_defense`]) is off.
    QueryWorkerTrust { task: String },
    /// Reads a task's triage state: the monotone decision counters and the
    /// auto-finalize audit trail depth. Answers in every task mode — a
    /// task without [`TaskConfig::triage`] reports all-zero counters.
    TriageStats { task: String },
    /// Removes a task, returning a final summary.
    CloseTask { task: String },
    /// Reads the runtime's per-shard counters: queue depth, requests
    /// served, votes ingested and service-time percentiles. Handled by the
    /// dispatcher itself under the sharded runtime (it never enters a
    /// mailbox, so it stays answerable under overload); a plain
    /// [`crate::ValidationService`] answers with a single synthetic shard
    /// describing itself.
    RuntimeStats,
    /// Reads per-shard liveness and supervision telemetry: whether each
    /// worker is alive, how often it was restarted, and how much time
    /// recovery has cost. Dispatcher-handled like [`Request::RuntimeStats`],
    /// so it keeps answering while shards are down or overloaded — that is
    /// the point of a health check. A plain [`crate::ValidationService`]
    /// reports one alive synthetic shard.
    Health,
    /// Arms a deterministic fault plan on the runtime (chaos testing).
    /// Dispatcher-handled; refused with
    /// [`ServiceError::FaultInjectionDisabled`] unless the runtime was
    /// built with [`crate::runtime::SupervisionConfig::fault_injection`] —
    /// a serial [`crate::ValidationService`] always refuses.
    FaultInject {
        /// The faults to arm, merged into whatever is already pending.
        plan: crate::fault::FaultPlan,
    },
}

impl Request {
    /// The task this request addresses — the routing key of the sharded
    /// runtime. `None` for service-global requests ([`Request::RuntimeStats`]),
    /// which the dispatcher answers itself.
    pub fn task_name(&self) -> Option<&str> {
        match self {
            Request::CreateTask { task, .. }
            | Request::SubmitVotes { task, .. }
            | Request::RequestGuidance { task }
            | Request::SubmitValidation { task, .. }
            | Request::QueryPosterior { task, .. }
            | Request::Snapshot { task }
            | Request::Restore { task, .. }
            | Request::SnapshotDelta { task }
            | Request::RestoreDelta { task, .. }
            | Request::QueryWorkerTrust { task }
            | Request::TriageStats { task }
            | Request::CloseTask { task } => Some(task),
            Request::RuntimeStats | Request::Health | Request::FaultInject { .. } => None,
        }
    }

    /// Whether a successful handling of this request mutates task state.
    /// Read-only requests are replayable for free; mutating requests are
    /// what the supervisor's per-task crash-recovery log records, and what
    /// the shed policy refuses to drop under overload.
    ///
    /// [`Request::Snapshot`] counts as mutating: taking a full snapshot
    /// re-anchors the task's client-visible delta log, and recovery must
    /// reproduce that anchor. [`Request::RequestGuidance`] counts too — it
    /// advances the strategy's RNG stream and the triage scorer.
    pub fn is_mutating(&self) -> bool {
        !matches!(
            self,
            Request::QueryPosterior { .. }
                | Request::QueryWorkerTrust { .. }
                | Request::TriageStats { .. }
                | Request::SnapshotDelta { .. }
                | Request::RuntimeStats
                | Request::Health
                | Request::FaultInject { .. }
        )
    }

    /// Whether this request may be shed under overload or mid-recovery.
    /// Only advisory reads whose loss costs a retry, never data: guidance
    /// picks and triage counters. Ingest and validation — the requests that
    /// carry crowd evidence — are never shed.
    pub fn is_sheddable(&self) -> bool {
        matches!(
            self,
            Request::RequestGuidance { .. } | Request::TriageStats { .. }
        )
    }
}

/// A complete, serializable checkpoint of one task: the session state plus
/// the three external-id mappings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSnapshot {
    /// Protocol version that produced the snapshot.
    pub protocol_version: u32,
    /// Whether the task keeps the delta-checkpoint event log
    /// ([`TaskConfig::wal`]); a restore re-enables it so the task keeps
    /// answering [`Request::SnapshotDelta`].
    pub wal: bool,
    /// Object external-id mapping, in dense-index order.
    pub objects: IdInterner,
    /// Worker external-id mapping, in dense-index order.
    pub workers: IdInterner,
    /// Label external-id mapping (fixed at task creation).
    pub labels: IdInterner,
    /// The full session checkpoint.
    pub session: SessionSnapshot,
}

/// An incremental task checkpoint: the session's event log since the
/// anchoring full [`TaskSnapshot`], plus the external-id mappings *at delta
/// time* — the log's dense votes may name objects and workers that arrived
/// after the anchor, so the anchor's interners do not cover them. Labels
/// are fixed at task creation and ride with the anchor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDelta {
    /// Protocol version that produced the delta.
    pub protocol_version: u32,
    /// Object external-id mapping at delta time (extends the anchor's).
    pub objects: IdInterner,
    /// Worker external-id mapping at delta time (extends the anchor's).
    pub workers: IdInterner,
    /// The session's event log since the anchor.
    pub session: SessionDelta,
}

/// One label's posterior probability, by external label id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelProbability {
    pub label: String,
    pub probability: f64,
}

/// Successful replies, one variant per request kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Reply to [`Request::CreateTask`].
    TaskCreated { task: String, num_labels: usize },
    /// Reply to [`Request::SubmitVotes`]: what the batch did to the session.
    VotesAccepted {
        task: String,
        votes: usize,
        new_objects: usize,
        new_workers: usize,
        em_iterations: usize,
        uncertainty: f64,
        /// External ids of workers the online defense tombstoned while
        /// absorbing this batch (empty unless the task enforces
        /// [`TaskConfig::online_defense`]).
        workers_excluded: Vec<String>,
        /// External ids of workers the online defense reinstated.
        workers_reinstated: Vec<String>,
    },
    /// Reply to [`Request::RequestGuidance`]; `object` is `None` when every
    /// known object has been validated (or the task holds no objects yet).
    Guidance {
        task: String,
        object: Option<String>,
    },
    /// Reply to [`Request::SubmitValidation`]. `flagged` lists objects whose
    /// earlier validations the §5.5 confirmation check now doubts.
    ValidationAccepted {
        task: String,
        object: String,
        flagged: Vec<String>,
        uncertainty: f64,
        validations: usize,
        /// External ids of workers the defense tombstoned as a consequence
        /// of this validation's evidence.
        workers_excluded: Vec<String>,
        /// External ids of workers this validation's evidence exonerated
        /// and reinstated.
        workers_reinstated: Vec<String>,
    },
    /// Reply to [`Request::QueryPosterior`]. `label` is the current
    /// deterministic label (expert-pinned when validated).
    Posterior {
        task: String,
        object: String,
        label: String,
        validated: bool,
        probabilities: Vec<LabelProbability>,
    },
    /// Reply to [`Request::Snapshot`].
    Snapshot {
        task: String,
        snapshot: Box<TaskSnapshot>,
    },
    /// Reply to [`Request::SnapshotDelta`].
    SnapshotDelta {
        task: String,
        delta: Box<TaskDelta>,
        /// Events in the delta — what the checkpoint's cost scales with.
        events: usize,
    },
    /// Reply to [`Request::Restore`] and [`Request::RestoreDelta`].
    Restored {
        task: String,
        objects: usize,
        workers: usize,
        validations: usize,
    },
    /// Reply to [`Request::CloseTask`].
    TaskClosed {
        task: String,
        votes: usize,
        validations: usize,
    },
    /// Reply to [`Request::QueryWorkerTrust`]: the task's online-defense
    /// state. `workers` is sorted by descending suspicion.
    WorkerTrust {
        task: String,
        workers: Vec<WorkerTrustEntry>,
        batches_observed: u64,
        low_kappa_batches: u64,
        exclusions: u64,
        reinstatements: u64,
    },
    /// Reply to [`Request::TriageStats`]: the task's triage decision
    /// counters and audit depth. `scored` counts scoring events (the same
    /// object is re-scored every time selection reconsiders it);
    /// `auto_finalized` counts distinct objects finalized without an
    /// expert query, which equals `audit_records`.
    TriageStats {
        task: String,
        enabled: bool,
        scored: u64,
        auto_finalized: u64,
        contentious: u64,
        escalated: u64,
        audit_records: usize,
    },
    /// Reply to [`Request::RuntimeStats`]: one entry per shard. A
    /// single-threaded [`crate::ValidationService`] reports itself as one
    /// shard with no mailbox.
    RuntimeStats { shards: Vec<ShardStats> },
    /// Reply to [`Request::Health`]: per-shard liveness and recovery
    /// telemetry.
    Health { shards: Vec<ShardHealth> },
    /// Reply to [`Request::FaultInject`]: how many faults the plan armed
    /// and how many are pending overall (armed but not yet fired).
    FaultInjected { armed: usize, pending: usize },
}

/// One shard's liveness report, as returned by [`Response::Health`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardHealth {
    /// Shard index (0-based).
    pub shard: usize,
    /// Whether the shard's worker thread is currently running. A dead
    /// shard is restarted lazily on its next dispatched request (or
    /// eagerly by this very health probe when supervision is enabled).
    pub alive: bool,
    /// Times the supervisor has restarted this shard's worker.
    pub restarts: u64,
    /// Panics the worker isolated (each kills the worker; the next
    /// dispatch restarts it from the last checkpoint).
    pub panics_isolated: u64,
    /// Requests currently waiting in the shard's mailbox.
    pub queue_depth: usize,
    /// Tasks with a crash-recovery checkpoint on this shard.
    pub checkpointed_tasks: usize,
    /// Total time this shard has spent rebuilding state after crashes, in
    /// microseconds.
    pub recovery_us: u64,
}

/// One worker's trust summary, as reported by [`Response::WorkerTrust`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerTrustEntry {
    /// The worker's external id.
    pub worker: String,
    /// Votes this worker has streamed in.
    pub votes: u64,
    /// Expert-validated answers of this worker.
    pub validations: u64,
    /// Current suspicion in `[0, 1]`.
    pub suspicion: f64,
    /// Whether the worker is currently tombstoned.
    pub excluded: bool,
    /// Whether the latest EM detection pass flagged the worker.
    pub em_flagged: bool,
}

/// One shard's counters, as reported by [`Response::RuntimeStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index (0-based).
    pub shard: usize,
    /// Live tasks owned by this shard.
    pub tasks: usize,
    /// Requests currently waiting in the shard's mailbox.
    pub queue_depth: usize,
    /// Mailbox capacity; 0 means no mailbox (in-process serial service).
    pub mailbox_capacity: usize,
    /// Requests this shard has finished processing.
    pub requests_served: u64,
    /// Votes accepted by this shard's tasks across all `SubmitVotes`.
    pub votes_ingested: u64,
    /// Requests rejected at the ingest boundary because the mailbox was
    /// full (only under [`crate::runtime::OverloadPolicy::Reject`]).
    pub overload_rejections: u64,
    /// Workers tombstoned by the online defense across this shard's tasks.
    pub workers_excluded: u64,
    /// Workers reinstated by the online defense across this shard's tasks.
    pub workers_reinstated: u64,
    /// Objects auto-finalized by triage across this shard's tasks — expert
    /// queries the predictor saved.
    pub objects_auto_finalized: u64,
    /// Objects escalated by triage scoring across this shard's tasks
    /// (scoring events that ended in neither finalization nor the
    /// contentious pool).
    pub objects_escalated: u64,
    /// Measured heap bytes of the answer storage across this shard's tasks
    /// (paged arenas, compact CSR mirrors and tombstone masks, for both
    /// the unmasked corpus and the masked active view).
    pub memory_bytes: u64,
    /// Median request service time (handling only, queue wait excluded),
    /// in microseconds; 0 until the shard has served a request.
    pub service_time_p50_us: f64,
    /// 99th-percentile request service time, in microseconds.
    pub service_time_p99_us: f64,
    /// Times the supervisor restarted this shard's worker after a crash.
    pub restarts: u64,
    /// Worker panics isolated by the shard's panic boundary (each one
    /// kills the worker and becomes a restart on the next dispatch).
    pub panics_isolated: u64,
    /// Objects brought back by checkpoint recovery across all restarts.
    pub recovered_objects: u64,
    /// Sheddable requests refused under overload or mid-recovery with
    /// [`ServiceError::Unavailable`] (`reason: Shed`).
    pub shed_requests: u64,
    /// Accepted requests that crashed with their worker and were flushed
    /// as [`ServiceError::Unavailable`] (`reason: RequestLost`) instead of
    /// going unanswered.
    pub requests_lost: u64,
}

/// Typed failures. Every malformed or inapplicable request maps to one of
/// these — no panic is reachable from any request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceError {
    /// The envelope spoke a protocol version this build does not.
    UnsupportedVersion { requested: u32, supported: u32 },
    /// A request line could not be parsed at all (serve driver only).
    MalformedRequest { message: String },
    /// The named task does not exist.
    TaskNotFound { task: String },
    /// A task with this name already exists (`CreateTask` / `Restore`).
    TaskExists { task: String },
    /// The task-creation input was invalid (empty name, empty or duplicate
    /// label set, inconsistent config).
    InvalidTask { message: String },
    /// A label id outside the task's fixed label set.
    UnknownLabel { task: String, label: String },
    /// An object id the task has never seen a vote for.
    UnknownObject { task: String, object: String },
    /// A snapshot that does not describe a consistent task state.
    InvalidSnapshot { message: String },
    /// An engine-level error surfaced through the model's typed errors.
    Model { message: String },
    /// Back-pressure: the mailbox of the shard owning this task is full and
    /// the runtime runs [`crate::runtime::OverloadPolicy::Reject`]. The
    /// request was **not** accepted; the client should wait
    /// `retry_after_ms` and resubmit the identical envelope (see the retry
    /// contract on [`PROTOCOL_VERSION`]). Task state is untouched.
    Overloaded {
        task: String,
        shard: usize,
        capacity: usize,
        /// Suggested back-off before resubmitting, derived from the
        /// shard's live queue depth and median service time. At least 1.
        retry_after_ms: u64,
    },
    /// The request could not be served right now; `reason` says why and
    /// whether it was ever accepted (see the retry contract on
    /// [`PROTOCOL_VERSION`]). Carries the same `retry_after_ms` hint as
    /// [`ServiceError::Overloaded`].
    Unavailable {
        task: String,
        shard: usize,
        retry_after_ms: u64,
        reason: UnavailableReason,
    },
    /// A [`Request::FaultInject`] reached a service or runtime built
    /// without fault injection enabled. Never armed, never retryable.
    FaultInjectionDisabled,
}

/// Why a request came back [`ServiceError::Unavailable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnavailableReason {
    /// A sheddable request ([`Request::is_sheddable`]) was refused because
    /// the shard's queue crossed the shed watermark. Not accepted; safe to
    /// resubmit.
    Shed,
    /// The shard was mid-recovery and could not accept work before the
    /// request's deadline. Not accepted; safe to resubmit.
    Recovering,
    /// The dispatch deadline expired while backing off on a full mailbox.
    /// Not accepted; safe to resubmit.
    DeadlineExceeded,
    /// The request was accepted but its shard crashed before replying; the
    /// owning task was rolled back to its acknowledged prefix, so the
    /// request left no state behind and may be resubmitted once.
    RequestLost,
    /// The request's own handling panicked (and killed the worker). The
    /// owning task was rolled back to its acknowledged prefix. Resubmitting
    /// the same request will likely panic again — clients should treat
    /// this as a poison request and report it.
    WorkerPanicked,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnsupportedVersion {
                requested,
                supported,
            } => write!(
                f,
                "protocol version {requested} not supported (this service speaks v{supported})"
            ),
            ServiceError::MalformedRequest { message } => {
                write!(f, "malformed request: {message}")
            }
            ServiceError::TaskNotFound { task } => write!(f, "no task named {task:?}"),
            ServiceError::TaskExists { task } => {
                write!(f, "a task named {task:?} already exists")
            }
            ServiceError::InvalidTask { message } => write!(f, "invalid task: {message}"),
            ServiceError::UnknownLabel { task, label } => {
                write!(f, "task {task:?} has no label {label:?}")
            }
            ServiceError::UnknownObject { task, object } => {
                write!(f, "task {task:?} has no object {object:?}")
            }
            ServiceError::InvalidSnapshot { message } => {
                write!(f, "invalid snapshot: {message}")
            }
            ServiceError::Model { message } => write!(f, "model error: {message}"),
            ServiceError::Overloaded {
                task,
                shard,
                capacity,
                retry_after_ms,
            } => write!(
                f,
                "shard {shard} owning task {task:?} is overloaded \
                 (mailbox of {capacity} is full); retry after {retry_after_ms}ms"
            ),
            ServiceError::Unavailable {
                task,
                shard,
                retry_after_ms,
                reason,
            } => {
                let why = match reason {
                    UnavailableReason::Shed => "request shed under overload",
                    UnavailableReason::Recovering => "shard is recovering from a crash",
                    UnavailableReason::DeadlineExceeded => "dispatch deadline exceeded",
                    UnavailableReason::RequestLost => "request lost in a shard crash",
                    UnavailableReason::WorkerPanicked => "request handling panicked",
                };
                write!(
                    f,
                    "shard {shard} could not serve task {task:?}: {why}; \
                     retry after {retry_after_ms}ms"
                )
            }
            ServiceError::FaultInjectionDisabled => {
                write!(f, "fault injection is not enabled on this service")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<crowdval_model::ModelError> for ServiceError {
    fn from(err: crowdval_model::ModelError) -> Self {
        ServiceError::Model {
            message: err.to_string(),
        }
    }
}

/// The outcome half of a [`Reply`]: the response or the typed error,
/// externally tagged (`{"Ok": …}` / `{"Err": …}`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplyOutcome {
    Ok(Response),
    Err(ServiceError),
}

/// What the serve driver writes per request line: the echoed correlation id
/// plus the outcome. The echo is what lets clients of the sharded runtime
/// match out-of-order replies back to their requests; lines that cannot be
/// parsed at all echo id 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reply {
    /// The [`RequestEnvelope::request_id`] this reply answers.
    pub request_id: u64,
    /// Response or typed error.
    pub outcome: ReplyOutcome,
}

impl Reply {
    /// A successful reply.
    pub fn ok(request_id: u64, response: Response) -> Self {
        Self {
            request_id,
            outcome: ReplyOutcome::Ok(response),
        }
    }

    /// A failed reply.
    pub fn err(request_id: u64, error: ServiceError) -> Self {
        Self {
            request_id,
            outcome: ReplyOutcome::Err(error),
        }
    }

    /// Borrowing view of the outcome as a `Result`.
    pub fn result(&self) -> Result<&Response, &ServiceError> {
        match &self.outcome {
            ReplyOutcome::Ok(response) => Ok(response),
            ReplyOutcome::Err(error) => Err(error),
        }
    }

    /// Consuming view of the outcome as a `Result`.
    pub fn into_result(self) -> Result<Response, ServiceError> {
        match self.outcome {
            ReplyOutcome::Ok(response) => Ok(response),
            ReplyOutcome::Err(error) => Err(error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips_through_json() {
        let envelope = RequestEnvelope::new(
            41,
            Request::SubmitVotes {
                task: "t".into(),
                votes: vec![ClientVote {
                    worker: "alice".into(),
                    object: "img-7".into(),
                    label: "cat".into(),
                }],
            },
        );
        let json = serde_json::to_string(&envelope).unwrap();
        let reread: RequestEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(envelope, reread);
        assert_eq!(reread.request_id, 41);
    }

    #[test]
    fn reply_echoes_the_request_id_on_the_wire() {
        let reply = Reply::ok(
            7,
            Response::Guidance {
                task: "t".into(),
                object: None,
            },
        );
        let json = serde_json::to_string(&reply).unwrap();
        assert!(json.contains("\"request_id\":7"));
        let reread: Reply = serde_json::from_str(&json).unwrap();
        assert_eq!(reread, reply);
        assert!(reread.result().is_ok());
    }

    #[test]
    fn runtime_stats_request_round_trips() {
        let envelope = RequestEnvelope::new(3, Request::RuntimeStats);
        assert_eq!(envelope.request.task_name(), None);
        let json = serde_json::to_string(&envelope).unwrap();
        let reread: RequestEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(envelope, reread);
    }

    #[test]
    fn errors_render_messages() {
        let e = ServiceError::UnsupportedVersion {
            requested: 9,
            supported: PROTOCOL_VERSION,
        };
        assert!(e.to_string().contains("version 9"));
        let e = ServiceError::UnknownLabel {
            task: "t".into(),
            label: "dog".into(),
        };
        assert!(e.to_string().contains("dog"));
        let e = ServiceError::Overloaded {
            task: "t".into(),
            shard: 3,
            capacity: 64,
            retry_after_ms: 12,
        };
        assert!(e.to_string().contains("shard 3"));
        assert!(e.to_string().contains("retry after 12ms"));
        let e = ServiceError::Unavailable {
            task: "t".into(),
            shard: 1,
            retry_after_ms: 5,
            reason: UnavailableReason::RequestLost,
        };
        assert!(e.to_string().contains("lost"));
        assert!(e.to_string().contains("retry after 5ms"));
        let e = ServiceError::FaultInjectionDisabled;
        assert!(e.to_string().contains("fault injection"));
    }

    #[test]
    fn v5_control_requests_round_trip_and_route_to_the_dispatcher() {
        let health = RequestEnvelope::new(9, Request::Health);
        assert_eq!(health.request.task_name(), None);
        assert!(!health.request.is_mutating());
        let mut plan = crate::fault::FaultPlan::new();
        plan.push(0, 3, crate::fault::FaultKind::Panic);
        let inject = RequestEnvelope::new(10, Request::FaultInject { plan });
        assert_eq!(inject.request.task_name(), None);
        for envelope in [health, inject] {
            let json = serde_json::to_string(&envelope).unwrap();
            let reread: RequestEnvelope = serde_json::from_str(&json).unwrap();
            assert_eq!(envelope, reread);
        }
    }

    #[test]
    fn shed_policy_spares_evidence_carrying_requests() {
        assert!(Request::RequestGuidance { task: "t".into() }.is_sheddable());
        assert!(Request::TriageStats { task: "t".into() }.is_sheddable());
        assert!(!Request::SubmitVotes {
            task: "t".into(),
            votes: vec![],
        }
        .is_sheddable());
        assert!(!Request::SubmitValidation {
            task: "t".into(),
            object: "o".into(),
            label: "l".into(),
        }
        .is_sheddable());
        // Snapshot re-anchors the delta log, guidance advances RNG streams:
        // both must count as mutating for crash recovery.
        assert!(Request::Snapshot { task: "t".into() }.is_mutating());
        assert!(Request::RequestGuidance { task: "t".into() }.is_mutating());
        assert!(!Request::SnapshotDelta { task: "t".into() }.is_mutating());
        assert!(!Request::QueryPosterior {
            task: "t".into(),
            object: "o".into(),
        }
        .is_mutating());
    }

    #[test]
    fn model_errors_convert() {
        let err: ServiceError = crowdval_model::ModelError::LabelOutOfRange {
            label: 7,
            num_labels: 2,
        }
        .into();
        assert!(matches!(err, ServiceError::Model { .. }));
    }
}
