//! Deterministic fault injection for the sharded runtime.
//!
//! Chaos testing is only worth anything here if it is **replayable**: the
//! repo's whole verification style is bit-identical replay, so injected
//! faults must fire at exact, seed-determined points in the request stream
//! rather than on wall-clock timers. A [`FaultPlan`] names faults by
//! *(shard, arrival index)* — "the 12th request shard 2 receives" — which is
//! deterministic per shard because each shard consumes its mailbox serially,
//! even though the interleaving *across* shards is not.
//!
//! The plan is armed through protocol v5's `FaultInject` request (dispatcher
//! -handled, gated behind
//! [`crate::runtime::SupervisionConfig::fault_injection`]) and consumed by
//! the shard workers through a shared [`FaultRegistry`]. Production builds
//! never arm a registry, and the per-arrival check is one relaxed atomic
//! increment plus a lock-free emptiness test.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// What a fault does to the shard worker when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The worker panics **after** handling the request but before
    /// acknowledging it: the in-flight mutation is lost and the supervisor
    /// must roll the task back to its acknowledged prefix. The hardest
    /// crash point — recovery must prove the half-applied mutation left no
    /// trace.
    Panic,
    /// The worker panics **before** handling the request: a clean crash
    /// with no in-flight mutation.
    Kill,
    /// The worker stalls for the given number of milliseconds before
    /// handling the request — a straggler, exercising deadlines and
    /// shedding rather than recovery.
    Stall {
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// The worker handles the request but its reply goes missing. Only
    /// applied to read-only requests — dropping the acknowledgement of a
    /// mutation would make "the set of acknowledged requests" ill-defined,
    /// which is the reference state recovery is proven against. The lost
    /// reply is detected at shutdown and flushed as a typed
    /// `Unavailable { reason: RequestLost }` error, so no correlation id
    /// ever goes unanswered.
    DropReply,
    /// The stored crash-recovery checkpoint of the request's task is torn
    /// (bytes bit-flipped) after the request is handled. The next recovery
    /// of that shard must surface a typed error for the task instead of
    /// resurrecting corrupt state — or panicking.
    TearCheckpoint,
}

/// One scheduled fault: fire `kind` when shard `shard` receives its
/// `arrival`-th request (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Target shard index.
    pub shard: usize,
    /// 1-based arrival index on that shard at which the fault fires.
    pub arrival: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, serializable schedule of faults.
///
/// Plans travel over the wire in the protocol v5 `FaultInject` request, so
/// a chaos run is fully described by (request stream, fault plan) — both
/// plain data, both replayable.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults, in no particular order.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules one fault.
    pub fn push(&mut self, shard: usize, arrival: u64, kind: FaultKind) {
        self.faults.push(FaultSpec {
            shard,
            arrival,
            kind,
        });
    }

    /// A seeded plan that crashes **every** shard at least once: each shard
    /// gets one `Panic` or `Kill` (seed-chosen) at a pseudo-random arrival
    /// in `[lo, hi]`. The same seed always yields the same plan.
    pub fn seeded_crashes(seed: u64, num_shards: usize, lo: u64, hi: u64) -> Self {
        let mut state = seed;
        let span = hi.max(lo) - lo + 1;
        let mut plan = Self::new();
        for shard in 0..num_shards {
            let arrival = lo + splitmix(&mut state) % span;
            let kind = if splitmix(&mut state).is_multiple_of(2) {
                FaultKind::Panic
            } else {
                FaultKind::Kill
            };
            plan.push(shard, arrival.max(1), kind);
        }
        plan
    }
}

/// SplitMix64 step — the repo's standard dependency-free PRNG.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-shard fault schedule plus the arrival counter it keys on.
struct ShardFaults {
    /// Requests this shard has received (monotone across restarts — the
    /// replacement worker keeps counting where the dead one stopped, so a
    /// plan can schedule faults past the first crash).
    arrivals: AtomicU64,
    /// Armed faults by arrival index.
    pending: Mutex<BTreeMap<u64, FaultKind>>,
    /// Fast path: false ⇒ skip the mutex entirely.
    armed: AtomicBool,
}

/// The shared fault schedule the shard workers consult on every arrival.
///
/// With nothing armed the per-request cost is one relaxed increment and one
/// relaxed load. [`FaultRegistry::arm`] merges additional plans at runtime.
pub struct FaultRegistry {
    shards: Vec<ShardFaults>,
}

impl FaultRegistry {
    /// A registry for `num_shards` shards with nothing armed.
    pub fn new(num_shards: usize) -> Self {
        Self {
            shards: (0..num_shards)
                .map(|_| ShardFaults {
                    arrivals: AtomicU64::new(0),
                    pending: Mutex::new(BTreeMap::new()),
                    armed: AtomicBool::new(false),
                })
                .collect(),
        }
    }

    /// Arms every fault in the plan whose shard exists, returning how many
    /// were armed. Arrival indices already consumed never fire (the counter
    /// only moves forward); arming the same (shard, arrival) twice keeps the
    /// later kind.
    pub fn arm(&self, plan: &FaultPlan) -> usize {
        let mut armed = 0;
        for spec in &plan.faults {
            let Some(shard) = self.shards.get(spec.shard) else {
                continue;
            };
            shard
                .pending
                .lock()
                .expect("fault schedule lock poisoned")
                .insert(spec.arrival, spec.kind);
            shard.armed.store(true, Ordering::Release);
            armed += 1;
        }
        armed
    }

    /// Records one request arrival on `shard` and returns the fault armed
    /// for exactly this arrival, if any. Called by the shard worker before
    /// handling each mailbox request.
    pub fn on_arrival(&self, shard: usize) -> Option<FaultKind> {
        let state = self.shards.get(shard)?;
        let arrival = state.arrivals.fetch_add(1, Ordering::Relaxed) + 1;
        if !state.armed.load(Ordering::Acquire) {
            return None;
        }
        let mut pending = state.pending.lock().expect("fault schedule lock poisoned");
        let fired = pending.remove(&arrival);
        if pending.is_empty() {
            state.armed.store(false, Ordering::Release);
        }
        fired
    }

    /// Faults still waiting to fire, across all shards.
    pub fn pending(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.pending
                    .lock()
                    .expect("fault schedule lock poisoned")
                    .len()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plan_is_deterministic_and_covers_every_shard() {
        let a = FaultPlan::seeded_crashes(42, 4, 3, 20);
        let b = FaultPlan::seeded_crashes(42, 4, 3, 20);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 4);
        for shard in 0..4 {
            let spec = a.faults.iter().find(|f| f.shard == shard).unwrap();
            assert!((3..=20).contains(&spec.arrival));
            assert!(matches!(spec.kind, FaultKind::Panic | FaultKind::Kill));
        }
        let c = FaultPlan::seeded_crashes(43, 4, 3, 20);
        assert_ne!(a, c);
    }

    #[test]
    fn registry_fires_at_the_exact_arrival_and_only_once() {
        let registry = FaultRegistry::new(2);
        let mut plan = FaultPlan::new();
        plan.push(1, 3, FaultKind::Panic);
        assert_eq!(registry.arm(&plan), 1);
        assert_eq!(registry.pending(), 1);

        assert_eq!(registry.on_arrival(1), None);
        assert_eq!(registry.on_arrival(1), None);
        assert_eq!(registry.on_arrival(1), Some(FaultKind::Panic));
        assert_eq!(registry.on_arrival(1), None);
        assert_eq!(registry.pending(), 0);
        // The untargeted shard never fires.
        for _ in 0..5 {
            assert_eq!(registry.on_arrival(0), None);
        }
    }

    #[test]
    fn arrival_counter_survives_restarts_conceptually() {
        // The counter lives in the registry, not the worker: consuming
        // arrivals 1..=2, then arming a fault at 4, still fires on the 4th
        // overall arrival even if a new worker does the consuming.
        let registry = FaultRegistry::new(1);
        registry.on_arrival(0);
        registry.on_arrival(0);
        let mut plan = FaultPlan::new();
        plan.push(0, 4, FaultKind::Kill);
        registry.arm(&plan);
        assert_eq!(registry.on_arrival(0), None); // 3rd
        assert_eq!(registry.on_arrival(0), Some(FaultKind::Kill)); // 4th
    }

    #[test]
    fn out_of_range_shard_is_ignored() {
        let registry = FaultRegistry::new(2);
        let mut plan = FaultPlan::new();
        plan.push(7, 1, FaultKind::DropReply);
        assert_eq!(registry.arm(&plan), 0);
        assert_eq!(registry.on_arrival(7), None);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::seeded_crashes(7, 3, 1, 9);
        let json = serde_json::to_string(&plan).unwrap();
        let reread: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, reread);
    }
}
