//! # crowdval-service
//!
//! The **multi-tenant front door** of the crowd-validation engine: a
//! [`ValidationService`] hosts any number of named validation tasks — each
//! an independent [`crowdval_core::ValidationSession`] running the paper's
//! guided-validation loop (SIGMOD 2015, §3–§5) — and drives them through a
//! versioned, serde-serializable command protocol.
//!
//! Three design rules separate this surface from the in-process Rust API:
//!
//! 1. **Versioned protocol, typed failures.** Requests arrive in a
//!    [`RequestEnvelope`] stamped with [`protocol::PROTOCOL_VERSION`]; every
//!    malformed or inapplicable input maps to a [`ServiceError`] variant. No
//!    request can panic the service — the engine's fallible surface
//!    (`try_build` / `ingest` / `integrate` / `restore`) carries errors as
//!    values all the way out.
//! 2. **Stable external ids.** Clients name workers, objects and labels
//!    with strings; per-task [`crowdval_model::IdInterner`]s translate to
//!    the dense indices the EM kernels run on. Index-assignment order (an
//!    artifact of arrival order under streaming churn) never leaks into the
//!    client contract.
//! 3. **Snapshot/restore.** A task checkpoints into a serializable
//!    [`TaskSnapshot`] — session state, posterior floats, strategy RNG
//!    streams and id mappings included — and a restored task resumes
//!    **bit-identically** to an uninterrupted run: same selection order,
//!    same posterior, same trace. Tasks created with [`TaskConfig::wal`]
//!    also answer [`Request::SnapshotDelta`] with an `O(events)`
//!    [`TaskDelta`] — an event log replayed on the anchoring full snapshot
//!    by [`Request::RestoreDelta`] — so steady-state checkpoints stop
//!    scaling with corpus size.
//!
//! For traffic beyond one core, the [`runtime::ShardRuntime`] shards the
//! registry across dedicated worker threads: each task name hashes to one
//! shard that **exclusively owns** it (no lock on the request path, per-task
//! request order preserved), mailboxes are bounded with back-pressure at
//! the ingest boundary, and replies — matched by the correlation id every
//! v2 envelope carries — may return out of submission order. Per-shard
//! counters surface through [`Request::RuntimeStats`]. With
//! [`SupervisionConfig::enabled`] the runtime also self-heals: worker
//! panics are isolated, dead shards restart from per-task crash
//! checkpoints (anchor snapshot + acknowledged-mutation log, recovering
//! exactly the acknowledged prefix), overload sheds advisory reads with
//! typed `Unavailable { retry_after_ms }` replies, and the deterministic
//! fault-injection hooks in [`fault`] drive all of it under test via
//! [`Request::FaultInject`] and [`Request::Health`].
//!
//! The `crowdval-serve` binary wraps either mode in a JSON-lines loop (one
//! request envelope per stdin line, one [`Reply`] per stdout line; see
//! [`serve::serve`]) for scripting and smoke testing; production embeddings
//! would put the same `ValidationService` or `ShardRuntime` behind their
//! transport of choice.

pub mod fault;
pub mod protocol;
pub mod runtime;
pub mod serve;
pub mod service;
mod shard;
pub mod supervisor;

pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use protocol::{
    ClientVote, LabelProbability, Reply, ReplyOutcome, Request, RequestEnvelope, Response,
    ServiceError, ShardHealth, ShardStats, StrategyChoice, TaskConfig, TaskDelta, TaskSnapshot,
    UnavailableReason, WorkerTrustEntry, MIN_SNAPSHOT_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
pub use runtime::{Dispatch, OverloadPolicy, RuntimeConfig, ShardRuntime};
pub use serve::{ServeOptions, ServeSummary};
pub use service::ValidationService;
pub use supervisor::{ShardFailure, ShutdownReport, SupervisionConfig};
