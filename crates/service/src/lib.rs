//! # crowdval-service
//!
//! The **multi-tenant front door** of the crowd-validation engine: a
//! [`ValidationService`] hosts any number of named validation tasks — each
//! an independent [`crowdval_core::ValidationSession`] running the paper's
//! guided-validation loop (SIGMOD 2015, §3–§5) — and drives them through a
//! versioned, serde-serializable command protocol.
//!
//! Three design rules separate this surface from the in-process Rust API:
//!
//! 1. **Versioned protocol, typed failures.** Requests arrive in a
//!    [`RequestEnvelope`] stamped with [`protocol::PROTOCOL_VERSION`]; every
//!    malformed or inapplicable input maps to a [`ServiceError`] variant. No
//!    request can panic the service — the engine's fallible surface
//!    (`try_build` / `ingest` / `integrate` / `restore`) carries errors as
//!    values all the way out.
//! 2. **Stable external ids.** Clients name workers, objects and labels
//!    with strings; per-task [`crowdval_model::IdInterner`]s translate to
//!    the dense indices the EM kernels run on. Index-assignment order (an
//!    artifact of arrival order under streaming churn) never leaks into the
//!    client contract.
//! 3. **Snapshot/restore.** A task checkpoints into a serializable
//!    [`TaskSnapshot`] — session state, posterior floats, strategy RNG
//!    streams and id mappings included — and a restored task resumes
//!    **bit-identically** to an uninterrupted run: same selection order,
//!    same posterior, same trace.
//!
//! The `crowdval-serve` binary wraps the service in a JSON-lines loop (one
//! request envelope per stdin line, one [`Reply`] per stdout line) for
//! scripting and smoke testing; production embeddings would put the same
//! `ValidationService` behind their transport of choice.

pub mod protocol;
pub mod service;

pub use protocol::{
    ClientVote, LabelProbability, Reply, Request, RequestEnvelope, Response, ServiceError,
    StrategyChoice, TaskConfig, TaskSnapshot, PROTOCOL_VERSION,
};
pub use service::ValidationService;
