//! Crash-recovery machinery shared by the shard workers and the
//! [`crate::runtime::ShardRuntime`] dispatcher.
//!
//! The recovery model is **acknowledged-prefix rollback**, built from three
//! pieces that live on the dispatcher side of the shard boundary (so they
//! survive the worker's death):
//!
//! * A [`CheckpointStore`] per shard holds, for every task, a serialized
//!   [`RecoveryAnchor`] (a full task snapshot plus the task's client-visible
//!   delta log, captured side-effect-free) and a **log of the acknowledged
//!   mutating requests** since that anchor. The worker appends a request to
//!   the log only *after* handling succeeded and re-anchors every
//!   [`SupervisionConfig::checkpoint_every`] mutations, so the store always
//!   describes exactly the state a client could know about from `Ok`
//!   replies.
//! * A [`PendingLedger`] per shard records every accepted request until its
//!   reply is sent. Whatever is left in the ledger when a worker dies (the
//!   in-flight request, everything queued behind it, any injected
//!   reply drops) is flushed as a typed `Unavailable` reply — no
//!   correlation id ever goes unanswered.
//! * A [`PanicSlot`] per shard carries the isolated panic payload out of
//!   the dead worker, so shutdown can report typed [`ShardFailure`]s
//!   instead of re-panicking on `join`.
//!
//! Because the log holds only acknowledged mutations and every fault point
//! fires either before handling or between handling and acknowledgement,
//! [`rebuild_service`] restores precisely the acked prefix: the chaos
//! harness proves the recovered state bit-identical to a serial replay of
//! the `Ok`-replied requests.

use crate::protocol::{Request, RequestEnvelope, ServiceError};
use crate::service::ValidationService;
use crowdval_core::snapshot::SessionDelta;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use crate::protocol::TaskSnapshot;

/// Supervision knobs of the sharded runtime. Off by default: an
/// unsupervised runtime behaves exactly like the pre-supervision one (plus
/// panic isolation, which is unconditional), so the dispatch hot path and
/// the throughput gates are untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisionConfig {
    /// Master switch: checkpointing, automatic restarts, deadlines and
    /// shedding. When off, a dead shard stays dead (its requests get typed
    /// `Unavailable` replies) and no checkpoints are taken.
    pub enabled: bool,
    /// Re-anchor a task's recovery checkpoint after this many logged
    /// mutations. Smaller = cheaper recovery replay, more frequent
    /// snapshot stalls on the worker.
    pub checkpoint_every: usize,
    /// Dispatch deadline for correctness-critical requests backing off on
    /// a full mailbox, in milliseconds.
    pub deadline_ms: u64,
    /// Retry attempts (exponential back-off, 1 ms base) within the
    /// deadline before a `DeadlineExceeded` reply.
    pub max_retries: u32,
    /// Queue-depth fraction of the mailbox capacity above which sheddable
    /// requests ([`Request::is_sheddable`]) are refused with
    /// `Unavailable { reason: Shed }`.
    pub shed_watermark: f64,
    /// Whether `FaultInject` requests arm the runtime's fault registry.
    /// Never enable outside chaos tests.
    pub fault_injection: bool,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            checkpoint_every: 32,
            deadline_ms: 2000,
            max_retries: 8,
            shed_watermark: 0.75,
            fault_injection: false,
        }
    }
}

impl SupervisionConfig {
    /// Supervision on, fault injection off — the production preset.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Supervision and fault injection both on — the chaos-test preset.
    pub fn chaos() -> Self {
        Self {
            enabled: true,
            fault_injection: true,
            ..Self::default()
        }
    }
}

/// A crash-recovery anchor: the full task checkpoint plus the task's
/// client-visible delta log at anchor time, captured **side-effect-free**
/// (the client's `SnapshotDelta` anchor does not move), so recovery can put
/// both back exactly as they were.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryAnchor {
    /// The task snapshot (same shape operator-driven `Snapshot` returns).
    pub snapshot: TaskSnapshot,
    /// The client-visible delta log at anchor time, when the task logs
    /// deltas ([`crate::protocol::TaskConfig::wal`]).
    pub wal: Option<SessionDelta>,
}

/// Serializes an anchor to bytes for the [`CheckpointStore`]. Bytes rather
/// than the live structure so torn-checkpoint faults (and, in a real
/// deployment, torn disk writes) are representable — recovery must survive
/// arbitrary corruption of this buffer with a typed error.
pub fn encode_anchor(anchor: &RecoveryAnchor) -> Vec<u8> {
    serde_json::to_string(anchor)
        .expect("recovery anchors are plain serde data")
        .into_bytes()
}

/// Parses anchor bytes back, mapping any corruption to a typed error.
pub fn decode_anchor(bytes: &[u8]) -> Result<RecoveryAnchor, ServiceError> {
    let text = std::str::from_utf8(bytes).map_err(|e| ServiceError::InvalidSnapshot {
        message: format!("recovery anchor is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| ServiceError::InvalidSnapshot {
        message: format!("recovery anchor does not parse: {e}"),
    })
}

/// One task's recovery state: the anchor bytes plus the acknowledged
/// mutating requests since the anchor.
#[derive(Debug, Clone)]
pub struct TaskCheckpoint {
    /// Serialized [`RecoveryAnchor`].
    pub anchor: Vec<u8>,
    /// Acknowledged mutating requests since the anchor, in service order.
    pub log: Vec<Request>,
}

/// The per-shard map of task checkpoints. Shared between the worker (which
/// maintains it) and the dispatcher (which rebuilds from it after a crash);
/// the lock is uncontended outside restarts.
#[derive(Default)]
pub struct CheckpointStore {
    tasks: Mutex<BTreeMap<String, TaskCheckpoint>>,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a fresh anchor for `task`, clearing its log.
    pub fn set_anchor(&self, task: &str, anchor: Vec<u8>) {
        self.lock().insert(
            task.to_string(),
            TaskCheckpoint {
                anchor,
                log: Vec::new(),
            },
        );
    }

    /// Appends an acknowledged mutating request to `task`'s log, returning
    /// the new log length — `None` when the task has no checkpoint yet
    /// (the caller should anchor instead).
    pub fn append(&self, task: &str, request: Request) -> Option<usize> {
        let mut tasks = self.lock();
        let checkpoint = tasks.get_mut(task)?;
        checkpoint.log.push(request);
        Some(checkpoint.log.len())
    }

    /// Whether `task` has a checkpoint.
    pub fn contains(&self, task: &str) -> bool {
        self.lock().contains_key(task)
    }

    /// Drops `task`'s checkpoint (task closed, or its anchor found torn).
    pub fn remove(&self, task: &str) {
        self.lock().remove(task);
    }

    /// Checkpointed task count.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the store holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Bit-flips a byte in the middle of `task`'s stored anchor — the
    /// torn-checkpoint fault. Returns whether there was an anchor to tear.
    pub fn tear(&self, task: &str) -> bool {
        let mut tasks = self.lock();
        let Some(checkpoint) = tasks.get_mut(task) else {
            return false;
        };
        if checkpoint.anchor.is_empty() {
            return false;
        }
        let mid = checkpoint.anchor.len() / 2;
        checkpoint.anchor[mid] ^= 0x5a;
        true
    }

    /// A point-in-time copy of every checkpoint, for recovery.
    pub fn checkpoints(&self) -> BTreeMap<String, TaskCheckpoint> {
        self.lock().clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, TaskCheckpoint>> {
        // The store must stay usable after a worker panicked mid-update;
        // the map is always structurally consistent (every operation is a
        // single insert/push/remove), so the poison flag carries no
        // information here.
        match self.tasks.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// The per-shard ledger of accepted-but-unanswered requests. The
/// dispatcher records `(request_id, task)` before enqueueing; the worker
/// removes the entry immediately before sending the reply. Entries left
/// behind by a dead worker are exactly the requests that lost their reply.
#[derive(Default)]
pub struct PendingLedger {
    entries: Mutex<Vec<(u64, String)>>,
}

impl PendingLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an accepted request.
    pub fn push(&self, request_id: u64, task: &str) {
        self.lock().push((request_id, task.to_string()));
    }

    /// Removes the oldest entry with this id (ids repeat only if the
    /// client reuses them; oldest-first keeps flushes well-defined then).
    pub fn remove(&self, request_id: u64) {
        let mut entries = self.lock();
        if let Some(pos) = entries.iter().position(|(id, _)| *id == request_id) {
            entries.remove(pos);
        }
    }

    /// Takes every outstanding entry — the reply-less requests a crash or
    /// shutdown must flush as `Unavailable`.
    pub fn drain(&self) -> Vec<(u64, String)> {
        std::mem::take(&mut *self.lock())
    }

    /// Outstanding entry count.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(u64, String)>> {
        match self.entries.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// The channel carrying a panic payload out of a dead worker: the worker's
/// panic boundary records the rendered payload here and lets the thread
/// exit cleanly, so `join` never re-panics.
#[derive(Default)]
pub struct PanicSlot {
    message: Mutex<Option<String>>,
}

impl PanicSlot {
    /// An empty slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a panic payload (the first one wins; a worker dies on its
    /// first isolated panic, so later calls would be a logic error
    /// upstream, not data loss).
    pub fn record(&self, payload: &(dyn std::any::Any + Send)) {
        let message = panic_message(payload);
        let mut slot = match self.message.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        slot.get_or_insert(message);
    }

    /// Takes the recorded payload, if any.
    pub fn take(&self) -> Option<String> {
        match self.message.lock() {
            Ok(mut guard) => guard.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        }
    }
}

/// Renders a panic payload the way the default hook does.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One shard worker's isolated panic, reported by
/// [`crate::runtime::ShardRuntime::shutdown`] instead of re-panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// The shard whose worker died.
    pub shard: usize,
    /// The rendered panic payload.
    pub panic: String,
}

impl fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {} worker panicked: {}", self.shard, self.panic)
    }
}

/// What [`crate::runtime::ShardRuntime::shutdown`] observed: every panic
/// that was still unresolved at shutdown (supervised runtimes usually have
/// none — the next dispatch restarts a dead shard) plus how many accepted
/// requests had to be flushed with `Unavailable` replies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Worker panics pending at shutdown, in shard order.
    pub failures: Vec<ShardFailure>,
    /// Accepted requests flushed as `Unavailable { reason: RequestLost }`.
    pub requests_flushed: usize,
}

impl ShutdownReport {
    /// No failures, nothing flushed — the boring, desirable outcome.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.requests_flushed == 0
    }
}

/// The result of rebuilding a shard's service from its checkpoints.
#[derive(Debug, Default)]
pub struct RecoveryOutcome {
    /// Tasks restored (anchor decoded, log replayed).
    pub recovered_tasks: usize,
    /// Objects across the restored tasks.
    pub recovered_objects: u64,
    /// Tasks whose checkpoint could not be used (torn anchor, replay
    /// failure), with the typed reason. Dropped from the store — clients
    /// get `TaskNotFound` and must restore from their own snapshots.
    pub dropped: Vec<(String, ServiceError)>,
}

/// Rebuilds a fresh [`ValidationService`] holding every recoverable task in
/// the store: decode each anchor, install it, replay the acknowledged
/// mutation log in order. Unrecoverable tasks are removed from the store so
/// the failure is paid once, not on every restart.
pub fn rebuild_service(store: &CheckpointStore) -> (ValidationService, RecoveryOutcome) {
    let mut service = ValidationService::new();
    let mut outcome = RecoveryOutcome::default();
    for (task, checkpoint) in store.checkpoints() {
        let recovered = decode_anchor(&checkpoint.anchor)
            .and_then(|anchor| service.install_recovered(&task, anchor))
            .and_then(|objects| {
                for request in &checkpoint.log {
                    // Replaying an acknowledged request cannot fail — it
                    // succeeded against this exact state before the crash.
                    // If it does (a torn log would be a store bug), drop
                    // the task rather than keep half of it.
                    service
                        .handle(&RequestEnvelope::latest(request.clone()))
                        .map_err(|e| ServiceError::InvalidSnapshot {
                            message: format!("checkpoint log replay failed: {e}"),
                        })?;
                }
                Ok(objects)
            });
        match recovered {
            Ok(objects) => {
                outcome.recovered_tasks += 1;
                outcome.recovered_objects += objects as u64;
            }
            Err(error) => {
                service.evict_task(&task);
                store.remove(&task);
                outcome.dropped.push((task, error));
            }
        }
    }
    (service, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ClientVote, Response, TaskConfig};

    fn seeded_service() -> ValidationService {
        let mut service = ValidationService::new();
        service
            .handle_request(&Request::CreateTask {
                task: "t".into(),
                labels: vec!["yes".into(), "no".into()],
                config: TaskConfig {
                    wal: true,
                    ..TaskConfig::default()
                },
            })
            .unwrap();
        service
            .handle_request(&Request::SubmitVotes {
                task: "t".into(),
                votes: (0..3)
                    .flat_map(|w| {
                        (0..4).map(move |o| ClientVote {
                            worker: format!("w{w}"),
                            object: format!("o{o}"),
                            label: if o % 2 == 0 { "yes" } else { "no" }.into(),
                        })
                    })
                    .collect(),
            })
            .unwrap();
        service
    }

    #[test]
    fn anchor_round_trips_and_recovery_restores_the_task() {
        let service = seeded_service();
        let anchor = service.checkpoint_task("t").unwrap();
        let bytes = encode_anchor(&anchor);
        assert_eq!(decode_anchor(&bytes).unwrap(), anchor);

        let store = CheckpointStore::new();
        store.set_anchor("t", bytes);
        let (mut rebuilt, outcome) = rebuild_service(&store);
        assert_eq!(outcome.recovered_tasks, 1);
        assert_eq!(outcome.recovered_objects, 4);
        assert!(outcome.dropped.is_empty());
        assert!(matches!(
            rebuilt.handle_request(&Request::QueryPosterior {
                task: "t".into(),
                object: "o1".into(),
            }),
            Ok(Response::Posterior { .. })
        ));
    }

    #[test]
    fn background_checkpoints_do_not_move_the_client_delta_anchor() {
        let mut service = seeded_service();
        // The client's delta log has pending events (the ingest).
        let before = match service
            .handle_request(&Request::SnapshotDelta { task: "t".into() })
            .unwrap()
        {
            Response::SnapshotDelta { events, .. } => events,
            other => panic!("unexpected reply {other:?}"),
        };
        assert!(before >= 1);
        // A background checkpoint must not clear them...
        let anchor = service.checkpoint_task("t").unwrap();
        let after = match service
            .handle_request(&Request::SnapshotDelta { task: "t".into() })
            .unwrap()
        {
            Response::SnapshotDelta { events, .. } => events,
            other => panic!("unexpected reply {other:?}"),
        };
        assert_eq!(before, after);
        // ...and a recovered task carries the same pending events.
        let store = CheckpointStore::new();
        store.set_anchor("t", encode_anchor(&anchor));
        let (mut rebuilt, _) = rebuild_service(&store);
        let recovered = match rebuilt
            .handle_request(&Request::SnapshotDelta { task: "t".into() })
            .unwrap()
        {
            Response::SnapshotDelta { events, .. } => events,
            other => panic!("unexpected reply {other:?}"),
        };
        assert_eq!(recovered, before);
    }

    #[test]
    fn log_replay_reproduces_post_anchor_mutations() {
        let mut live = seeded_service();
        let store = CheckpointStore::new();
        store.set_anchor("t", encode_anchor(&live.checkpoint_task("t").unwrap()));
        let extra = Request::SubmitVotes {
            task: "t".into(),
            votes: vec![ClientVote {
                worker: "w9".into(),
                object: "o9".into(),
                label: "yes".into(),
            }],
        };
        live.handle_request(&extra).unwrap();
        assert_eq!(store.append("t", extra), Some(1));

        let (mut rebuilt, outcome) = rebuild_service(&store);
        assert_eq!(outcome.recovered_tasks, 1);
        let snap = |s: &mut ValidationService| match s
            .handle_request(&Request::Snapshot { task: "t".into() })
            .unwrap()
        {
            Response::Snapshot { snapshot, .. } => snapshot,
            other => panic!("unexpected reply {other:?}"),
        };
        assert_eq!(snap(&mut live), snap(&mut rebuilt));
    }

    #[test]
    fn torn_anchor_is_a_typed_drop_not_a_panic() {
        let service = seeded_service();
        let store = CheckpointStore::new();
        store.set_anchor("t", encode_anchor(&service.checkpoint_task("t").unwrap()));
        assert!(store.tear("t"));
        let (mut rebuilt, outcome) = rebuild_service(&store);
        assert_eq!(outcome.recovered_tasks, 0);
        assert_eq!(outcome.dropped.len(), 1);
        assert_eq!(outcome.dropped[0].0, "t");
        assert!(matches!(
            outcome.dropped[0].1,
            ServiceError::InvalidSnapshot { .. } | ServiceError::Model { .. }
        ));
        // The torn checkpoint is gone; the task is simply absent.
        assert!(store.is_empty());
        assert!(matches!(
            rebuilt.handle_request(&Request::RequestGuidance { task: "t".into() }),
            Err(ServiceError::TaskNotFound { .. })
        ));
    }

    #[test]
    fn ledger_tracks_only_unanswered_requests() {
        let ledger = PendingLedger::new();
        ledger.push(1, "a");
        ledger.push(2, "b");
        ledger.push(3, "a");
        ledger.remove(2);
        assert_eq!(ledger.len(), 2);
        let mut drained = ledger.drain();
        drained.sort();
        assert_eq!(drained, vec![(1, "a".to_string()), (3, "a".to_string())]);
        assert!(ledger.is_empty());
    }

    #[test]
    fn panic_slot_renders_payloads() {
        let slot = PanicSlot::new();
        let payload: Box<dyn std::any::Any + Send> = Box::new("boom");
        slot.record(payload.as_ref());
        assert_eq!(slot.take().as_deref(), Some("boom"));
        assert_eq!(slot.take(), None);
    }
}
