//! Agreement-prediction triage (ROADMAP item 1): an online convergence
//! predictor that rations the expert budget.
//!
//! The paper's objective is minimizing *expert effort* — every expert query
//! is the scarce resource. This crate adds the missing decision layer on top
//! of the scoring engine: a per-object prediction of "will the crowd converge
//! to the right label without an expert?", computed from signals the
//! validation session already maintains:
//!
//! * **posterior entropy** — the `shortlist.rs` entropy cache,
//! * **vote count** and **vote margin** — the visible vote multiset
//!   ([`crowdval_model::VoteTally`]),
//! * **worker-mix trust** — the streaming trust ledger of the voters,
//! * **posterior churn** — how much the object's posterior row still moves
//!   across EM rounds (the aggregation crate's `ChurnTracker`).
//!
//! A [`ConvergencePredictor`] (online logistic regression, SGD, deterministic
//! seeding, snapshot-serializable weights) maps a [`TriageFeatures`] vector to
//! a convergence probability, and the [`TriageConfig`] thresholds turn that
//! score into one of three [`TriageDecision`]s:
//!
//! * **auto-finalize** — predicted unanimous *and* above a posterior
//!   confidence floor with enough votes: the session records the modal label
//!   as the validation outcome without spending an expert query, leaving an
//!   [`AuditRecord`] behind;
//! * **contentious** — predicted to stay disputed: these objects form the
//!   pre-filtered candidate pool so information-gain fan-out only runs where
//!   an expert is actually worth the effort;
//! * **escalate** — everything in between rides the normal selection path.
//!
//! The crate deliberately depends only on `crowdval-model` and serde: the
//! session (in `crowdval-core`) assembles the features from its caches and
//! hands them over, which keeps this layer a pure, deterministic function of
//! its inputs — the property the snapshot/restore bit-identity tests lean on.

pub mod features;
pub mod policy;
pub mod predictor;

pub use features::TriageFeatures;
pub use policy::{
    AuditRecord, TriageConfig, TriageCounters, TriageDecision, TriageState, TriageVerdict,
};
pub use predictor::ConvergencePredictor;
