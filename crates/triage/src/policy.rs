//! The triage policy: thresholds over the predictor score, the mutable
//! per-session triage state (predictor + audit trail + counters), and the
//! three-way decision the session acts on.

use crate::features::TriageFeatures;
use crate::predictor::ConvergencePredictor;
use crowdval_model::{LabelId, ObjectId};
use serde::{Deserialize, Serialize};

/// The triage knobs. Lives inside the session's `ProcessConfig`, so it is
/// `Copy` and carries no model weights — those live in [`TriageState`],
/// which snapshots separately.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriageConfig {
    /// Master switch; everything below is inert when false (the default —
    /// triage is strictly opt-in).
    pub enabled: bool,
    /// Predictor score at or above which an object becomes an
    /// auto-finalize candidate while the expert anchor set is still small
    /// (fewer than [`TriageConfig::relax_after_validations`] validations).
    pub finalize_threshold: f64,
    /// Finalize threshold once `relax_after_validations` expert anchors
    /// exist. EM confusion estimates — and with them the predictor's
    /// entropy and churn inputs — are far more trustworthy once every
    /// worker has a handful of anchored answers, so the bar can drop
    /// without admitting the confidently-wrong early finalizations.
    pub relaxed_threshold: f64,
    /// Number of expert validations after which the relaxed threshold
    /// applies. Calibrated against the anchors-per-worker point where EM
    /// score trajectories stop crashing on re-anchor (see ROADMAP).
    pub relax_after_validations: u32,
    /// The posterior modal probability must *also* reach this floor before
    /// an auto-finalize happens — the predictor alone never finalizes.
    pub confidence_floor: f64,
    /// Minimum visible votes before an object may be auto-finalized.
    pub min_votes: u32,
    /// Minimum raw vote margin (top minus runner-up, over visible votes)
    /// for an auto-finalize. The EM posterior saturates near 1.0 even on
    /// near-tied vote splits once it trusts a clique of workers; the raw
    /// margin is the one feature that confidence inflation cannot touch,
    /// so it gets its own hard floor in the conjunction.
    pub min_margin: f64,
    /// Predictor score at or below which an object counts as contentious
    /// and joins the pre-filtered guidance pool.
    pub contentious_ceiling: f64,
    /// Expert validations that must exist before the triage pass runs at
    /// all. Before any expert anchors, the EM confusion estimates — and
    /// with them the posterior confidence the auto-finalize rule leans
    /// on — are unvalidated extrapolation; the warm-up keeps the risky
    /// early finalizations off the table.
    pub warmup_validations: u32,
    /// SGD learning rate used by the sim training harness.
    pub learning_rate: f64,
    /// Seed for deterministic predictor initialization when training from
    /// scratch.
    pub seed: u64,
}

impl Default for TriageConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            finalize_threshold: 0.955,
            relaxed_threshold: 0.92,
            relax_after_validations: 28,
            confidence_floor: 0.97,
            min_votes: 4,
            min_margin: 0.5,
            contentious_ceiling: 0.5,
            warmup_validations: 8,
            learning_rate: 0.05,
            seed: 0x7419_5eed,
        }
    }
}

impl TriageConfig {
    /// The calibrated preset: defaults with the master switch on. This is
    /// what `TaskConfig.triage = true` maps to at the service layer.
    pub fn calibrated() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// The finalize threshold in force after `validated` expert
    /// validations: strict while EM rests on few anchors, relaxed once
    /// `relax_after_validations` anchors exist.
    pub fn finalize_threshold_at(&self, validated: u64) -> f64 {
        if validated >= u64::from(self.relax_after_validations) {
            self.relaxed_threshold
        } else {
            self.finalize_threshold
        }
    }

    /// Observe-only preset: triage is on — the features are assembled, the
    /// churn tracker is fed, everything is scored — but the thresholds are
    /// pushed out of reach (scores live in `(0, 1)`), so nothing is ever
    /// auto-finalized or pre-filtered and the selection order is untouched.
    /// This is what the sim training harness runs sessions under while it
    /// collects labeled feature vectors.
    pub fn observe_only() -> Self {
        Self {
            enabled: true,
            finalize_threshold: 2.0,
            relaxed_threshold: 2.0,
            contentious_ceiling: -1.0,
            ..Self::default()
        }
    }
}

/// What the policy tells the session to do with one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TriageDecision {
    /// Record the posterior's modal label as the validation outcome without
    /// spending an expert query; an [`AuditRecord`] must be written.
    AutoFinalize,
    /// Predicted to stay disputed: keep in the pre-filtered guidance pool
    /// so information-gain fan-out concentrates here.
    Contentious,
    /// Neither confident enough to finalize nor contentious enough to
    /// prioritize: normal selection path.
    Escalate,
}

/// A decision together with the score that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriageVerdict {
    pub decision: TriageDecision,
    /// The predictor's convergence probability; NaN features yield 0.
    pub score: f64,
}

/// One auto-finalize, as recorded in the audit trail: which object got
/// which label, at what score and posterior confidence, on which
/// validation iteration — plus the exact feature vector the decision saw,
/// so a finalization can be audited without replaying the session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    pub object: ObjectId,
    pub label: LabelId,
    pub score: f64,
    pub confidence: f64,
    pub iteration: u64,
    pub features: TriageFeatures,
}

/// Monotone triage counters. `scored` counts scoring events, not distinct
/// objects — the same object is re-scored whenever selection reconsiders
/// it; the decision counters move in lockstep with `scored`, while
/// `auto_finalized` counts actual finalizations (one per object, ever).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TriageCounters {
    pub scored: u64,
    pub auto_finalized: u64,
    pub contentious: u64,
    pub escalated: u64,
}

/// The serializable per-session triage state: the predictor, the
/// auto-finalize audit trail and the counters. Stored as its own field on
/// the session snapshot so triage decisions survive snapshot/restore
/// bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriageState {
    predictor: ConvergencePredictor,
    audit: Vec<AuditRecord>,
    counters: TriageCounters,
}

impl Default for TriageState {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl TriageState {
    /// State around the calibrated default predictor — what a session uses
    /// when triage is switched on without an installed custom model.
    pub fn calibrated() -> Self {
        Self {
            predictor: ConvergencePredictor::calibrated(),
            audit: Vec::new(),
            counters: TriageCounters::default(),
        }
    }

    /// State around a fresh untrained predictor seeded from the config —
    /// the starting point of the sim training harness.
    pub fn untrained(config: &TriageConfig) -> Self {
        Self {
            predictor: ConvergencePredictor::new(config.seed),
            audit: Vec::new(),
            counters: TriageCounters::default(),
        }
    }

    /// Scores one object and classifies it against the thresholds; bumps
    /// the scoring counters. `validated` is the number of expert
    /// validations so far — it selects the strict or relaxed finalize
    /// threshold. Non-finite features escalate unconditionally (with score
    /// 0) instead of reaching the predictor.
    pub fn decide(
        &mut self,
        config: &TriageConfig,
        features: &TriageFeatures,
        modal_probability: f64,
        validated: u64,
    ) -> TriageVerdict {
        self.counters.scored += 1;
        if !features.is_finite() || !modal_probability.is_finite() {
            self.counters.escalated += 1;
            return TriageVerdict {
                decision: TriageDecision::Escalate,
                score: 0.0,
            };
        }
        let score = self.predictor.score(features);
        let decision = if score >= config.finalize_threshold_at(validated)
            && modal_probability >= config.confidence_floor
            && features.votes >= config.min_votes
            && features.margin >= config.min_margin
        {
            TriageDecision::AutoFinalize
        } else if score <= config.contentious_ceiling {
            self.counters.contentious += 1;
            TriageDecision::Contentious
        } else {
            self.counters.escalated += 1;
            TriageDecision::Escalate
        };
        TriageVerdict { decision, score }
    }

    /// Appends an auto-finalize to the audit trail and bumps the counter.
    /// The session calls this exactly once per finalized object, after it
    /// has recorded the label.
    pub fn record_auto_finalize(&mut self, record: AuditRecord) {
        self.audit.push(record);
        self.counters.auto_finalized += 1;
    }

    /// The auto-finalize audit trail, in finalization order.
    pub fn audit(&self) -> &[AuditRecord] {
        &self.audit
    }

    /// The monotone counters.
    pub fn counters(&self) -> TriageCounters {
        self.counters
    }

    /// The current predictor.
    pub fn predictor(&self) -> &ConvergencePredictor {
        &self.predictor
    }

    /// Mutable access for the sim training harness.
    pub fn predictor_mut(&mut self) -> &mut ConvergencePredictor {
        &mut self.predictor
    }

    /// Installs an externally trained predictor (e.g. from the sim
    /// harness), keeping audit trail and counters.
    pub fn set_predictor(&mut self, predictor: ConvergencePredictor) {
        self.predictor = predictor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settled() -> TriageFeatures {
        TriageFeatures {
            entropy: 0.02,
            votes: 8,
            margin: 1.0,
            trust: 0.9,
            churn: 0.0,
        }
    }

    fn disputed() -> TriageFeatures {
        TriageFeatures {
            entropy: 0.95,
            votes: 3,
            margin: 0.1,
            trust: 0.5,
            churn: 1.0,
        }
    }

    #[test]
    fn triage_is_off_by_default() {
        assert!(!TriageConfig::default().enabled);
        assert!(TriageConfig::calibrated().enabled);
    }

    #[test]
    fn settled_objects_auto_finalize_and_disputed_objects_stay_contentious() {
        let config = TriageConfig::calibrated();
        let mut state = TriageState::calibrated();
        let v = state.decide(&config, &settled(), 0.97, 10);
        assert_eq!(v.decision, TriageDecision::AutoFinalize);
        assert!(v.score >= config.finalize_threshold);
        let v = state.decide(&config, &disputed(), 0.55, 10);
        assert_eq!(v.decision, TriageDecision::Contentious);
        let c = state.counters();
        assert_eq!((c.scored, c.contentious, c.escalated), (2, 1, 0));
    }

    #[test]
    fn confidence_floor_and_vote_floor_block_finalization() {
        let config = TriageConfig::calibrated();
        let mut state = TriageState::calibrated();
        // High score but the posterior is not confident enough.
        let v = state.decide(&config, &settled(), 0.80, 10);
        assert_ne!(v.decision, TriageDecision::AutoFinalize);
        // High score and confident posterior, but too few votes.
        let mut thin = settled();
        thin.votes = config.min_votes - 1;
        let v = state.decide(&config, &thin, 0.97, 10);
        assert_ne!(v.decision, TriageDecision::AutoFinalize);
    }

    #[test]
    fn non_finite_features_escalate() {
        let config = TriageConfig::calibrated();
        let mut state = TriageState::calibrated();
        let mut f = settled();
        f.entropy = f64::NAN;
        let v = state.decide(&config, &f, 0.99, 10);
        assert_eq!(v.decision, TriageDecision::Escalate);
        assert_eq!(v.score, 0.0);
        let v = state.decide(&config, &settled(), f64::NAN, 10);
        assert_eq!(v.decision, TriageDecision::Escalate);
    }

    #[test]
    fn decisions_are_deterministic() {
        let config = TriageConfig::calibrated();
        let mut a = TriageState::calibrated();
        let mut b = TriageState::calibrated();
        for f in [settled(), disputed()] {
            let va = a.decide(&config, &f, 0.9, 10);
            let vb = b.decide(&config, &f, 0.9, 10);
            assert_eq!(va.decision, vb.decision);
            assert_eq!(va.score.to_bits(), vb.score.to_bits());
        }
        assert_eq!(a, b);
    }

    #[test]
    fn audit_trail_and_state_round_trip_through_json() {
        let config = TriageConfig::calibrated();
        let mut state = TriageState::calibrated();
        state.decide(&config, &settled(), 0.97, 10);
        state.record_auto_finalize(AuditRecord {
            object: ObjectId(3),
            label: LabelId(1),
            score: 0.98,
            confidence: 0.97,
            iteration: 5,
            features: settled(),
        });
        assert_eq!(state.audit().len(), 1);
        assert_eq!(state.counters().auto_finalized, 1);
        let json = serde_json::to_string(&state).unwrap();
        let reread: TriageState = serde_json::from_str(&json).unwrap();
        assert_eq!(state, reread);
        let config_json = serde_json::to_string(&config).unwrap();
        let config_reread: TriageConfig = serde_json::from_str(&config_json).unwrap();
        assert_eq!(config, config_reread);
    }
}
