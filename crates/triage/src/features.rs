//! The per-object feature vector behind the convergence prediction.
//!
//! Every field is a signal the validation session already maintains; the
//! session assembles them and this module only normalizes. All transformed
//! features live in `[0, 1]` and point the same way — *higher means more
//! likely to converge without an expert* — which keeps the logistic weights
//! interpretable and the calibrated defaults portable across corpora.

use serde::{Deserialize, Serialize};

/// Soft saturation scale for the vote-count feature: with 4.0, four votes
/// reach 0.5 and twelve votes 0.75 — matching the paper-scale corpora where
/// a dozen votes per object is a well-covered object.
const VOTE_SCALE: f64 = 4.0;

/// The raw triage signals for one object. See the crate docs for where each
/// one comes from; [`TriageFeatures::vector`] is the normalized form the
/// predictor consumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriageFeatures {
    /// Posterior entropy of the object's assignment row, normalized by
    /// `ln(num_labels)` so it lives in `[0, 1]` regardless of label count.
    pub entropy: f64,
    /// Visible (non-tombstoned) votes on the object.
    pub votes: u32,
    /// Margin between the modal and runner-up labels as a fraction of the
    /// votes, in `[0, 1]` (see `crowdval_model::VoteTally::margin`).
    pub margin: f64,
    /// Mean trust of the object's voters in `[0, 1]` (1 − suspicion from the
    /// streaming trust ledger), averaged in worker-id order so summation
    /// order never shifts the mean. The ledger's evidence itself (copy
    /// detection, batch-kappa dissent) is a streaming signal and does depend
    /// on arrival order.
    pub trust: f64,
    /// EWMA of posterior movement across EM rounds, in `[0, 1]`
    /// (the aggregation crate's `ChurnTracker`).
    pub churn: f64,
}

impl TriageFeatures {
    /// Dimension of the normalized feature vector.
    pub const DIM: usize = 5;

    /// The normalized feature vector, every entry in `[0, 1]` and oriented
    /// so that larger values mean "more likely to converge unaided":
    /// certainty (1 − entropy), saturating vote count, vote margin, voter
    /// trust, stillness (1 − churn).
    pub fn vector(&self) -> [f64; Self::DIM] {
        let votes = f64::from(self.votes);
        [
            1.0 - self.entropy,
            votes / (votes + VOTE_SCALE),
            self.margin,
            self.trust,
            1.0 - self.churn,
        ]
    }

    /// True when every raw signal is finite. The policy escalates non-finite
    /// feature vectors instead of scoring them, so a numeric glitch upstream
    /// degrades to "ask the expert" rather than to a garbage auto-finalize.
    pub fn is_finite(&self) -> bool {
        self.entropy.is_finite()
            && self.margin.is_finite()
            && self.trust.is_finite()
            && self.churn.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_is_bounded_and_oriented() {
        let f = TriageFeatures {
            entropy: 0.1,
            votes: 12,
            margin: 0.8,
            trust: 0.9,
            churn: 0.2,
        };
        let v = f.vector();
        for x in v {
            assert!((0.0..=1.0).contains(&x), "feature out of range: {x}");
        }
        assert!((v[0] - 0.9).abs() < 1e-12);
        assert!((v[1] - 0.75).abs() < 1e-12);
        assert!((v[4] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn finiteness_check_catches_nan() {
        let mut f = TriageFeatures {
            entropy: 0.0,
            votes: 0,
            margin: 0.0,
            trust: 1.0,
            churn: 0.0,
        };
        assert!(f.is_finite());
        f.trust = f64::NAN;
        assert!(!f.is_finite());
    }

    #[test]
    fn round_trips_through_json() {
        let f = TriageFeatures {
            entropy: 0.25,
            votes: 7,
            margin: 0.5,
            trust: 0.75,
            churn: 0.125,
        };
        let json = serde_json::to_string(&f).unwrap();
        let reread: TriageFeatures = serde_json::from_str(&json).unwrap();
        assert_eq!(f, reread);
    }
}
