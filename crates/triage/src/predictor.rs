//! The online logistic convergence predictor.
//!
//! A plain logistic regression over the normalized [`TriageFeatures`]
//! vector, trained by SGD. Everything is deterministic: weight
//! initialization derives from a caller-supplied seed via splitmix64, and
//! scoring/training are pure f64 arithmetic over a fixed-order weight
//! vector — so two predictors with identical histories are bit-identical,
//! which is what the snapshot/restore property tests assert.

use crate::features::TriageFeatures;
use serde::{Deserialize, Serialize};

/// Calibrated default weights, in feature order: certainty, vote
/// saturation, margin, trust, stillness. Derived by the `crowdval-sim`
/// training harness (`train_convergence_predictor`) on the paper-default
/// streaming crowd and rounded to two decimals; the calibration methodology
/// is recorded in ROADMAP.md. Kept as literals so a fresh session triages
/// sensibly before any online training has happened.
const CALIBRATED_WEIGHTS: [f64; TriageFeatures::DIM] = [3.0, 1.5, 2.0, 1.5, 1.5];
/// Calibrated default bias (see [`CALIBRATED_WEIGHTS`]).
const CALIBRATED_BIAS: f64 = -4.5;

/// splitmix64 — the tiny deterministic generator used for weight
/// initialization (same construction the sim crate uses for seeding).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Online logistic model scoring "will this object converge to the right
/// label without an expert?". Weights are serde-serializable so the model
/// travels inside session snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePredictor {
    /// One weight per normalized feature, in [`TriageFeatures::vector`] order.
    weights: Vec<f64>,
    /// Intercept.
    bias: f64,
    /// SGD updates applied so far.
    updates: u64,
}

impl ConvergencePredictor {
    /// A fresh, untrained predictor: weights are small deterministic noise
    /// in `(-0.01, 0.01)` derived from `seed`, bias 0. Use this when
    /// training from scratch in the sim harness.
    pub fn new(seed: u64) -> Self {
        let mut state = seed ^ 0x7419_a6e5_c0de_2015;
        let weights = (0..TriageFeatures::DIM)
            .map(|_| {
                let bits = splitmix64(&mut state);
                // Map to (-0.01, 0.01).
                ((bits >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.02
            })
            .collect();
        Self {
            weights,
            bias: 0.0,
            updates: 0,
        }
    }

    /// The calibrated default model (see [`CALIBRATED_WEIGHTS`]) — what a
    /// session uses when triage is enabled and no custom predictor was
    /// installed.
    pub fn calibrated() -> Self {
        Self {
            weights: CALIBRATED_WEIGHTS.to_vec(),
            bias: CALIBRATED_BIAS,
            updates: 0,
        }
    }

    /// Convergence probability for one feature vector, in `(0, 1)`.
    pub fn score(&self, features: &TriageFeatures) -> f64 {
        let x = features.vector();
        let mut z = self.bias;
        for (w, xi) in self.weights.iter().zip(x.iter()) {
            z += w * xi;
        }
        sigmoid(z)
    }

    /// One SGD step of the logistic loss toward `converged` (the ground
    /// truth "the crowd's modal label matched reality without an expert").
    /// Returns the pre-update score.
    pub fn train(&mut self, features: &TriageFeatures, converged: bool, learning_rate: f64) -> f64 {
        let x = features.vector();
        let p = self.score(features);
        let y = if converged { 1.0 } else { 0.0 };
        let g = learning_rate * (y - p);
        for (w, xi) in self.weights.iter_mut().zip(x.iter()) {
            *w += g * xi;
        }
        self.bias += g;
        self.updates += 1;
        p
    }

    /// SGD updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The weight vector (feature order) — exposed for the sim harness's
    /// calibration report.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn easy() -> TriageFeatures {
        TriageFeatures {
            entropy: 0.02,
            votes: 8,
            margin: 1.0,
            trust: 0.9,
            churn: 0.0,
        }
    }

    fn hard() -> TriageFeatures {
        TriageFeatures {
            entropy: 0.95,
            votes: 3,
            margin: 0.1,
            trust: 0.5,
            churn: 1.0,
        }
    }

    #[test]
    fn initialization_is_deterministic_per_seed() {
        let a = ConvergencePredictor::new(17);
        let b = ConvergencePredictor::new(17);
        let c = ConvergencePredictor::new(18);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn calibrated_model_separates_easy_from_hard() {
        let model = ConvergencePredictor::calibrated();
        let easy_score = model.score(&easy());
        let hard_score = model.score(&hard());
        assert!(easy_score > 0.9, "easy object scored {easy_score}");
        assert!(hard_score < 0.5, "hard object scored {hard_score}");
    }

    #[test]
    fn sgd_moves_scores_toward_the_labels() {
        let mut model = ConvergencePredictor::new(1);
        let before_easy = model.score(&easy());
        let before_hard = model.score(&hard());
        for _ in 0..200 {
            model.train(&easy(), true, 0.1);
            model.train(&hard(), false, 0.1);
        }
        assert!(model.score(&easy()) > before_easy);
        assert!(model.score(&hard()) < before_hard);
        assert!(model.score(&easy()) > 0.8);
        assert!(model.score(&hard()) < 0.2);
        assert_eq!(model.updates(), 400);
    }

    #[test]
    fn scores_are_probabilities() {
        let model = ConvergencePredictor::calibrated();
        for f in [easy(), hard()] {
            let p = model.score(&f);
            assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn round_trips_through_json() {
        let mut model = ConvergencePredictor::new(42);
        model.train(&easy(), true, 0.05);
        let json = serde_json::to_string(&model).unwrap();
        let reread: ConvergencePredictor = serde_json::from_str(&json).unwrap();
        assert_eq!(model, reread);
    }
}
