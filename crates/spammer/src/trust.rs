//! Online per-worker trust tracking: the streaming-first defense layer.
//!
//! The paper's faulty-worker detection (§5.3) is *post-hoc*: it needs expert
//! validations before it can judge anyone, so an adversary enjoys a free
//! window between joining the crowd and the first validations that expose
//! them. The [`WorkerTrustLedger`] closes that window with cheap **pre-EM
//! heuristics** computed from the vote stream alone, in the spirit of the
//! quality-control loops of production crowd platforms (CDAS) and the
//! junk-label / fast-deceiver / approval-rate filters of the exemplar
//! implementations:
//!
//! * **constant-answer signature** — a worker whose label histogram collapses
//!   onto one label is a junk labeler;
//! * **label-copying signature** — a worker who matches the current modal
//!   label of *contested* objects (slim vote margin) almost always is copying
//!   other workers instead of judging;
//! * **batch agreement gating** — every arrival batch is scored with Fleiss'
//!   kappa; in low-agreement batches, dissent from the per-object batch
//!   majority accrues as (weak) evidence;
//! * **approval rate** — expert validations maintain an exponentially decayed
//!   per-worker error rate, the online analogue of a platform's lifetime
//!   approval rate;
//! * **EM verdicts** — the existing [`crate::SpammerDetector`] outcome
//!   (spammer score / sloppy error rate from validation confusions) is folded
//!   in whenever a validation re-runs detection.
//!
//! Expert evidence is authoritative: once a worker has enough validated
//! answers, the heuristic term is discounted and the validation-based term
//! dominates — which is exactly what makes **reinstatement** work. A worker
//! tombstoned by heuristics whose later validations exonerate them drops
//! below the reinstatement threshold and is un-tombstoned (graceful
//! degradation, not a permanent ban). The two thresholds form a hysteresis
//! band so borderline workers do not flap in and out of the aggregation.
//!
//! The ledger stores only integer counters, decayed float accumulators and
//! flags — all serde-serializable — so it snapshots and restores
//! bit-identically along with the rest of the session state.

use crate::detector::DetectionOutcome;
use crowdval_model::{LabelId, ObjectId, WorkerId};
use crowdval_numerics::fleiss_kappa;
use serde::{Deserialize, Serialize};

/// Decay applied to the validated-answer accumulators per validation event:
/// an effective window of ~10 recent validations, so a worker whose
/// reliability *drifts* is judged on recent behavior, not their lifetime
/// average.
const APPROVAL_DECAY: f64 = 0.9;

/// Weight of the heuristic term once expert evidence is active.
const HEURISTIC_WEIGHT: f64 = 0.3;
/// Weight of the expert term (approval rate / EM verdict) once active.
const EXPERT_WEIGHT: f64 = 0.7;

/// Configuration of the online trust defense.
///
/// The default is **tracking only** (`enabled: false`): the ledger observes
/// every batch and validation and answers trust queries, but never flips a
/// tombstone — existing pipelines behave exactly as before.
/// [`TrustConfig::streaming_default`] turns enforcement on with thresholds
/// tuned against the adversarial scenario library in `crowdval-sim`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrustConfig {
    /// Whether the ledger may tombstone / reinstate workers on its own.
    pub enabled: bool,
    /// Suspicion at or above which a worker is tombstoned.
    pub exclusion_threshold: f64,
    /// Suspicion at or below which a tombstoned worker is reinstated. Must
    /// sit below `exclusion_threshold` — the gap is the hysteresis band.
    pub reinstate_threshold: f64,
    /// Minimum votes before the per-stream heuristics judge a worker.
    pub min_votes: usize,
    /// Arrival batches whose Fleiss' kappa falls below this gate contribute
    /// dissent evidence (low agreement means *someone* is off-script).
    pub kappa_gate: f64,
    /// Minimum validated answers before the expert term becomes
    /// authoritative (mirrors the detector's `min_validated_answers`).
    pub min_validations: usize,
}

impl Default for TrustConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            exclusion_threshold: 0.6,
            reinstate_threshold: 0.35,
            min_votes: 8,
            kappa_gate: 0.3,
            min_validations: 4,
        }
    }
}

impl TrustConfig {
    /// Enforcement on, with the default thresholds.
    pub fn streaming_default() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// One vote of an arrival batch, annotated with the pre-arrival context the
/// copy heuristic needs (computed by the caller *before* the vote is
/// recorded).
#[derive(Debug, Clone, Copy)]
pub struct BatchVote {
    pub object: ObjectId,
    pub worker: WorkerId,
    pub label: LabelId,
    /// Modal label among the votes already recorded for this object before
    /// this one, and whether the object was *contested* (the modal label led
    /// by at most one vote). `None` when the object had no prior votes.
    pub prior_modal: Option<(LabelId, bool)>,
}

/// Cumulative defense activity — the [`crate::DetectionOutcome`]-independent
/// counterpart to the guidance telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefenseTelemetry {
    /// Arrival batches observed.
    pub batches_observed: u64,
    /// Batches whose Fleiss' kappa fell below the gate.
    pub low_kappa_batches: u64,
    /// Auto-exclusions performed by the ledger.
    pub exclusions: u64,
    /// Auto-reinstatements performed by the ledger.
    pub reinstatements: u64,
    /// Exclusions decided on heuristics alone (no expert evidence yet).
    pub heuristic_exclusions: u64,
    /// Exclusions decided with expert evidence active.
    pub em_exclusions: u64,
}

/// Per-worker evidence counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct WorkerTrustRecord {
    votes: u64,
    /// Label histogram over the worker's whole stream.
    label_counts: Vec<u64>,
    /// Votes on contested objects that already had a modal label.
    copy_opportunities: u64,
    /// ... of which matched that modal label.
    copies: u64,
    /// Votes cast in low-kappa (gated) batches on objects with a clear
    /// batch majority.
    gated_votes: u64,
    /// ... of which dissented from the batch majority.
    gated_dissents: u64,
    /// Decayed count of validated answers.
    validated_weight: f64,
    /// Decayed count of validated answers that were wrong.
    error_weight: f64,
    /// Raw validated-answer count (activation gate for the expert term).
    validations: u64,
    /// Whether the detector has ever had enough evidence to judge this
    /// worker.
    em_judged: bool,
    /// Whether the latest detection flagged this worker (spammer or sloppy).
    em_flagged: bool,
    /// Current tombstone state as the ledger believes it.
    excluded: bool,
}

/// What one [`WorkerTrustLedger::decide`] call changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrustDecision {
    /// Workers newly tombstoned, in id order.
    pub excluded: Vec<WorkerId>,
    /// Workers newly reinstated, in id order.
    pub reinstated: Vec<WorkerId>,
}

impl TrustDecision {
    /// Whether the decision flipped any tombstone at all.
    pub fn is_empty(&self) -> bool {
        self.excluded.is_empty() && self.reinstated.is_empty()
    }
}

/// Read-only trust summary of one worker (the `QueryWorkerTrust` payload).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrustReport {
    pub worker: WorkerId,
    pub votes: u64,
    pub validations: u64,
    pub suspicion: f64,
    pub excluded: bool,
    pub em_flagged: bool,
}

/// The streaming trust ledger: per-worker evidence counters plus cumulative
/// defense telemetry. Updated on every vote arrival and every expert
/// validation; consulted by the session to auto-tombstone and reinstate
/// workers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerTrustLedger {
    records: Vec<WorkerTrustRecord>,
    telemetry: DefenseTelemetry,
}

impl WorkerTrustLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the per-worker records to cover `num_workers` ids.
    pub fn ensure_workers(&mut self, num_workers: usize) {
        if self.records.len() < num_workers {
            self.records
                .resize(num_workers, WorkerTrustRecord::default());
        }
    }

    /// Number of workers tracked.
    pub fn num_workers(&self) -> usize {
        self.records.len()
    }

    /// Absorbs one arrival batch: bumps the stream heuristics of every
    /// voting worker and scores the batch's inter-rater agreement. Returns
    /// the batch's Fleiss' kappa when it is defined.
    pub fn observe_batch(
        &mut self,
        num_labels: usize,
        votes: &[BatchVote],
        config: &TrustConfig,
    ) -> Option<f64> {
        if votes.is_empty() {
            return None;
        }
        self.telemetry.batches_observed += 1;
        let max_worker = votes.iter().map(|v| v.worker.index()).max().unwrap_or(0);
        self.ensure_workers(max_worker + 1);

        for vote in votes {
            let record = &mut self.records[vote.worker.index()];
            record.votes += 1;
            if record.label_counts.len() < num_labels {
                record.label_counts.resize(num_labels, 0);
            }
            record.label_counts[vote.label.index()] += 1;
            if let Some((modal, contested)) = vote.prior_modal {
                if contested {
                    record.copy_opportunities += 1;
                    if vote.label == modal {
                        record.copies += 1;
                    }
                }
            }
        }

        // Batch agreement: per-object label histograms over this batch only.
        let mut objects: Vec<ObjectId> = votes.iter().map(|v| v.object).collect();
        objects.sort();
        objects.dedup();
        let index_of = |o: ObjectId| objects.binary_search(&o).expect("object collected above");
        let mut counts = vec![vec![0u64; num_labels]; objects.len()];
        for vote in votes {
            counts[index_of(vote.object)][vote.label.index()] += 1;
        }
        let kappa = fleiss_kappa(&counts);
        if let Some(k) = kappa {
            if k < config.kappa_gate {
                self.telemetry.low_kappa_batches += 1;
                // Dissent evidence: votes against the clear batch majority of
                // their object. Objects with fewer than two batch votes or a
                // tied top count carry no evidence.
                for vote in votes {
                    let hist = &counts[index_of(vote.object)];
                    let total: u64 = hist.iter().sum();
                    if total < 2 {
                        continue;
                    }
                    let top = *hist.iter().max().expect("non-empty histogram");
                    if hist.iter().filter(|&&c| c == top).count() != 1 {
                        continue;
                    }
                    let record = &mut self.records[vote.worker.index()];
                    record.gated_votes += 1;
                    if hist[vote.label.index()] != top {
                        record.gated_dissents += 1;
                    }
                }
            }
        }
        kappa
    }

    /// Absorbs one expert-validated answer of `worker` (the online
    /// approval-rate prior).
    pub fn record_validation(&mut self, worker: WorkerId, correct: bool) {
        self.ensure_workers(worker.index() + 1);
        let record = &mut self.records[worker.index()];
        record.validated_weight = record.validated_weight * APPROVAL_DECAY + 1.0;
        record.error_weight *= APPROVAL_DECAY;
        if !correct {
            record.error_weight += 1.0;
        }
        record.validations += 1;
    }

    /// Folds the latest EM-based detection verdicts into the ledger.
    pub fn absorb_detection(&mut self, outcome: &DetectionOutcome) {
        self.ensure_workers(outcome.scores.len());
        for (w, record) in self.records.iter_mut().enumerate() {
            if let Some(Some(_)) = outcome.scores.get(w) {
                record.em_judged = true;
            }
        }
        let faulty = outcome.faulty();
        for (w, record) in self.records.iter_mut().enumerate() {
            if record.em_judged {
                record.em_flagged = faulty.binary_search(&WorkerId(w)).is_ok();
            }
        }
    }

    /// The maximum of the pre-EM stream heuristics, each scaled so honest
    /// workers sit near 0 and a clean signature saturates at 1. Inactive
    /// heuristics (not enough evidence) contribute 0.
    fn heuristic_term(record: &WorkerTrustRecord, config: &TrustConfig) -> f64 {
        let mut term = 0.0f64;
        let min_votes = config.min_votes as u64;
        // Constant-answer signature.
        if record.votes >= min_votes && record.label_counts.len() >= 2 {
            let top = *record.label_counts.iter().max().expect("labels present") as f64;
            let share = top / record.votes as f64;
            let uniform = 1.0 / record.label_counts.len() as f64;
            let excess = ((share - uniform) / (1.0 - uniform)).clamp(0.0, 1.0);
            term = term.max(((excess - 0.5) / 0.5).clamp(0.0, 1.0));
        }
        // Label-copying signature. Only contested objects count as
        // opportunities — but honest workers also match the slim modal more
        // often than not (the modal is usually right), so the signature
        // activates late and its midpoint sits high: only a near-perfect
        // match rate reads as copying rather than competence.
        if record.copy_opportunities >= min_votes {
            let rate = record.copies as f64 / record.copy_opportunities as f64;
            term = term.max(((rate - 0.85) / 0.15).clamp(0.0, 1.0));
        }
        // Kappa-gated dissent.
        if record.gated_votes >= min_votes.div_ceil(2) {
            let rate = record.gated_dissents as f64 / record.gated_votes as f64;
            term = term.max(((rate - 0.3) / 0.5).clamp(0.0, 1.0));
        }
        term
    }

    /// Validation-based evidence in `[0, 1]`, or `None` while the worker has
    /// too few validated answers for the expert term to be authoritative.
    fn expert_term(record: &WorkerTrustRecord, config: &TrustConfig) -> Option<f64> {
        if record.validations < config.min_validations as u64 && !record.em_judged {
            return None;
        }
        let mut term: f64 = if record.em_flagged { 1.0 } else { 0.0 };
        if record.validated_weight > 0.0 {
            let error_rate = record.error_weight / record.validated_weight;
            term = term.max(((error_rate - 0.15) / 0.5).clamp(0.0, 1.0));
        }
        Some(term)
    }

    /// Current suspicion of a worker in `[0, 1]`. Heuristics alone carry the
    /// score until expert evidence activates; from then on the expert term
    /// dominates, which is what lets exonerating validations pull an
    /// excluded worker back under the reinstatement threshold.
    pub fn suspicion(&self, worker: WorkerId, config: &TrustConfig) -> f64 {
        let Some(record) = self.records.get(worker.index()) else {
            return 0.0;
        };
        let heuristic = Self::heuristic_term(record, config);
        match Self::expert_term(record, config) {
            Some(expert) => HEURISTIC_WEIGHT * heuristic + EXPERT_WEIGHT * expert,
            None => heuristic,
        }
    }

    /// Applies the thresholds to every worker and flips the ledger's
    /// tombstone flags accordingly. Returns the flips; the caller owns the
    /// actual answer-matrix masks.
    pub fn decide(&mut self, config: &TrustConfig) -> TrustDecision {
        let mut decision = TrustDecision::default();
        if !config.enabled {
            return decision;
        }
        for w in 0..self.records.len() {
            let worker = WorkerId(w);
            let suspicion = self.suspicion(worker, config);
            let record = &self.records[w];
            if !record.excluded && suspicion >= config.exclusion_threshold {
                decision.excluded.push(worker);
            } else if record.excluded && suspicion <= config.reinstate_threshold {
                decision.reinstated.push(worker);
            }
        }
        for &worker in &decision.excluded {
            let expert_active = Self::expert_term(&self.records[worker.index()], config).is_some();
            self.records[worker.index()].excluded = true;
            self.telemetry.exclusions += 1;
            if expert_active {
                self.telemetry.em_exclusions += 1;
            } else {
                self.telemetry.heuristic_exclusions += 1;
            }
        }
        for &worker in &decision.reinstated {
            self.records[worker.index()].excluded = false;
            self.telemetry.reinstatements += 1;
        }
        decision
    }

    /// Overrides one worker's tombstone flag (manual ban / unban). Counts as
    /// a defense event in the telemetry when it flips the state.
    pub fn set_excluded(&mut self, worker: WorkerId, excluded: bool) {
        self.ensure_workers(worker.index() + 1);
        let record = &mut self.records[worker.index()];
        if record.excluded == excluded {
            return;
        }
        record.excluded = excluded;
        if excluded {
            self.telemetry.exclusions += 1;
        } else {
            self.telemetry.reinstatements += 1;
        }
    }

    /// Workers the ledger currently considers tombstoned, in id order.
    pub fn excluded(&self) -> Vec<WorkerId> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.excluded)
            .map(|(w, _)| WorkerId(w))
            .collect()
    }

    /// Whether the ledger currently considers a worker tombstoned.
    pub fn is_excluded(&self, worker: WorkerId) -> bool {
        self.records.get(worker.index()).is_some_and(|r| r.excluded)
    }

    /// Cumulative defense telemetry.
    pub fn telemetry(&self) -> DefenseTelemetry {
        self.telemetry
    }

    /// Per-worker trust reports, in id order.
    pub fn reports(&self, config: &TrustConfig) -> Vec<TrustReport> {
        (0..self.records.len())
            .map(|w| {
                let record = &self.records[w];
                TrustReport {
                    worker: WorkerId(w),
                    votes: record.votes,
                    validations: record.validations,
                    suspicion: self.suspicion(WorkerId(w), config),
                    excluded: record.excluded,
                    em_flagged: record.em_flagged,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vote(object: usize, worker: usize, label: usize) -> BatchVote {
        BatchVote {
            object: ObjectId(object),
            worker: WorkerId(worker),
            label: LabelId(label),
            prior_modal: None,
        }
    }

    #[test]
    fn constant_answer_worker_crosses_the_exclusion_threshold() {
        let config = TrustConfig::streaming_default();
        let mut ledger = WorkerTrustLedger::new();
        // Worker 0 always answers label 1; workers 1..4 answer the truthful
        // alternating pattern.
        for batch in 0..4 {
            let votes: Vec<BatchVote> = (0..4)
                .flat_map(|o| {
                    let object = batch * 4 + o;
                    let truth = object % 2;
                    let mut vs = vec![vote(object, 0, 1)];
                    vs.extend((1..4).map(|w| vote(object, w, truth)));
                    vs
                })
                .collect();
            ledger.observe_batch(2, &votes, &config);
        }
        let decision = ledger.decide(&config);
        assert_eq!(decision.excluded, vec![WorkerId(0)]);
        assert!(decision.reinstated.is_empty());
        assert!(ledger.is_excluded(WorkerId(0)));
        assert!(!ledger.is_excluded(WorkerId(2)));
        assert_eq!(ledger.telemetry().heuristic_exclusions, 1);
    }

    #[test]
    fn copier_on_contested_objects_is_flagged() {
        let config = TrustConfig::streaming_default();
        let mut ledger = WorkerTrustLedger::new();
        // Worker 5 always matches the modal label of contested objects;
        // labels themselves alternate so the constant signature stays quiet.
        let votes: Vec<BatchVote> = (0..10)
            .map(|o| BatchVote {
                object: ObjectId(o),
                worker: WorkerId(5),
                label: LabelId(o % 2),
                prior_modal: Some((LabelId(o % 2), true)),
            })
            .collect();
        ledger.observe_batch(2, &votes, &config);
        assert!(
            ledger.suspicion(WorkerId(5), &config) >= config.exclusion_threshold,
            "suspicion {}",
            ledger.suspicion(WorkerId(5), &config)
        );
        // An honest worker matching the slim modal only half the time stays
        // well under the threshold.
        let mut honest = WorkerTrustLedger::new();
        let votes: Vec<BatchVote> = (0..10)
            .map(|o| BatchVote {
                object: ObjectId(o),
                worker: WorkerId(0),
                label: LabelId(o % 2),
                // The slim modal is always 0; the honest worker's own signal
                // alternates, so they match it only half the time.
                prior_modal: Some((LabelId(0), true)),
            })
            .collect();
        honest.observe_batch(2, &votes, &config);
        assert!(honest.suspicion(WorkerId(0), &config) < config.reinstate_threshold);
    }

    #[test]
    fn low_kappa_batches_accrue_dissent_evidence() {
        let config = TrustConfig::streaming_default();
        let mut ledger = WorkerTrustLedger::new();
        // Worker 3 dissents from a clear 3-vs-1 majority on every object;
        // the split keeps the batch kappa under the gate.
        for batch in 0..2 {
            let votes: Vec<BatchVote> = (0..4)
                .flat_map(|o| {
                    let object = batch * 4 + o;
                    let majority = o % 2;
                    let mut vs: Vec<BatchVote> =
                        (0..3).map(|w| vote(object, w, majority)).collect();
                    vs.push(vote(object, 3, 1 - majority));
                    vs
                })
                .collect();
            let kappa = ledger.observe_batch(2, &votes, &config).unwrap();
            assert!(kappa < config.kappa_gate, "kappa {kappa}");
        }
        assert_eq!(ledger.telemetry().low_kappa_batches, 2);
        let dissenter = ledger.suspicion(WorkerId(3), &config);
        let conformer = ledger.suspicion(WorkerId(0), &config);
        assert!(
            dissenter > conformer,
            "dissenter {dissenter} <= conformer {conformer}"
        );
        assert!(dissenter >= config.exclusion_threshold);
    }

    #[test]
    fn exonerating_validations_reinstate_a_heuristic_exclusion() {
        let config = TrustConfig::streaming_default();
        let mut ledger = WorkerTrustLedger::new();
        // Heuristic exclusion: constant answers.
        let votes: Vec<BatchVote> = (0..10).map(|o| vote(o, 0, 1)).collect();
        ledger.observe_batch(2, &votes, &config);
        let decision = ledger.decide(&config);
        assert_eq!(decision.excluded, vec![WorkerId(0)]);
        // The expert then validates several of the worker's answers as
        // correct (the truth really was all-1 on those objects).
        for _ in 0..config.min_validations {
            ledger.record_validation(WorkerId(0), true);
        }
        let decision = ledger.decide(&config);
        assert_eq!(decision.reinstated, vec![WorkerId(0)]);
        assert!(!ledger.is_excluded(WorkerId(0)));
        assert_eq!(ledger.telemetry().reinstatements, 1);
    }

    #[test]
    fn decayed_approval_rate_tracks_drifting_workers() {
        let config = TrustConfig::streaming_default();
        let mut ledger = WorkerTrustLedger::new();
        // A long accurate history followed by a run of errors: the decayed
        // window forgets the good old days.
        for _ in 0..30 {
            ledger.record_validation(WorkerId(0), true);
        }
        assert!(ledger.suspicion(WorkerId(0), &config) < config.reinstate_threshold);
        for _ in 0..12 {
            ledger.record_validation(WorkerId(0), false);
        }
        assert!(
            ledger.suspicion(WorkerId(0), &config) >= config.exclusion_threshold,
            "suspicion {}",
            ledger.suspicion(WorkerId(0), &config)
        );
    }

    #[test]
    fn em_verdicts_fold_into_the_expert_term() {
        let config = TrustConfig::streaming_default();
        let mut ledger = WorkerTrustLedger::new();
        ledger.ensure_workers(3);
        let outcome = DetectionOutcome {
            spammers: vec![WorkerId(1)],
            sloppy: vec![],
            scores: vec![Some(0.9), Some(0.05), None],
            error_rates: vec![Some(0.1), Some(0.5), None],
        };
        ledger.absorb_detection(&outcome);
        assert!(ledger.suspicion(WorkerId(1), &config) >= config.exclusion_threshold);
        assert!(ledger.suspicion(WorkerId(0), &config) < config.reinstate_threshold);
        // Worker 2 was never judged: no expert term, no heuristics, zero.
        assert_eq!(ledger.suspicion(WorkerId(2), &config), 0.0);
        // A later detection clearing worker 1 clears the flag.
        let cleared = DetectionOutcome {
            spammers: vec![],
            sloppy: vec![],
            scores: vec![Some(0.9), Some(0.8), None],
            error_rates: vec![Some(0.1), Some(0.2), None],
        };
        ledger.absorb_detection(&cleared);
        assert!(ledger.suspicion(WorkerId(1), &config) < config.exclusion_threshold);
    }

    #[test]
    fn disabled_config_never_flips_tombstones() {
        let config = TrustConfig::default();
        assert!(!config.enabled);
        let mut ledger = WorkerTrustLedger::new();
        let votes: Vec<BatchVote> = (0..10).map(|o| vote(o, 0, 1)).collect();
        ledger.observe_batch(2, &votes, &config);
        assert!(ledger.suspicion(WorkerId(0), &config) >= config.exclusion_threshold);
        assert!(ledger.decide(&config).is_empty());
        assert!(ledger.excluded().is_empty());
    }

    #[test]
    fn ledger_round_trips_through_json() {
        let config = TrustConfig::streaming_default();
        let mut ledger = WorkerTrustLedger::new();
        let votes: Vec<BatchVote> = (0..10).map(|o| vote(o, 0, 1)).collect();
        ledger.observe_batch(2, &votes, &config);
        ledger.record_validation(WorkerId(0), false);
        ledger.decide(&config);
        let json = serde_json::to_string(&ledger).unwrap();
        let reread: WorkerTrustLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(ledger, reread);
    }

    #[test]
    fn manual_override_counts_as_defense_events() {
        let mut ledger = WorkerTrustLedger::new();
        ledger.set_excluded(WorkerId(2), true);
        assert!(ledger.is_excluded(WorkerId(2)));
        assert_eq!(ledger.excluded(), vec![WorkerId(2)]);
        ledger.set_excluded(WorkerId(2), true); // no-op
        ledger.set_excluded(WorkerId(2), false);
        let telemetry = ledger.telemetry();
        assert_eq!(telemetry.exclusions, 1);
        assert_eq!(telemetry.reinstatements, 1);
    }
}
