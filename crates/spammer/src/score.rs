//! The spammer score (paper Eq. 11).
//!
//! `s(w) = min_{rank(F̂)=1} ‖F_w − F̂‖_F` — the distance of worker `w`'s
//! confusion matrix to its closest rank-one approximation. Uniform spammers
//! (one non-zero column) and random spammers (identical rows) have rank-one
//! confusion matrices, so their score is (close to) zero. Workers whose score
//! falls *below* a threshold `τ_s` are flagged as spammers.

use crowdval_model::ConfusionMatrix;
use crowdval_numerics::rank_one_distance;

/// Spammer score of a worker's confusion matrix.
pub fn spammer_score(confusion: &ConfusionMatrix) -> f64 {
    rank_one_distance(confusion.matrix())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_model::LabelId;
    use crowdval_numerics::Matrix;

    #[test]
    fn random_spammer_scores_near_zero() {
        let c = ConfusionMatrix::uniform(2);
        assert!(spammer_score(&c) < 1e-9);
        let c4 = ConfusionMatrix::uniform(4);
        assert!(spammer_score(&c4) < 1e-9);
    }

    #[test]
    fn uniform_spammer_scores_near_zero() {
        let c = ConfusionMatrix::from_matrix(Matrix::from_rows(&[vec![0.0, 1.0], vec![0.0, 1.0]]));
        assert!(spammer_score(&c) < 1e-9);
    }

    #[test]
    fn reliable_worker_scores_high() {
        let c = ConfusionMatrix::diagonal(2, 0.95);
        assert!(spammer_score(&c) > 0.5);
        let c4 = ConfusionMatrix::diagonal(4, 0.9);
        assert!(spammer_score(&c4) > 0.5);
    }

    #[test]
    fn score_decreases_as_the_worker_approaches_random_guessing() {
        let good = spammer_score(&ConfusionMatrix::diagonal(2, 0.95));
        let mediocre = spammer_score(&ConfusionMatrix::diagonal(2, 0.7));
        let chance = spammer_score(&ConfusionMatrix::diagonal(2, 0.5));
        assert!(good > mediocre);
        assert!(mediocre > chance);
        assert!(chance < 1e-9);
    }

    #[test]
    fn adversarial_workers_are_not_spammers() {
        // A worker that systematically inverts labels is informative (perfectly
        // anti-correlated), not a spammer: the score stays high.
        let c =
            ConfusionMatrix::from_matrix(Matrix::from_rows(&[vec![0.05, 0.95], vec![0.95, 0.05]]));
        assert!(spammer_score(&c) > 0.5);
        assert_eq!(c.prob(LabelId(0), LabelId(1)), 0.95);
    }
}
