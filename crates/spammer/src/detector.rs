//! Faulty-worker detection from expert validations (paper §5.3).
//!
//! The detector builds, for every worker, a confusion matrix **only from the
//! objects the expert has validated** (the paper deviates from [Raykar & Yu]
//! precisely on this point to avoid the bias of estimated labels). Workers
//! whose spammer score falls below `τ_s` are flagged as uniform/random
//! spammers; workers whose validation-based error rate exceeds `τ_p` are
//! flagged as sloppy.

use crate::score::spammer_score;
use crate::sloppy::sloppy_error_rate;
use crowdval_model::{AnswerSet, ConfusionMatrix, ExpertValidation, WorkerId};
use crowdval_numerics::Matrix;
use serde::{Deserialize, Serialize};

/// Detection thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Spammer-score threshold `τ_s`: workers scoring *below* it are flagged
    /// as spammers. The paper settles on 0.2 (§6.5).
    pub spammer_threshold: f64,
    /// Error-rate threshold `τ_p`: workers whose validation-based error rate
    /// exceeds it are flagged as sloppy. The paper uses 0.8.
    pub sloppy_threshold: f64,
    /// Minimum number of validated answers a worker must have before the
    /// detector is willing to judge them. Guards against the Table 3 pitfall
    /// of condemning a truthful worker on two or three validated answers.
    pub min_validated_answers: usize,
}

impl DetectorConfig {
    /// Thresholds used in the paper's experiments (τ_s = 0.2, τ_p = 0.8).
    pub fn paper_default() -> Self {
        Self {
            spammer_threshold: 0.2,
            sloppy_threshold: 0.8,
            min_validated_answers: 4,
        }
    }

    /// Same defaults with a different spammer-score threshold (the Fig. 9
    /// sweep varies τ_s ∈ {0.1, 0.2, 0.3}).
    pub fn with_spammer_threshold(spammer_threshold: f64) -> Self {
        Self {
            spammer_threshold,
            ..Self::paper_default()
        }
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Per-worker detection verdicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionOutcome {
    /// Workers flagged as uniform or random spammers.
    pub spammers: Vec<WorkerId>,
    /// Workers flagged as sloppy.
    pub sloppy: Vec<WorkerId>,
    /// Spammer score per worker (`None` when the worker has too few validated
    /// answers to be judged).
    pub scores: Vec<Option<f64>>,
    /// Validation-based error rate per worker (same `None` convention).
    pub error_rates: Vec<Option<f64>>,
}

impl DetectionOutcome {
    /// Union of spammers and sloppy workers, deduplicated and sorted.
    pub fn faulty(&self) -> Vec<WorkerId> {
        let mut all: Vec<WorkerId> = self
            .spammers
            .iter()
            .chain(self.sloppy.iter())
            .copied()
            .collect();
        all.sort();
        all.dedup();
        all
    }

    /// Number of distinct faulty workers.
    pub fn num_faulty(&self) -> usize {
        self.faulty().len()
    }

    /// Precision of the detection against a reference set of truly faulty
    /// workers: |detected ∩ truth| / |detected|.
    ///
    /// **Empty-set convention** (never NaN): an empty detected set has
    /// produced no false positives, so precision is defined as 1.0 —
    /// regardless of whether `truly_faulty` is empty. A non-empty detected
    /// set against an empty `truly_faulty` reference is all false positives
    /// and scores 0.0 through the ordinary formula.
    pub fn precision(&self, truly_faulty: &[WorkerId]) -> f64 {
        let detected = self.faulty();
        if detected.is_empty() {
            return 1.0;
        }
        let hit = detected.iter().filter(|w| truly_faulty.contains(w)).count();
        hit as f64 / detected.len() as f64
    }

    /// Recall of the detection against a reference set of truly faulty
    /// workers: |detected ∩ truth| / |truth|.
    ///
    /// **Empty-set convention** (never NaN): with an empty `truly_faulty`
    /// reference there is nothing to miss, so recall is defined as 1.0 —
    /// regardless of what was detected. An empty detected set against a
    /// non-empty reference misses everything and scores 0.0 through the
    /// ordinary formula.
    pub fn recall(&self, truly_faulty: &[WorkerId]) -> f64 {
        if truly_faulty.is_empty() {
            return 1.0;
        }
        let detected = self.faulty();
        let hit = truly_faulty.iter().filter(|w| detected.contains(w)).count();
        hit as f64 / truly_faulty.len() as f64
    }
}

/// Detector of faulty workers based on expert validations.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpammerDetector {
    config: DetectorConfig,
}

impl SpammerDetector {
    /// Creates a detector with the given thresholds.
    pub fn new(config: DetectorConfig) -> Self {
        Self { config }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Builds the validation-based confusion matrix of one worker: counts of
    /// (expert label, worker answer) over the validated objects the worker
    /// answered. Returns `None` when the worker answered fewer than
    /// `min_validated_answers` validated objects.
    pub fn validation_confusion(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        worker: WorkerId,
    ) -> Option<ConfusionMatrix> {
        let m = answers.num_labels();
        let mut counts = Matrix::zeros(m, m);
        let mut observed = 0usize;
        for (o, answered) in answers.matrix().answers_for_worker(worker) {
            if let Some(truth) = expert.get(o) {
                counts[(truth.index(), answered.index())] += 1.0;
                observed += 1;
            }
        }
        if observed < self.config.min_validated_answers {
            return None;
        }
        // No smoothing: the detection signatures (rank-one shape, off-diagonal
        // mass) are sharpest on the raw validation frequencies.
        Some(ConfusionMatrix::from_counts(&counts, 0.0))
    }

    /// Runs detection over all workers. `priors` weights the error rate of
    /// the sloppy-worker check (pass the label priors of the current
    /// probabilistic answer set, or uniform priors early on).
    pub fn detect(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        priors: &[f64],
    ) -> DetectionOutcome {
        let mut spammers = Vec::new();
        let mut sloppy = Vec::new();
        let mut scores = Vec::with_capacity(answers.num_workers());
        let mut error_rates = Vec::with_capacity(answers.num_workers());
        for w in answers.workers() {
            match self.validation_confusion(answers, expert, w) {
                Some(confusion) => {
                    let score = spammer_score(&confusion);
                    let err = sloppy_error_rate(&confusion, priors);
                    if score < self.config.spammer_threshold {
                        spammers.push(w);
                    } else if err > self.config.sloppy_threshold {
                        sloppy.push(w);
                    }
                    scores.push(Some(score));
                    error_rates.push(Some(err));
                }
                None => {
                    scores.push(None);
                    error_rates.push(None);
                }
            }
        }
        DetectionOutcome {
            spammers,
            sloppy,
            scores,
            error_rates,
        }
    }

    /// Number of faulty workers that would be detected if the expert asserted
    /// `label` for `object` — the `R(W | o = l)` term of the worker-driven
    /// guidance strategy (Eq. 12).
    pub fn expected_detections_with(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        priors: &[f64],
        object: crowdval_model::ObjectId,
        label: crowdval_model::LabelId,
    ) -> usize {
        let mut hypothetical = expert.clone();
        hypothetical.set(object, label);
        self.detect(answers, &hypothetical, priors).num_faulty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_model::{LabelId, ObjectId};
    use crowdval_sim::{SyntheticConfig, WorkerKind};

    /// Hand-built answer set: worker 0 reliable, worker 1 uniform spammer,
    /// worker 2 random-ish spammer, worker 3 sloppy (mostly wrong).
    fn crafted() -> (AnswerSet, ExpertValidation) {
        let truth: Vec<usize> = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let mut n = AnswerSet::new(8, 4, 2);
        for (o, &t) in truth.iter().enumerate() {
            n.record_answer(ObjectId(o), WorkerId(0), LabelId(t))
                .unwrap();
            n.record_answer(ObjectId(o), WorkerId(1), LabelId(1))
                .unwrap();
            n.record_answer(ObjectId(o), WorkerId(2), LabelId((o % 2) ^ ((o / 2) % 2)))
                .unwrap();
            n.record_answer(ObjectId(o), WorkerId(3), LabelId(1 - t))
                .unwrap();
        }
        let mut e = ExpertValidation::empty(8);
        for (o, &t) in truth.iter().enumerate() {
            e.set(ObjectId(o), LabelId(t));
        }
        (n, e)
    }

    #[test]
    fn validation_confusion_requires_enough_validated_answers() {
        let (answers, _) = crafted();
        let detector = SpammerDetector::default();
        let empty = ExpertValidation::empty(8);
        assert!(detector
            .validation_confusion(&answers, &empty, WorkerId(0))
            .is_none());
        let mut two = ExpertValidation::empty(8);
        two.set(ObjectId(0), LabelId(0));
        two.set(ObjectId(1), LabelId(1));
        assert!(detector
            .validation_confusion(&answers, &two, WorkerId(0))
            .is_none());
    }

    #[test]
    fn crafted_workers_are_classified_correctly() {
        let (answers, expert) = crafted();
        let detector = SpammerDetector::default();
        let outcome = detector.detect(&answers, &expert, &[0.5, 0.5]);
        // Worker 1 (uniform spammer) and worker 2 (random-ish) are spammers.
        assert!(outcome.spammers.contains(&WorkerId(1)));
        assert!(outcome.spammers.contains(&WorkerId(2)));
        // Worker 0 is clean.
        assert!(!outcome.faulty().contains(&WorkerId(0)));
        // Worker 3 answers are perfectly anti-correlated: not a spammer, but
        // the error rate flags it as sloppy.
        assert!(outcome.sloppy.contains(&WorkerId(3)));
        assert_eq!(outcome.num_faulty(), 3);
    }

    #[test]
    fn precision_and_recall_against_reference_sets() {
        let (answers, expert) = crafted();
        let outcome = SpammerDetector::default().detect(&answers, &expert, &[0.5, 0.5]);
        let truly_faulty = vec![WorkerId(1), WorkerId(2), WorkerId(3)];
        assert!((outcome.precision(&truly_faulty) - 1.0).abs() < 1e-12);
        assert!((outcome.recall(&truly_faulty) - 1.0).abs() < 1e-12);
        // Against a wrong reference set precision drops.
        assert!(outcome.precision(&[WorkerId(0)]) < 0.5);
        assert_eq!(outcome.recall(&[]), 1.0);
    }

    #[test]
    fn precision_and_recall_empty_set_conventions_are_never_nan() {
        let empty_detection = DetectionOutcome {
            spammers: vec![],
            sloppy: vec![],
            scores: vec![],
            error_rates: vec![],
        };
        let some_detection = DetectionOutcome {
            spammers: vec![WorkerId(1)],
            sloppy: vec![WorkerId(2)],
            scores: vec![],
            error_rates: vec![],
        };
        // Empty detected set: vacuous precision 1.0, whatever the reference.
        assert_eq!(empty_detection.precision(&[]), 1.0);
        assert_eq!(empty_detection.precision(&[WorkerId(0)]), 1.0);
        // Empty reference: vacuous recall 1.0, whatever was detected.
        assert_eq!(empty_detection.recall(&[]), 1.0);
        assert_eq!(some_detection.recall(&[]), 1.0);
        // The non-vacuous crossings score 0 through the ordinary formulas.
        assert_eq!(some_detection.precision(&[]), 0.0);
        assert_eq!(empty_detection.recall(&[WorkerId(0)]), 0.0);
        // Nothing above is NaN.
        for v in [
            empty_detection.precision(&[]),
            empty_detection.recall(&[]),
            some_detection.precision(&[]),
            some_detection.recall(&[]),
        ] {
            assert!(!v.is_nan());
        }
    }

    #[test]
    fn detection_improves_with_more_validations_on_synthetic_data() {
        let synth = SyntheticConfig::paper_default(123).generate();
        let answers = synth.dataset.answers();
        let truth = synth.dataset.ground_truth();
        let spammers: Vec<WorkerId> = synth
            .profiles
            .iter()
            .enumerate()
            .filter_map(|(w, p)| {
                if p.kind().is_spammer() {
                    Some(WorkerId(w))
                } else {
                    None
                }
            })
            .collect();
        let detector = SpammerDetector::default();

        let recall_at = |count: usize| {
            let mut e = ExpertValidation::empty(answers.num_objects());
            for o in 0..count {
                e.set(ObjectId(o), truth.label(ObjectId(o)));
            }
            detector.detect(answers, &e, &[0.5, 0.5]).recall(&spammers)
        };
        let few = recall_at(5);
        let many = recall_at(40);
        assert!(
            many >= few,
            "recall with 40 validations {many} < with 5 {few}"
        );
        assert!(
            many >= 0.6,
            "recall with 40 validations unexpectedly low: {many}"
        );
        // Sanity: the synthetic population really contains spammers of both
        // kinds.
        assert!(synth
            .profiles
            .iter()
            .any(|p| p.kind() == WorkerKind::UniformSpammer));
        assert!(synth
            .profiles
            .iter()
            .any(|p| p.kind() == WorkerKind::RandomSpammer));
    }

    #[test]
    fn expected_detections_with_hypothetical_label() {
        let (answers, expert) = crafted();
        let detector = SpammerDetector::default();
        let baseline = detector.detect(&answers, &expert.without(ObjectId(7)), &[0.5, 0.5]);
        let with_hypothesis = detector.expected_detections_with(
            &answers,
            &expert.without(ObjectId(7)),
            &[0.5, 0.5],
            ObjectId(7),
            LabelId(1),
        );
        assert!(with_hypothesis >= baseline.num_faulty());
    }

    #[test]
    fn config_sweep_constructor() {
        let c = DetectorConfig::with_spammer_threshold(0.3);
        assert_eq!(c.spammer_threshold, 0.3);
        assert_eq!(
            c.sloppy_threshold,
            DetectorConfig::paper_default().sloppy_threshold
        );
    }
}
