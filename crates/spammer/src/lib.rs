//! Detection and handling of faulty workers (paper §5.3).
//!
//! Faulty workers come in three flavours: uniform spammers, random spammers
//! and sloppy workers. Uniform and random spammers leave a rank-one signature
//! in their confusion matrix, so their *spammer score* — the Frobenius
//! distance of the matrix to its closest rank-one approximation — is close to
//! zero. Sloppy workers are detected through a high prior-weighted error rate.
//!
//! Following the paper, the confusion matrices used for detection are built
//! **only from expert validations** (not from the estimated labels), which
//! removes the bias an incorrect estimation would introduce. Suspected
//! workers are not removed permanently; their answers are merely excluded
//! from aggregation and come back once enough validations clear them.
//!
//! The [`trust`] module extends this batch-minded machinery with an *online*
//! defense layer: a per-worker trust ledger that combines the EM verdicts
//! with cheap pre-EM stream heuristics (constant-answer and label-copying
//! signatures, Fleiss'-kappa batch gating, decayed approval rates) so
//! adversarial workers can be tombstoned before the expert ever looks at
//! their answers — and reinstated when later validations exonerate them.

pub mod detector;
pub mod handling;
pub mod score;
pub mod sloppy;
pub mod trust;

pub use detector::{DetectionOutcome, DetectorConfig, SpammerDetector};
pub use handling::FaultyWorkerHandler;
pub use score::spammer_score;
pub use sloppy::sloppy_error_rate;
pub use trust::{
    BatchVote, DefenseTelemetry, TrustConfig, TrustDecision, TrustReport, WorkerTrustLedger,
};
