//! Handling of suspected faulty workers (paper §5.3, "Handling faulty
//! workers").
//!
//! Removing a worker outright based on a handful of validations risks
//! discarding a truthful worker (the paper's Table 3 example). Instead, the
//! answers of suspected workers are merely *excluded* from the aggregation
//! while their answers keep being collected; as more validations arrive, a
//! worker whose spammer score recovers above the threshold is re-included.

use crate::detector::DetectionOutcome;
use crowdval_model::{AnswerSet, WorkerId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Tracks which workers are currently excluded from aggregation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultyWorkerHandler {
    excluded: BTreeSet<WorkerId>,
    /// How often each worker has been excluded over the lifetime of the
    /// validation process (useful for audit reports).
    exclusion_events: usize,
}

impl FaultyWorkerHandler {
    /// Creates a handler with no exclusions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a detection outcome: detected workers become excluded, and
    /// previously excluded workers that are no longer detected are
    /// re-included.
    pub fn apply(&mut self, outcome: &DetectionOutcome) {
        let detected: BTreeSet<WorkerId> = outcome.faulty().into_iter().collect();
        let newly_excluded = detected.difference(&self.excluded).count();
        self.exclusion_events += newly_excluded;
        self.excluded = detected;
    }

    /// Currently excluded workers, in id order.
    pub fn excluded(&self) -> Vec<WorkerId> {
        self.excluded.iter().copied().collect()
    }

    /// Whether a particular worker is currently excluded.
    pub fn is_excluded(&self, worker: WorkerId) -> bool {
        self.excluded.contains(&worker)
    }

    /// Number of currently excluded workers.
    pub fn num_excluded(&self) -> usize {
        self.excluded.len()
    }

    /// Ratio of excluded workers over the whole population (`r_i` in the
    /// hybrid weighting, Eq. 15).
    pub fn excluded_ratio(&self, num_workers: usize) -> f64 {
        if num_workers == 0 {
            0.0
        } else {
            self.excluded.len() as f64 / num_workers as f64
        }
    }

    /// Total number of exclusion events observed so far.
    pub fn exclusion_events(&self) -> usize {
        self.exclusion_events
    }

    /// Replaces the excluded set wholesale (the trust ledger's merged
    /// verdict, or a manual override), counting newly excluded workers as
    /// exclusion events like [`FaultyWorkerHandler::apply`] does.
    pub fn sync_excluded(&mut self, excluded: &[WorkerId]) {
        let next: BTreeSet<WorkerId> = excluded.iter().copied().collect();
        let newly_excluded = next.difference(&self.excluded).count();
        self.exclusion_events += newly_excluded;
        self.excluded = next;
    }

    /// Applies the current exclusions to an answer set **in place** by
    /// flipping its per-worker tombstone mask — `O(workers)`, no vote is
    /// copied or dropped, and previously excluded workers not in the set are
    /// re-included. This is the path the aggregation view maintenance uses.
    pub fn apply_exclusions(&self, answers: &mut AnswerSet) {
        answers.set_excluded_workers(&self.excluded());
    }

    /// Returns a **fresh copy** of the answer set with the currently
    /// excluded workers tombstoned.
    #[deprecated(
        since = "0.1.0",
        note = "rebuilds a full AnswerSet per call; flip tombstones in place \
                with `apply_exclusions` instead"
    )]
    pub fn filtered_answers(&self, answers: &AnswerSet) -> AnswerSet {
        if self.excluded.is_empty() {
            return answers.clone();
        }
        answers.excluding_workers(&self.excluded())
    }

    /// Clears every exclusion (used by ablation experiments that disable the
    /// worker-driven handling).
    pub fn reset(&mut self) {
        self.excluded.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_model::{LabelId, ObjectId};

    fn outcome(spammers: &[usize], sloppy: &[usize]) -> DetectionOutcome {
        DetectionOutcome {
            spammers: spammers.iter().map(|&w| WorkerId(w)).collect(),
            sloppy: sloppy.iter().map(|&w| WorkerId(w)).collect(),
            scores: vec![],
            error_rates: vec![],
        }
    }

    #[test]
    fn apply_excludes_and_reincludes_workers() {
        let mut h = FaultyWorkerHandler::new();
        h.apply(&outcome(&[1, 2], &[3]));
        assert_eq!(h.excluded(), vec![WorkerId(1), WorkerId(2), WorkerId(3)]);
        assert!(h.is_excluded(WorkerId(2)));
        assert_eq!(h.exclusion_events(), 3);

        // Worker 2 is cleared by newer validations; worker 4 is now suspected.
        h.apply(&outcome(&[1, 4], &[]));
        assert_eq!(h.excluded(), vec![WorkerId(1), WorkerId(4)]);
        assert!(!h.is_excluded(WorkerId(2)));
        assert_eq!(h.exclusion_events(), 4);
    }

    #[test]
    fn excluded_ratio() {
        let mut h = FaultyWorkerHandler::new();
        assert_eq!(h.excluded_ratio(0), 0.0);
        h.apply(&outcome(&[0, 1], &[]));
        assert!((h.excluded_ratio(10) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn apply_exclusions_masks_excluded_workers_in_place() {
        let mut answers = AnswerSet::new(2, 3, 2);
        for w in 0..3 {
            answers
                .record_answer(ObjectId(0), WorkerId(w), LabelId(0))
                .unwrap();
            answers
                .record_answer(ObjectId(1), WorkerId(w), LabelId(1))
                .unwrap();
        }
        let mut h = FaultyWorkerHandler::new();
        h.apply_exclusions(&mut answers);
        assert_eq!(answers.matrix().num_answers(), 6);
        h.apply(&outcome(&[1], &[]));
        h.apply_exclusions(&mut answers);
        assert_eq!(answers.matrix().num_answers(), 4);
        assert_eq!(answers.matrix().worker_answer_count(WorkerId(1)), 0);
        assert_eq!(answers.matrix().worker_answer_count(WorkerId(0)), 2);
        // Dropping the exclusion re-includes the tombstoned votes — nothing
        // was copied or lost.
        h.reset();
        h.apply_exclusions(&mut answers);
        assert_eq!(answers.matrix().num_answers(), 6);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_filtered_answers_matches_the_mask_path() {
        let mut answers = AnswerSet::new(2, 3, 2);
        for w in 0..3 {
            answers
                .record_answer(ObjectId(0), WorkerId(w), LabelId(0))
                .unwrap();
            answers
                .record_answer(ObjectId(1), WorkerId(w), LabelId(1))
                .unwrap();
        }
        let mut h = FaultyWorkerHandler::new();
        h.apply(&outcome(&[1], &[]));
        let copied = h.filtered_answers(&answers);
        let mut masked = answers.clone();
        h.apply_exclusions(&mut masked);
        assert_eq!(copied.matrix().num_answers(), masked.matrix().num_answers());
        for w in 0..3 {
            assert_eq!(
                copied.matrix().worker_answer_count(WorkerId(w)),
                masked.matrix().worker_answer_count(WorkerId(w))
            );
        }
    }

    #[test]
    fn sync_excluded_replaces_the_set_and_counts_events() {
        let mut h = FaultyWorkerHandler::new();
        h.sync_excluded(&[WorkerId(1), WorkerId(2)]);
        assert_eq!(h.excluded(), vec![WorkerId(1), WorkerId(2)]);
        assert_eq!(h.exclusion_events(), 2);
        // 2 stays, 1 leaves, 5 enters: one new event.
        h.sync_excluded(&[WorkerId(2), WorkerId(5)]);
        assert_eq!(h.excluded(), vec![WorkerId(2), WorkerId(5)]);
        assert_eq!(h.exclusion_events(), 3);
    }

    #[test]
    fn reset_clears_exclusions() {
        let mut h = FaultyWorkerHandler::new();
        h.apply(&outcome(&[5], &[6]));
        h.reset();
        assert_eq!(h.num_excluded(), 0);
    }
}
