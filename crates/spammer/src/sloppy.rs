//! Sloppy-worker detection (paper §5.3).
//!
//! Sloppy workers answer mostly incorrectly (but not adversarially or at
//! random in the spammer sense). Their signature is a high error rate: the
//! prior-weighted mass off the main diagonal of the confusion matrix built
//! from expert validations. A worker whose error rate exceeds `τ_p` is
//! considered sloppy.

use crowdval_model::ConfusionMatrix;

/// Prior-weighted error rate `e_w` of a validation-based confusion matrix.
pub fn sloppy_error_rate(confusion: &ConfusionMatrix, priors: &[f64]) -> f64 {
    confusion.error_rate(priors)
}

/// Convenience: error rate under uniform priors (used when no better prior
/// estimate is available, e.g. at the very start of a validation process).
pub fn sloppy_error_rate_uniform(confusion: &ConfusionMatrix) -> f64 {
    let m = confusion.num_labels();
    let priors = vec![1.0 / m as f64; m];
    confusion.error_rate(&priors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_workers_have_low_error_rate() {
        let c = ConfusionMatrix::diagonal(2, 0.9);
        assert!((sloppy_error_rate(&c, &[0.5, 0.5]) - 0.1).abs() < 1e-12);
        assert!((sloppy_error_rate_uniform(&c) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sloppy_workers_have_high_error_rate() {
        let c = ConfusionMatrix::diagonal(2, 0.2);
        assert!(sloppy_error_rate_uniform(&c) > 0.7);
    }

    #[test]
    fn priors_weight_the_error_rate() {
        // The worker errs only on label 1; skewing the prior toward label 0
        // lowers the weighted error rate.
        let c = ConfusionMatrix::from_matrix(crowdval_numerics::Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.9, 0.1],
        ]));
        let balanced = sloppy_error_rate(&c, &[0.5, 0.5]);
        let skewed = sloppy_error_rate(&c, &[0.9, 0.1]);
        assert!(balanced > skewed);
    }
}
