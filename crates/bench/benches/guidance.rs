//! Criterion bench for the guidance strategies: cost of selecting the next
//! validation question under each strategy (ablation of the design choices
//! called out in DESIGN.md).

use criterion::{criterion_group, criterion_main, Criterion};
use crowdval_aggregation::{Aggregator, IncrementalEm};
use crowdval_core::{
    EntropyBaseline, HybridStrategy, RandomSelection, SelectionStrategy, StrategyContext,
    UncertaintyDriven, WorkerDriven,
};
use crowdval_model::{ExpertValidation, ObjectId};
use crowdval_spammer::SpammerDetector;
use crowdval_sim::SyntheticConfig;

fn bench_guidance(c: &mut Criterion) {
    let synth = SyntheticConfig::paper_default(70_000).generate();
    let answers = synth.dataset.answers().clone();
    let truth = synth.dataset.ground_truth().clone();
    let aggregator = IncrementalEm::default();
    let mut expert = ExpertValidation::empty(answers.num_objects());
    for o in 0..10 {
        expert.set(ObjectId(o), truth.label(ObjectId(o)));
    }
    let current = aggregator.conclude(&answers, &expert, None);
    let detector = SpammerDetector::default();
    let candidates = expert.unvalidated_objects();

    let ctx = || StrategyContext {
        answers: &answers,
        expert: &expert,
        current: &current,
        aggregator: &aggregator,
        detector: &detector,
        candidates: &candidates,
        parallel: true,
    };

    let mut group = c.benchmark_group("guidance_selection");
    group.sample_size(10);
    group.bench_function("random", |b| {
        let mut s = RandomSelection::new(1);
        b.iter(|| s.select(&ctx()))
    });
    group.bench_function("entropy_baseline", |b| {
        let mut s = EntropyBaseline;
        b.iter(|| s.select(&ctx()))
    });
    group.bench_function("worker_driven", |b| {
        let mut s = WorkerDriven;
        b.iter(|| s.select(&ctx()))
    });
    group.bench_function("uncertainty_driven_shortlist", |b| {
        let mut s = UncertaintyDriven::with_max_evaluated(16);
        b.iter(|| s.select(&ctx()))
    });
    group.bench_function("uncertainty_driven_exhaustive", |b| {
        let mut s = UncertaintyDriven::exhaustive();
        b.iter(|| s.select(&ctx()))
    });
    group.bench_function("hybrid", |b| {
        let mut s = HybridStrategy::new(5);
        b.iter(|| s.select(&ctx()))
    });
    group.finish();
}

criterion_group!(benches, bench_guidance);
criterion_main!(benches);
