//! Criterion bench for the guidance hot path, centred on the shared
//! [`crowdval_core::ScoringEngine`]:
//!
//! * serial vs. parallel candidate fan-out (§5.4 "Parallelization") at 64
//!   and 128 candidates — the parallel path must win on ≥ 64 candidates;
//! * warm-started vs. cold-restart hypothesis aggregation (§4.1 / Fig. 8) —
//!   the i-EM warm start is the reason per-candidate evaluation is viable;
//! * the full `select` step of every strategy, for end-to-end context.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdval_aggregation::{Aggregator, BatchEm, IncrementalEm};
use crowdval_core::{
    EntropyBaseline, HybridStrategy, RandomSelection, ScoringContext, ScoringEngine, ScoringMode,
    SelectionStrategy, StrategyContext, UncertaintyDriven, WorkerDriven,
};
use crowdval_model::{AnswerSet, ExpertValidation, ObjectId, ProbabilisticAnswerSet};
use crowdval_sim::SyntheticConfig;
use crowdval_spammer::SpammerDetector;
use std::time::Instant;

struct Fixture {
    answers: AnswerSet,
    expert: ExpertValidation,
    current: ProbabilisticAnswerSet,
    aggregator: IncrementalEm,
    detector: SpammerDetector,
    candidates: Vec<ObjectId>,
}

impl Fixture {
    /// A dataset sized so `num_candidates` objects remain unvalidated.
    fn with_candidates(num_candidates: usize, seed: u64) -> Self {
        let validated = 10usize;
        let synth = SyntheticConfig {
            num_objects: num_candidates + validated,
            ..SyntheticConfig::paper_default(seed)
        }
        .generate();
        let answers = synth.dataset.answers().clone();
        let truth = synth.dataset.ground_truth().clone();
        let aggregator = IncrementalEm::default();
        let mut expert = ExpertValidation::empty(answers.num_objects());
        for o in 0..validated {
            expert.set(ObjectId(o), truth.label(ObjectId(o)));
        }
        let current = aggregator.conclude(&answers, &expert, None);
        let candidates = expert.unvalidated_objects();
        Self {
            answers,
            expert,
            current,
            aggregator,
            detector: SpammerDetector::default(),
            candidates,
        }
    }

    fn scoring(&self, parallel: bool) -> ScoringContext<'_> {
        ScoringContext {
            answers: &self.answers,
            expert: &self.expert,
            current: &self.current,
            aggregator: &self.aggregator,
            detector: &self.detector,
            parallel,
            entropy_cache: None,
        }
    }

    fn strategy_ctx(&self, parallel: bool) -> StrategyContext<'_> {
        StrategyContext {
            answers: &self.answers,
            expert: &self.expert,
            current: &self.current,
            aggregator: &self.aggregator,
            detector: &self.detector,
            candidates: &self.candidates,
            parallel,
            entropy_cache: None,
            guidance_cache: None,
        }
    }
}

/// Serial vs. parallel information-gain fan-out over the full candidate set.
fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("scoring_engine_fanout");
    group.sample_size(10);
    for num_candidates in [64usize, 128] {
        let fixture = Fixture::with_candidates(num_candidates, 70_000);
        let engine = ScoringEngine::exhaustive();
        group.bench_with_input(
            BenchmarkId::new("serial", num_candidates),
            &fixture,
            |b, f| b.iter(|| engine.information_gain_scores(&f.scoring(false), &f.candidates)),
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", num_candidates),
            &fixture,
            |b, f| b.iter(|| engine.information_gain_scores(&f.scoring(true), &f.candidates)),
        );
    }
    group.finish();

    // Headline comparison, stated explicitly so the §5.4 claim is visible in
    // the bench output without reading raw sample times.
    for num_candidates in [64usize, 128] {
        let fixture = Fixture::with_candidates(num_candidates, 70_000);
        let engine = ScoringEngine::exhaustive();
        let t = Instant::now();
        let serial = engine.information_gain_scores(&fixture.scoring(false), &fixture.candidates);
        let serial_time = t.elapsed();
        let t = Instant::now();
        let parallel = engine.information_gain_scores(&fixture.scoring(true), &fixture.candidates);
        let parallel_time = t.elapsed();
        assert_eq!(serial.len(), parallel.len());
        println!(
            "scoring {num_candidates} candidates: serial {serial_time:?}, parallel \
             {parallel_time:?} ({:.2}x speedup on {} threads)",
            serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-12),
            rayon::current_num_threads(),
        );
    }
}

/// Warm-started (i-EM, exact and delta-scoped) vs. cold-restart (batch EM)
/// hypothesis evaluation.
fn bench_hypothesis(c: &mut Criterion) {
    let fixture = Fixture::with_candidates(64, 70_001);
    let cold = BatchEm::default();
    let object = fixture.candidates[0];

    let mut group = c.benchmark_group("scoring_engine_hypothesis");
    group.sample_size(10);
    group.bench_function("warm_started_iem_delta", |b| {
        b.iter(|| {
            ScoringEngine::conditional_entropy_of(
                &fixture.aggregator,
                &fixture.answers,
                &fixture.expert,
                &fixture.current,
                object,
                ScoringMode::Delta,
            )
        })
    });
    group.bench_function("warm_started_iem_exact", |b| {
        b.iter(|| {
            ScoringEngine::conditional_entropy_of(
                &fixture.aggregator,
                &fixture.answers,
                &fixture.expert,
                &fixture.current,
                object,
                ScoringMode::Exact,
            )
        })
    });
    group.bench_function("cold_restart_batch_em", |b| {
        b.iter(|| {
            ScoringEngine::conditional_entropy_of(
                &cold,
                &fixture.answers,
                &fixture.expert,
                &fixture.current,
                object,
                ScoringMode::Exact,
            )
        })
    });
    group.finish();
}

/// Cost of one `select` call per strategy (all routed through the engine).
fn bench_strategies(c: &mut Criterion) {
    let fixture = Fixture::with_candidates(64, 70_000);
    let mut group = c.benchmark_group("guidance_selection");
    group.sample_size(10);
    group.bench_function("random", |b| {
        let mut s = RandomSelection::new(1);
        b.iter(|| s.select(&fixture.strategy_ctx(true)))
    });
    group.bench_function("entropy_baseline", |b| {
        let mut s = EntropyBaseline;
        b.iter(|| s.select(&fixture.strategy_ctx(true)))
    });
    group.bench_function("worker_driven", |b| {
        let mut s = WorkerDriven;
        b.iter(|| s.select(&fixture.strategy_ctx(true)))
    });
    group.bench_function("uncertainty_driven_shortlist", |b| {
        let mut s = UncertaintyDriven::with_max_evaluated(16);
        b.iter(|| s.select(&fixture.strategy_ctx(true)))
    });
    group.bench_function("uncertainty_driven_exhaustive", |b| {
        let mut s = UncertaintyDriven::exhaustive();
        b.iter(|| s.select(&fixture.strategy_ctx(true)))
    });
    group.bench_function("hybrid", |b| {
        let mut s = HybridStrategy::new(5);
        b.iter(|| s.select(&fixture.strategy_ctx(true)))
    });
    group.finish();
}

criterion_group!(benches, bench_fanout, bench_hypothesis, bench_strategies);
criterion_main!(benches);
