//! Criterion bench behind Table 5: start-up cost of partitioning a large
//! sparse answer matrix into dense blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdval_core::partition_answer_matrix;
use crowdval_sim::SyntheticConfig;

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("tab05_partitioning");
    group.sample_size(10);
    // A scaled-down version of the paper's 16 000-question workload so the
    // bench completes quickly; the experiments binary runs the full size.
    for questions_per_worker in [10usize, 20, 40] {
        let synth = SyntheticConfig {
            num_objects: 4000,
            num_workers: 250,
            answers_per_object: Some(((250 * questions_per_worker) / 4000).max(1)),
            max_answers_per_worker: Some(questions_per_worker),
            ..SyntheticConfig::paper_default(50_000 + questions_per_worker as u64)
        }
        .generate();
        let answers = synth.dataset.answers().clone();
        group.bench_with_input(
            BenchmarkId::from_parameter(questions_per_worker),
            &questions_per_worker,
            |b, _| b.iter(|| partition_answer_matrix(&answers, 50)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
