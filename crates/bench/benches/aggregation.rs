//! Criterion bench behind Fig. 8: cost of one aggregation update when a new
//! expert validation arrives — warm-started i-EM vs. batch EM restarted from
//! a random estimate. Also covers majority voting as the floor.

use criterion::{criterion_group, criterion_main, Criterion};
use crowdval_aggregation::{
    Aggregator, BatchEm, EmConfig, IncrementalEm, InitStrategy, MajorityVoting,
};
use crowdval_model::{ExpertValidation, ObjectId};
use crowdval_sim::SyntheticConfig;

fn bench_aggregation(c: &mut Criterion) {
    let synth = SyntheticConfig::paper_default(60_000).generate();
    let answers = synth.dataset.answers().clone();
    let truth = synth.dataset.ground_truth().clone();

    // Simulate a validation process that has already collected 10
    // validations; the benchmark measures integrating the 11th.
    let iem = IncrementalEm::default();
    let mut expert = ExpertValidation::empty(answers.num_objects());
    let mut state = iem.conclude(&answers, &expert, None);
    for o in 0..10 {
        expert.set(ObjectId(o), truth.label(ObjectId(o)));
        state = iem.conclude(&answers, &expert, Some(&state));
    }
    let mut next = expert.clone();
    next.set(ObjectId(10), truth.label(ObjectId(10)));

    let mut group = c.benchmark_group("fig08_aggregation_update");
    group.bench_function("i-em_warm_start", |b| {
        b.iter(|| iem.conclude(&answers, &next, Some(&state)))
    });
    let restart = BatchEm::with_init(EmConfig::paper_default(), InitStrategy::Random { seed: 3 });
    group.bench_function("batch_em_random_restart", |b| {
        b.iter(|| restart.conclude(&answers, &next, None))
    });
    group.bench_function("majority_voting", |b| {
        b.iter(|| MajorityVoting.conclude(&answers, &next, None))
    });
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
