//! Criterion bench behind Fig. 4: response time of one guidance iteration
//! (information-gain scoring over all candidates), serial vs. parallel,
//! as the number of objects grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdval_aggregation::{Aggregator, IncrementalEm};
use crowdval_core::{SelectionStrategy, StrategyContext, UncertaintyDriven};
use crowdval_model::ExpertValidation;
use crowdval_sim::SyntheticConfig;
use crowdval_spammer::SpammerDetector;

fn bench_response_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig04_response_time");
    group.sample_size(10);
    for objects in [20usize, 35, 50] {
        let synth = SyntheticConfig {
            num_objects: objects,
            ..SyntheticConfig::paper_default(40_000 + objects as u64)
        }
        .generate();
        let answers = synth.dataset.answers().clone();
        let expert = ExpertValidation::empty(objects);
        let aggregator = IncrementalEm::default();
        let current = aggregator.conclude(&answers, &expert, None);
        let detector = SpammerDetector::default();
        let candidates = expert.unvalidated_objects();

        for parallel in [false, true] {
            let label = if parallel { "parallel" } else { "serial" };
            group.bench_with_input(BenchmarkId::new(label, objects), &objects, |b, _| {
                b.iter(|| {
                    let ctx = StrategyContext {
                        answers: &answers,
                        expert: &expert,
                        current: &current,
                        aggregator: &aggregator,
                        detector: &detector,
                        candidates: &candidates,
                        parallel,
                        entropy_cache: None,
                        guidance_cache: None,
                    };
                    UncertaintyDriven::exhaustive().select(&ctx)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_response_time);
criterion_main!(benches);
