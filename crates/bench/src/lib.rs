//! Experiment harness for the SIGMOD'15 reproduction.
//!
//! Each experiment module regenerates one table or figure of the paper's
//! evaluation section (see `DESIGN.md` for the full index) and returns a
//! [`report::Report`] — a set of labelled rows that is printed to stdout and
//! written as JSON under `target/experiments/`. The `experiments` binary
//! dispatches on experiment ids (`fig04`, `tab05`, …) or runs them all.

pub mod exp;
pub mod report;
pub mod runner;

pub use report::Report;

/// All experiment ids in the order they appear in the paper.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "tab04", "fig04", "tab05", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
    "tab06", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
    "fig21", "fig22", "fig23",
];

/// Runs a single experiment by id.
pub fn run_experiment(id: &str) -> Option<Report> {
    let report = match id {
        "tab04" => exp::datasets::tab04_dataset_statistics(),
        "fig04" => exp::runtime::fig04_response_time(),
        "tab05" => exp::runtime::tab05_partitioning_startup(),
        "fig05" => exp::aggregation::fig05_integration_modes(),
        "fig06" => exp::aggregation::fig06_probability_histogram(),
        "fig07" => exp::aggregation::fig07_guidance_consistency(),
        "fig08" => exp::aggregation::fig08_iteration_reduction(),
        "fig09" => exp::spammer::fig09_spammer_detection(),
        "fig10" => exp::guidance::fig10_real_world_effectiveness(),
        "fig11" => exp::mistakes::fig11_guiding_with_mistakes(),
        "tab06" => exp::mistakes::tab06_mistake_detection(),
        "fig12" => exp::cost::fig12_cost_tradeoff(),
        "fig13" => exp::cost::fig13_budget_allocation(),
        "fig14" => exp::cost::fig14_time_and_budget(),
        "fig15" => exp::guidance::fig15_uncertainty_precision_correlation(),
        "fig16" => exp::guidance::fig16_question_difficulty(),
        "fig17" => exp::guidance::fig17_number_of_labels(),
        "fig18" => exp::guidance::fig18_number_of_workers(),
        "fig19" => exp::guidance::fig19_worker_reliability(),
        "fig20" => exp::guidance::fig20_spammer_ratio(),
        "fig21" => exp::cost::fig21_question_difficulty_cost(),
        "fig22" => exp::cost::fig22_spammer_cost(),
        "fig23" => exp::cost::fig23_reliability_cost(),
        _ => return None,
    };
    Some(report)
}
