//! Guidance-effectiveness experiments: Fig. 10 (real-world datasets), Fig. 15
//! (uncertainty/precision correlation), Fig. 16–20 (question difficulty,
//! number of labels, number of workers, worker reliability, spammer ratio).

use crate::report::{f3, pct, Report};
use crate::runner::{precision_table, run_guided, GuidanceKind, RunSettings};
use crowdval_core::ValidationGoal;
use crowdval_model::Dataset;
use crowdval_numerics::pearson_correlation;
use crowdval_sim::{replica, PopulationMix, ReplicaName, SyntheticConfig};

const EFFORT_LEVELS: [usize; 7] = [0, 10, 20, 40, 60, 80, 100];

/// Runs hybrid and baseline guidance on one dataset and appends a
/// precision-vs-effort block to the report.
fn hybrid_vs_baseline(report: &mut Report, label: &str, dataset: &Dataset, seed: u64) {
    let settings = RunSettings {
        seed,
        ..RunSettings::default()
    };
    let (hybrid, _) = run_guided(dataset, GuidanceKind::Hybrid, settings);
    let (baseline, _) = run_guided(dataset, GuidanceKind::Baseline, settings);
    report.add_row(vec![
        format!("--- {label} ---"),
        String::new(),
        String::new(),
        String::new(),
    ]);
    for &effort in &EFFORT_LEVELS {
        let e = effort as f64 / 100.0;
        report.add_row(vec![
            label.to_string(),
            format!("{effort}"),
            hybrid.precision_at_effort(e).map_or("-".into(), f3),
            baseline.precision_at_effort(e).map_or("-".into(), f3),
        ]);
    }
    // Improvement summary at 20 % effort (the paper's headline operating
    // point).
    let improvement = hybrid.precision_improvement_at_effort(0.2).unwrap_or(0.0);
    report.add_note(format!(
        "{label}: precision improvement at 20 % effort = {} % (hybrid)",
        pct(improvement)
    ));
}

/// Fig. 10: precision vs. expert effort on the bb, rte and val replicas,
/// hybrid vs. the highest-entropy baseline.
pub fn fig10_real_world_effectiveness() -> Report {
    let mut report = Report::new(
        "fig10",
        "Figure 10: effectiveness of guiding on real-world replicas (precision)",
        &["dataset", "effort %", "hybrid", "baseline"],
    );
    for (name, seed) in [
        (ReplicaName::Bluebird, 100),
        (ReplicaName::Rte, 101),
        (ReplicaName::Valence, 102),
    ] {
        let data = replica(name);
        hybrid_vs_baseline(&mut report, name.short_name(), &data.dataset, seed);
    }
    report.add_note("expected shape: hybrid reaches high precision with roughly half the effort of the baseline");
    report
}

/// Fig. 16 (Appendix C): effect of question difficulty — the easy `twt`
/// replica vs. the hard `art` replica.
pub fn fig16_question_difficulty() -> Report {
    let mut report = Report::new(
        "fig16",
        "Figure 16: effect of question difficulty (twt vs. art)",
        &["dataset", "effort %", "hybrid", "baseline"],
    );
    for (name, seed) in [(ReplicaName::Tweet, 160), (ReplicaName::Article, 161)] {
        let data = replica(name);
        hybrid_vs_baseline(&mut report, name.short_name(), &data.dataset, seed);
    }
    report.add_note("expected shape: both datasets benefit from guidance; the easy dataset (twt) reaches high precision with less effort than the hard one (art)");
    report
}

/// Fig. 17: effect of the number of labels (m = 2 vs. m = 4).
pub fn fig17_number_of_labels() -> Report {
    let mut report = Report::new(
        "fig17",
        "Figure 17: effect of the number of labels",
        &["labels", "effort %", "hybrid", "baseline"],
    );
    for (labels, seed) in [(2usize, 170u64), (4, 171)] {
        let synth = SyntheticConfig {
            num_labels: labels,
            ..SyntheticConfig::paper_default(seed)
        }
        .generate();
        hybrid_vs_baseline(
            &mut report,
            &format!("{labels} labels"),
            &synth.dataset,
            seed,
        );
    }
    report.add_note("expected shape: with more labels random agreement is rarer, so guidance reaches perfect precision with less effort");
    report
}

/// Fig. 18: effect of the number of workers (k = 20, 30, 40).
pub fn fig18_number_of_workers() -> Report {
    let mut report = Report::new(
        "fig18",
        "Figure 18: effect of the number of workers",
        &["workers", "effort %", "hybrid", "baseline"],
    );
    for (workers, seed) in [(20usize, 180u64), (30, 181), (40, 182)] {
        let synth = SyntheticConfig {
            num_workers: workers,
            ..SyntheticConfig::paper_default(seed)
        }
        .generate();
        hybrid_vs_baseline(
            &mut report,
            &format!("{workers} workers"),
            &synth.dataset,
            seed,
        );
    }
    report.add_note("expected shape: more workers -> higher precision at the same effort");
    report
}

/// Fig. 19: effect of worker reliability (r = 0.65, 0.7, 0.75).
pub fn fig19_worker_reliability() -> Report {
    let mut report = Report::new(
        "fig19",
        "Figure 19: effect of worker reliability",
        &["reliability", "effort %", "hybrid", "baseline"],
    );
    for (reliability, seed) in [(0.65f64, 190u64), (0.70, 191), (0.75, 192)] {
        let synth = SyntheticConfig {
            reliability,
            ..SyntheticConfig::paper_default(seed)
        }
        .generate();
        hybrid_vs_baseline(
            &mut report,
            &format!("r={reliability}"),
            &synth.dataset,
            seed,
        );
    }
    report.add_note("expected shape: higher reliability -> higher precision at the same effort; hybrid dominates the baseline for every r");
    report
}

/// Fig. 20: effect of the spammer ratio (σ = 15 %, 25 %, 35 %).
pub fn fig20_spammer_ratio() -> Report {
    let mut report = Report::new(
        "fig20",
        "Figure 20: effect of spammers",
        &["spammer ratio", "effort %", "hybrid", "baseline"],
    );
    for (sigma, seed) in [(0.15f64, 200u64), (0.25, 201), (0.35, 202)] {
        let synth = SyntheticConfig {
            mix: PopulationMix::with_spammer_ratio(sigma),
            ..SyntheticConfig::paper_default(seed)
        }
        .generate();
        hybrid_vs_baseline(&mut report, &format!("sigma={sigma}"), &synth.dataset, seed);
    }
    report.add_note(
        "expected shape: hybrid outperforms the baseline independent of the spammer ratio",
    );
    report
}

/// Fig. 15 (Appendix B): correlation between the (normalized) uncertainty of
/// the probabilistic answer set and the precision of the deterministic
/// assignment over whole validation runs.
pub fn fig15_uncertainty_precision_correlation() -> Report {
    let mut report = Report::new(
        "fig15",
        "Figure 15: relation between uncertainty and precision",
        &["workers", "spammer %", "reliability", "pearson r"],
    );
    let mut all_precisions = Vec::new();
    let mut all_uncertainties = Vec::new();
    let mut seed = 1500u64;
    for &workers in &[20usize, 40] {
        for &sigma in &[0.15f64, 0.35] {
            for &reliability in &[0.65f64, 0.75] {
                seed += 1;
                let synth = SyntheticConfig {
                    num_workers: workers,
                    reliability,
                    mix: PopulationMix::with_spammer_ratio(sigma),
                    ..SyntheticConfig::paper_default(seed)
                }
                .generate();
                let (trace, _) = run_guided(
                    &synth.dataset,
                    GuidanceKind::UncertaintyDriven,
                    RunSettings {
                        seed,
                        ..RunSettings::default()
                    },
                );
                let pairs = trace.precision_uncertainty_pairs();
                let max_h = pairs
                    .iter()
                    .map(|(_, h)| *h)
                    .fold(f64::MIN, f64::max)
                    .max(1e-12);
                let (ps, hs): (Vec<f64>, Vec<f64>) =
                    pairs.into_iter().map(|(p, h)| (p, h / max_h)).unzip();
                let r = pearson_correlation(&ps, &hs).unwrap_or(0.0);
                all_precisions.extend_from_slice(&ps);
                all_uncertainties.extend_from_slice(&hs);
                report.add_row(vec![
                    workers.to_string(),
                    format!("{:.0}", sigma * 100.0),
                    format!("{reliability}"),
                    f3(r),
                ]);
            }
        }
    }
    let overall = pearson_correlation(&all_precisions, &all_uncertainties).unwrap_or(0.0);
    report.add_row(vec!["overall".into(), "-".into(), "-".into(), f3(overall)]);
    report.add_note("expected shape: strongly negative correlation (the paper reports -0.9461)");
    report
}

/// Helper kept public for the ablation study in the benches: runs every
/// strategy on one synthetic dataset and tabulates precision at the standard
/// effort levels.
pub fn strategy_ablation(seed: u64) -> Report {
    let mut report = Report::new(
        "ablation",
        "Ablation: all guidance strategies on the default synthetic dataset",
        &[
            "effort %",
            "hybrid",
            "uncertainty",
            "worker",
            "baseline",
            "random",
        ],
    );
    let synth = SyntheticConfig::paper_default(seed).generate();
    let settings = RunSettings {
        goal: ValidationGoal::ExhaustBudget,
        budget: Some(50),
        seed,
        ..RunSettings::default()
    };
    let kinds = [
        GuidanceKind::Hybrid,
        GuidanceKind::UncertaintyDriven,
        GuidanceKind::WorkerDriven,
        GuidanceKind::Baseline,
        GuidanceKind::Random,
    ];
    let traces: Vec<_> = kinds
        .iter()
        .map(|&k| run_guided(&synth.dataset, k, settings).0)
        .collect();
    let named: Vec<(&str, &crowdval_core::ValidationTrace)> = kinds
        .iter()
        .zip(&traces)
        .map(|(k, t)| (k.label(), t))
        .collect();
    precision_table(&mut report, &[0, 10, 20, 40, 60, 80, 100], &named);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_ablation_reports_all_strategies() {
        let r = strategy_ablation(42);
        assert_eq!(r.headers.len(), 6);
        assert_eq!(r.rows.len(), 7);
        // At 100 % effort every strategy reaches precision 1.0.
        let last = r.rows.last().unwrap();
        for cell in &last[1..] {
            assert_eq!(cell, "1.000");
        }
    }
}
