//! Aggregation-focused experiments: Fig. 5 (Separate vs. Combined expert
//! integration), Fig. 6 (probability of correct labels), Fig. 7 (guidance
//! consistency of i-EM vs. restarted EM) and Fig. 8 (EM-iteration reduction).

use crate::report::{pct, Report};
use crowdval_aggregation::{
    aggregate_combined, Aggregator, BatchEm, EmConfig, IncrementalEm, InitStrategy,
};
use crowdval_core::{
    EntropyBaseline, ProcessConfig, SelectionStrategy, StrategyContext, UncertaintyDriven,
    ValidationGoal, ValidationProcess,
};
use crowdval_model::{ExpertValidation, GroundTruth, ObjectId};
use crowdval_numerics::Histogram;
use crowdval_sim::{all_replicas, replica, ReplicaName, SimulatedExpert, SyntheticConfig};
use crowdval_spammer::SpammerDetector;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Fig. 5: precision improvement vs. expert effort when the expert input is
/// integrated as ground truth (Separate) or as one more crowd answer
/// (Combined), on the `val` replica.
pub fn fig05_integration_modes() -> Report {
    let mut report = Report::new(
        "fig05",
        "Figure 5: ways of integrating expert input (val dataset)",
        &["effort %", "separate impr. %", "combined impr. %"],
    );
    let data = replica(ReplicaName::Valence);
    let answers = data.dataset.answers().clone();
    let truth = data.dataset.ground_truth().clone();
    let n = answers.num_objects();

    let mut process = ValidationProcess::builder(answers.clone())
        .strategy(Box::new(crowdval_core::HybridStrategy::new(50)))
        .config(ProcessConfig {
            parallel: true,
            ..ProcessConfig::default()
        })
        .ground_truth(truth.clone())
        .build();
    let p0 = process.precision().expect("ground truth attached");
    let mut expert = SimulatedExpert::perfect(truth.clone(), 2);

    for step in 1..=(3 * n / 10) {
        let Some(object) = process.select_next() else {
            break;
        };
        let label = expert.validate(object);
        process
            .integrate(object, label)
            .expect("simulated labels are in range");
        if step % (n / 20).max(1) == 0 {
            let separate = process.precision().unwrap();
            let combined_state =
                aggregate_combined(&answers, process.expert(), &BatchEm::default());
            let combined = truth.precision(&combined_state.instantiate());
            report.add_row(vec![
                pct(step as f64 / n as f64),
                pct(GroundTruth::precision_improvement(p0, separate)),
                pct(GroundTruth::precision_improvement(p0, combined)),
            ]);
        }
    }
    report.add_note("expected shape: Separate dominates Combined at every effort level (Fig. 5)");
    report
}

/// Fig. 6: histogram of the assignment probability of the *correct* label
/// across objects, at 0 %, 15 % and 30 % expert effort (val replica).
pub fn fig06_probability_histogram() -> Report {
    let mut report = Report::new(
        "fig06",
        "Figure 6: distribution of correct-label probabilities (val dataset, % of objects)",
        &["probability bin", "0% effort", "15% effort", "30% effort"],
    );
    let data = replica(ReplicaName::Valence);
    let truth = data.dataset.ground_truth().clone();
    let n = data.dataset.answers().num_objects();

    let mut histograms = Vec::new();
    for effort in [0.0, 0.15, 0.30] {
        let budget = (effort * n as f64).round() as usize;
        let mut process = ValidationProcess::builder(data.dataset.answers().clone())
            .strategy(Box::new(crowdval_core::HybridStrategy::new(60)))
            .config(ProcessConfig {
                budget: Some(budget),
                goal: ValidationGoal::ExhaustBudget,
                parallel: true,
                ..ProcessConfig::default()
            })
            .ground_truth(truth.clone())
            .build();
        let mut expert = SimulatedExpert::perfect(truth.clone(), 2);
        let mut provide = |o: ObjectId| expert.validate(o);
        process
            .run(&mut provide)
            .expect("simulated labels are in range");
        let mut histogram = Histogram::new(0.0, 1.0, 10);
        for (o, correct) in truth.iter() {
            histogram.add(process.current().assignment().prob(o, correct));
        }
        histograms.push(histogram);
    }

    for bin in 0..10 {
        let mut row = vec![format!(
            "{:.1}-{:.1}",
            bin as f64 / 10.0,
            (bin + 1) as f64 / 10.0
        )];
        for h in &histograms {
            row.push(format!("{:.1}", h.frequencies_percent()[bin]));
        }
        report.add_row(row);
    }
    report.add_note("expected shape: mass shifts toward the 0.9-1.0 bin as expert effort grows");
    report
}

/// Fig. 7: how often the incremental (i-EM) and the restarted (random-init)
/// estimation select the same object for validation, per dataset and effort.
pub fn fig07_guidance_consistency() -> Report {
    let mut report = Report::new(
        "fig07",
        "Figure 7: i-EM vs. restarted EM picking the same validation object (%)",
        &["dataset", "20% effort", "50% effort", "80% effort"],
    );
    const TRIALS: usize = 3;
    for data in all_replicas() {
        let answers = data.dataset.answers();
        let truth = data.dataset.ground_truth();
        let n = answers.num_objects();
        let mut row = vec![data.dataset.name().to_string()];
        for effort in [0.2, 0.5, 0.8] {
            let mut agree = 0usize;
            for trial in 0..TRIALS {
                // Random validated subset of the requested size.
                let mut objects: Vec<usize> = (0..n).collect();
                let mut rng = StdRng::seed_from_u64(700 + trial as u64);
                objects.shuffle(&mut rng);
                let mut expert = ExpertValidation::empty(n);
                for &o in objects.iter().take((effort * n as f64) as usize) {
                    expert.set(ObjectId(o), truth.label(ObjectId(o)));
                }

                // Warm state: i-EM continuing from the un-validated state.
                let iem = IncrementalEm::default();
                let base = iem.conclude(answers, &ExpertValidation::empty(n), None);
                let warm = iem.conclude(answers, &expert, Some(&base));
                // Cold state: batch EM restarted from a random estimate.
                let cold = BatchEm::with_init(
                    EmConfig::paper_default(),
                    InitStrategy::Random {
                        seed: 900 + trial as u64,
                    },
                )
                .conclude(answers, &expert, None);

                let detector = SpammerDetector::default();
                let candidates = expert.unvalidated_objects();
                let strategy = UncertaintyDriven::with_max_evaluated(24);
                let pick = |state: &crowdval_model::ProbabilisticAnswerSet| {
                    let ctx = StrategyContext {
                        answers,
                        expert: &expert,
                        current: state,
                        aggregator: &iem,
                        detector: &detector,
                        candidates: &candidates,
                        parallel: true,
                        entropy_cache: None,
                        guidance_cache: None,
                    };
                    let mut s = strategy;
                    s.select(&ctx)
                };
                if pick(&warm) == pick(&cold) {
                    agree += 1;
                }
            }
            row.push(pct(agree as f64 / TRIALS as f64));
        }
        report.add_row(row);
    }
    report.add_note("expected shape: agreement close to 100 % across datasets and effort levels");
    report
}

/// Fig. 8: EM iterations saved by warm-starting i-EM from the previous
/// validation iteration instead of restarting from a random estimate.
pub fn fig08_iteration_reduction() -> Report {
    let mut report = Report::new(
        "fig08",
        "Figure 8: EM-iteration reduction of i-EM vs. restarted EM (%)",
        &[
            "effort %",
            "warm iterations",
            "cold iterations",
            "reduction %",
        ],
    );
    const SEEDS: [u64; 3] = [81, 82, 83];
    let efforts = [0.2, 0.4, 0.6, 0.8, 1.0];
    let mut warm_total = vec![0usize; efforts.len()];
    let mut cold_total = vec![0usize; efforts.len()];

    for seed in SEEDS {
        let synth = SyntheticConfig::paper_default(seed).generate();
        let answers = synth.dataset.answers();
        let truth = synth.dataset.ground_truth();
        let n = answers.num_objects();
        let iem = IncrementalEm::default();
        let cold = BatchEm::with_init(EmConfig::paper_default(), InitStrategy::Random { seed });

        let mut expert = ExpertValidation::empty(n);
        let mut state = iem.conclude(answers, &expert, None);
        let mut warm_cum = 0usize;
        let mut cold_cum = 0usize;
        let mut strategy = EntropyBaseline;
        let detector = SpammerDetector::default();
        for step in 1..=n {
            let candidates = expert.unvalidated_objects();
            let picked = {
                let ctx = StrategyContext {
                    answers,
                    expert: &expert,
                    current: &state,
                    aggregator: &iem,
                    detector: &detector,
                    candidates: &candidates,
                    parallel: false,
                    entropy_cache: None,
                    guidance_cache: None,
                };
                strategy.select(&ctx).expect("candidates remain")
            };
            expert.set(picked, truth.label(picked));
            state = iem.conclude(answers, &expert, Some(&state));
            warm_cum += state.em_iterations();
            cold_cum += cold.conclude(answers, &expert, None).em_iterations();
            for (idx, &effort) in efforts.iter().enumerate() {
                if step == (effort * n as f64) as usize {
                    warm_total[idx] += warm_cum;
                    cold_total[idx] += cold_cum;
                }
            }
        }
    }

    for (idx, &effort) in efforts.iter().enumerate() {
        let warm = warm_total[idx] as f64 / SEEDS.len() as f64;
        let cold = cold_total[idx] as f64 / SEEDS.len() as f64;
        report.add_row(vec![
            pct(effort),
            format!("{warm:.0}"),
            format!("{cold:.0}"),
            pct((cold - warm) / cold),
        ]);
    }
    report.add_note("expected shape: i-EM saves a growing share (>30 %) of EM iterations as validations accumulate");
    report
}

/// Helper reused by unit tests of this module.
#[allow(dead_code)]
fn precision_of(state: &crowdval_model::ProbabilisticAnswerSet, truth: &GroundTruth) -> f64 {
    truth.precision(&state.instantiate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_guided, GuidanceKind, RunSettings};

    #[test]
    fn fig08_reports_reduction_per_effort_level() {
        // Use the real experiment but only check structural invariants to keep
        // the test affordable: 5 effort rows, 4 columns each.
        let r = fig08_iteration_reduction();
        assert_eq!(r.rows.len(), 5);
        assert!(r.rows.iter().all(|row| row.len() == 4));
    }

    #[test]
    fn run_guided_smoke_for_fig05_inputs() {
        // The val replica drives fig05/fig06; make sure a short guided run on
        // it terminates and produces a usable trace.
        let data = replica(ReplicaName::Valence);
        let (trace, _) = run_guided(
            &data.dataset,
            GuidanceKind::Baseline,
            RunSettings {
                budget: Some(5),
                goal: ValidationGoal::ExhaustBudget,
                ..RunSettings::default()
            },
        );
        assert_eq!(trace.len(), 5);
    }
}
