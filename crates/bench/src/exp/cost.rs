//! Cost-model experiments (§6.8 and Appendix D): Fig. 12 (EV vs. WO cost
//! trade-off), Fig. 13 (fixed-budget allocation), Fig. 14 (budget + time
//! constraints), Fig. 21–23 (question difficulty, spammers and worker
//! reliability on the cost model).

use crate::report::{f3, pct, Report};
use crate::runner::{ev_curve, run_guided, wo_curve, GuidanceKind, RunSettings};
use crowdval_core::{CostModel, ValidationGoal};
use crowdval_sim::augment::thin_to_answers_per_object;
use crowdval_sim::{replica, PopulationMix, ReplicaName, SyntheticConfig, SyntheticDataset};

/// The synthetic crowd used by the cost experiments: 50 objects, 40 workers
/// (so the WO strategy has room to buy many answers per object).
fn cost_population(seed: u64, reliability: f64, sigma: f64) -> SyntheticDataset {
    SyntheticConfig {
        num_objects: 50,
        num_workers: 40,
        reliability,
        mix: PopulationMix::with_spammer_ratio(sigma),
        ..SyntheticConfig::paper_default(seed)
    }
    .generate()
}

/// Fig. 12: precision improvement vs. invested cost per object, comparing the
/// EV strategy for several expert-to-crowd cost ratios θ against the WO
/// strategy, for initial costs φ₀ = 3 and φ₀ = 13.
pub fn fig12_cost_tradeoff() -> Report {
    let mut report = Report::new(
        "fig12",
        "Figure 12: collect more crowd answers (WO) vs. validate more (EV)",
        &["phi0", "strategy", "cost/object", "precision impr. %"],
    );
    let source = cost_population(1200, 0.65, 0.25);
    let n = source.dataset.answers().num_objects();
    let validation_counts: Vec<usize> = vec![0, 5, 10, 15, 20, 30, 40, 50];

    for &phi0 in &[3usize, 13] {
        for &theta in &[12.5f64, 25.0, 50.0, 100.0] {
            let curve = ev_curve(
                &source,
                phi0,
                theta,
                &validation_counts,
                GuidanceKind::Hybrid,
                1201,
            );
            for point in curve {
                report.add_row(vec![
                    phi0.to_string(),
                    format!("EV theta={theta}"),
                    format!("{:.1}", point.cost_per_object),
                    pct(point.improvement),
                ]);
            }
        }
        let phis: Vec<usize> = [phi0, phi0 + 5, phi0 + 10, phi0 + 17, 30, 40]
            .into_iter()
            .filter(|&p| p >= phi0 && p <= 40)
            .collect();
        for point in wo_curve(&source, phi0, &phis, 1202) {
            report.add_row(vec![
                phi0.to_string(),
                "WO".to_string(),
                format!("{:.1}", point.cost_per_object),
                pct(point.improvement),
            ]);
        }
    }
    let _ = n;
    report.add_note("expected shape: EV reaches high improvement at lower cost than WO for theta <= 50; WO plateaus below 100 % due to faulty workers; only theta = 100 favours WO");
    report
}

/// Shared helper of Fig. 13/14: precision and expert validations for every
/// allocation of a fixed budget between crowd answers and expert validation.
fn allocation_rows(
    source: &SyntheticDataset,
    rho: f64,
    theta: f64,
) -> Vec<(f64, usize, usize, f64)> {
    let n = source.dataset.answers().num_objects();
    let cost = CostModel::new(theta, n);
    let budget = cost.budget_for_rho(rho);
    let max_phi = source.dataset.answers().num_workers();
    cost.allocations(budget, 10)
        .into_iter()
        .filter_map(|allocation| {
            let phi0 = (allocation.phi0.floor() as usize).min(max_phi);
            if phi0 == 0 {
                return None;
            }
            let dataset = thin_to_answers_per_object(source, phi0, 7);
            let (trace, _) = run_guided(
                &dataset,
                GuidanceKind::Hybrid,
                RunSettings {
                    budget: Some(allocation.validations),
                    goal: ValidationGoal::ExhaustBudget,
                    seed: 1300,
                    ..RunSettings::default()
                },
            );
            let precision = trace.final_precision().unwrap_or(0.0);
            Some((
                allocation.crowd_share,
                phi0,
                allocation.validations,
                precision,
            ))
        })
        .collect()
}

/// Fig. 13: precision under a fixed budget `b = ρ·θ·n` for different
/// allocations of the budget to crowd answers, ρ ∈ {0.3, 0.4, 0.5}, θ = 25.
pub fn fig13_budget_allocation() -> Report {
    let mut report = Report::new(
        "fig13",
        "Figure 13: allocation of a fixed budget (theta = 25)",
        &["rho", "crowd share %", "phi0", "validations", "precision"],
    );
    let source = cost_population(1300, 0.7, 0.25);
    for &rho in &[0.3f64, 0.4, 0.5] {
        for (crowd_share, phi0, validations, precision) in allocation_rows(&source, rho, 25.0) {
            report.add_row(vec![
                format!("{rho}"),
                pct(crowd_share),
                phi0.to_string(),
                validations.to_string(),
                f3(precision),
            ]);
        }
    }
    report.add_note("expected shape: for each rho there is an interior allocation (neither crowd-only nor expert-only) that maximizes precision");
    report
}

/// Fig. 14: the same allocation sweep for ρ = 0.4, annotated with the
/// completion-time proxy (number of expert validations) and a time
/// constraint; reports the best allocation satisfying the constraint.
pub fn fig14_time_and_budget() -> Report {
    let mut report = Report::new(
        "fig14",
        "Figure 14: balancing budget and completion-time constraints (rho = 0.4, theta = 25)",
        &[
            "crowd share %",
            "phi0",
            "expert feedback (time)",
            "precision",
            "within time limit",
        ],
    );
    let source = cost_population(1400, 0.7, 0.25);
    let max_validations = 15; // the time constraint (point B in the paper's figure)
    let rows = allocation_rows(&source, 0.4, 25.0);
    let mut best: Option<(f64, f64)> = None;
    for (crowd_share, phi0, validations, precision) in rows {
        let in_time = validations <= max_validations;
        if in_time && best.is_none_or(|(p, _)| precision > p) {
            best = Some((precision, crowd_share));
        }
        report.add_row(vec![
            pct(crowd_share),
            phi0.to_string(),
            validations.to_string(),
            f3(precision),
            if in_time { "yes".into() } else { "no".into() },
        ]);
    }
    if let Some((precision, crowd_share)) = best {
        report.add_note(format!(
            "best allocation satisfying the time constraint (<= {max_validations} validations): \
             crowd share {} %, precision {}",
            pct(crowd_share),
            f3(precision)
        ));
    }
    report.add_note("expected shape: the precision-maximal allocation shifts toward more crowd answers once the time constraint caps expert feedback");
    report
}

/// EV-vs-WO comparison on one dataset (used by Fig. 21).
fn ev_vs_wo_on_replica(report: &mut Report, name: ReplicaName, seed: u64) {
    let data = replica(name);
    let max_phi = data.dataset.answers().num_workers().min(40);
    let phi0 = 13usize.min(max_phi);
    let theta = 25.0;
    let n = data.dataset.answers().num_objects();
    let validation_counts: Vec<usize> = [0usize, n / 10, n / 5, 2 * n / 5, 3 * n / 5, n]
        .into_iter()
        .collect();
    for point in ev_curve(
        &data,
        phi0,
        theta,
        &validation_counts,
        GuidanceKind::Hybrid,
        seed,
    ) {
        report.add_row(vec![
            name.short_name().into(),
            "EV".into(),
            format!("{:.1}", point.cost_per_object),
            pct(point.improvement),
        ]);
    }
    let phis: Vec<usize> = vec![phi0, phi0 + 4, phi0 + 8, (phi0 + 15).min(max_phi), max_phi];
    for point in wo_curve(&data, phi0, &phis, seed + 1) {
        report.add_row(vec![
            name.short_name().into(),
            "WO".into(),
            format!("{:.1}", point.cost_per_object),
            pct(point.improvement),
        ]);
    }
}

/// Fig. 21: effect of question difficulty on the cost trade-off (twt vs.
/// art replicas, φ₀ = 13, θ = 25).
pub fn fig21_question_difficulty_cost() -> Report {
    let mut report = Report::new(
        "fig21",
        "Figure 21: effect of question difficulty on cost (twt vs. art)",
        &["dataset", "strategy", "cost/object", "precision impr. %"],
    );
    ev_vs_wo_on_replica(&mut report, ReplicaName::Tweet, 2100);
    ev_vs_wo_on_replica(&mut report, ReplicaName::Article, 2101);
    report.add_note("expected shape: EV improvement dominates WO on both datasets, with the gap larger on the hard dataset (art)");
    report
}

/// Fig. 22: effect of the spammer ratio on the cost trade-off
/// (σ = 15 % vs. 35 %, φ₀ = 13, θ = 25).
pub fn fig22_spammer_cost() -> Report {
    let mut report = Report::new(
        "fig22",
        "Figure 22: effect of spammers on cost",
        &["spammer %", "strategy", "cost/object", "precision impr. %"],
    );
    for (sigma, seed) in [(0.15f64, 2200u64), (0.35, 2201)] {
        let source = cost_population(seed, 0.65, sigma);
        let counts = [0usize, 5, 10, 20, 30, 50];
        for point in ev_curve(&source, 13, 25.0, &counts, GuidanceKind::Hybrid, seed) {
            report.add_row(vec![
                format!("{:.0}", sigma * 100.0),
                "EV".into(),
                format!("{:.1}", point.cost_per_object),
                pct(point.improvement),
            ]);
        }
        for point in wo_curve(&source, 13, &[13, 18, 25, 32, 40], seed + 7) {
            report.add_row(vec![
                format!("{:.0}", sigma * 100.0),
                "WO".into(),
                format!("{:.1}", point.cost_per_object),
                pct(point.improvement),
            ]);
        }
    }
    report.add_note("expected shape: the more spammers, the larger EV's advantage over WO (extra answers increasingly come from unreliable workers)");
    report
}

/// Fig. 23: effect of worker reliability on the cost trade-off
/// (r = 0.6, 0.65, 0.7, φ₀ = 13, θ = 25), reported as absolute precision.
pub fn fig23_reliability_cost() -> Report {
    let mut report = Report::new(
        "fig23",
        "Figure 23: effect of worker reliability on cost (absolute precision)",
        &["reliability", "strategy", "cost/object", "precision"],
    );
    for (reliability, seed) in [(0.6f64, 2300u64), (0.65, 2301), (0.7, 2302)] {
        let source = cost_population(seed, reliability, 0.25);
        let counts = [0usize, 5, 10, 20, 30, 50];
        for point in ev_curve(&source, 13, 25.0, &counts, GuidanceKind::Hybrid, seed) {
            report.add_row(vec![
                format!("{reliability}"),
                "EV".into(),
                format!("{:.1}", point.cost_per_object),
                f3(point.precision),
            ]);
        }
        for point in wo_curve(&source, 13, &[13, 18, 25, 32, 40], seed + 7) {
            report.add_row(vec![
                format!("{reliability}"),
                "WO".into(),
                format!("{:.1}", point.cost_per_object),
                f3(point.precision),
            ]);
        }
    }
    report.add_note("expected shape: EV converges to precision 1.0 for every reliability; WO converges slowly (r=0.7), stalls (r=0.65) or degrades (r=0.6)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_rows_cover_the_crowd_share_range() {
        let source = cost_population(9999, 0.7, 0.25);
        let rows = allocation_rows(&source, 0.3, 25.0);
        assert!(!rows.is_empty());
        // Crowd share increases monotonically and validations decrease.
        for pair in rows.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].2 >= pair[1].2);
        }
    }
}
