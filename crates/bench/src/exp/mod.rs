//! One module per group of experiments; every public function regenerates a
//! single table or figure of the paper (see `DESIGN.md` for the index).

pub mod aggregation;
pub mod cost;
pub mod datasets;
pub mod guidance;
pub mod mistakes;
pub mod runtime;
pub mod spammer;
