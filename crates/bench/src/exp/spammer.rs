//! Fig. 9: precision and recall of the spammer-detection technique as expert
//! effort grows, for spammer-score thresholds τ_s ∈ {0.1, 0.2, 0.3}.

use crate::report::{f3, Report};
use crowdval_model::{ExpertValidation, ObjectId};
use crowdval_sim::SyntheticConfig;
use crowdval_spammer::{DetectorConfig, SpammerDetector};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Fig. 9: spammer-detection quality vs. validation effort and threshold.
pub fn fig09_spammer_detection() -> Report {
    let mut report = Report::new(
        "fig09",
        "Figure 9: spammer-detection precision and recall vs. expert effort",
        &["effort %", "tau_s", "precision", "recall"],
    );
    const SEEDS: [u64; 4] = [901, 902, 903, 904];
    let thresholds = [0.1, 0.2, 0.3];
    let efforts = [0.2, 0.4, 0.6, 0.8, 1.0];

    for &effort in &efforts {
        for &tau in &thresholds {
            let mut precision_sum = 0.0;
            let mut recall_sum = 0.0;
            for &seed in &SEEDS {
                let synth = SyntheticConfig::paper_default(seed).generate();
                let answers = synth.dataset.answers();
                let truth = synth.dataset.ground_truth();
                let spammers = synth.spammer_workers();
                let n = answers.num_objects();

                // Validate a random subset of the requested size.
                let mut objects: Vec<usize> = (0..n).collect();
                objects.shuffle(&mut StdRng::seed_from_u64(
                    seed * 31 + (effort * 10.0) as u64,
                ));
                let mut expert = ExpertValidation::empty(n);
                for &o in objects.iter().take((effort * n as f64) as usize) {
                    expert.set(ObjectId(o), truth.label(ObjectId(o)));
                }

                let detector = SpammerDetector::new(DetectorConfig::with_spammer_threshold(tau));
                let outcome = detector.detect(answers, &expert, &[0.5, 0.5]);
                // Detection quality is judged on the spammer set proper
                // (uniform + random spammers), matching the paper's setup.
                let detected = &outcome.spammers;
                let hits = detected.iter().filter(|w| spammers.contains(w)).count();
                let precision = if detected.is_empty() {
                    1.0
                } else {
                    hits as f64 / detected.len() as f64
                };
                let recall = if spammers.is_empty() {
                    1.0
                } else {
                    hits as f64 / spammers.len() as f64
                };
                precision_sum += precision;
                recall_sum += recall;
            }
            report.add_row(vec![
                format!("{:.0}", effort * 100.0),
                format!("{tau:.1}"),
                f3(precision_sum / SEEDS.len() as f64),
                f3(recall_sum / SEEDS.len() as f64),
            ]);
        }
    }
    report.add_note("expected shape: precision and recall rise with effort; larger tau_s trades precision for recall");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig09_produces_rows_for_every_effort_threshold_combination() {
        let r = fig09_spammer_detection();
        assert_eq!(r.rows.len(), 5 * 3);
        // Detection quality at full effort with the default threshold should
        // be decent on both axes.
        let full = r
            .rows
            .iter()
            .find(|row| row[0] == "100" && row[1] == "0.2")
            .unwrap();
        let precision: f64 = full[2].parse().unwrap();
        let recall: f64 = full[3].parse().unwrap();
        assert!(precision >= 0.5, "precision {precision}");
        assert!(recall >= 0.5, "recall {recall}");
    }
}
