//! Robustness against erroneous expert input: Fig. 11 (guiding with expert
//! mistakes on the hard `art` dataset) and Table 6 (share of injected expert
//! mistakes caught by the confirmation check).

use crate::report::{f3, Report};
use crate::runner::{run_guided, GuidanceKind, RunSettings};
use crowdval_core::ValidationGoal;
use crowdval_sim::{all_replicas, replica, ReplicaName};

/// Fig. 11: precision vs. effort on the `art` replica when the expert errs
/// (8 % of validations, the worst rate observed in the paper's user study),
/// with the confirmation check enabled.
pub fn fig11_guiding_with_mistakes() -> Report {
    let mut report = Report::new(
        "fig11",
        "Figure 11: guiding with expert mistakes (art dataset, 8 % mistake rate)",
        &["effort %", "hybrid", "baseline"],
    );
    let data = replica(ReplicaName::Article);
    let n = data.dataset.answers().num_objects();
    let settings = RunSettings {
        mistake_probability: 0.08,
        confirmation_interval: Some((n / 100).max(1)),
        seed: 110,
        ..RunSettings::default()
    };
    let (hybrid, _) = run_guided(&data.dataset, GuidanceKind::Hybrid, settings);
    let (baseline, _) = run_guided(&data.dataset, GuidanceKind::Baseline, settings);
    for effort in [0usize, 10, 20, 40, 60, 80, 100] {
        let e = effort as f64 / 100.0;
        report.add_row(vec![
            effort.to_string(),
            hybrid.precision_at_effort(e).map_or("-".into(), f3),
            baseline.precision_at_effort(e).map_or("-".into(), f3),
        ]);
    }
    report.add_note("expected shape: hybrid stays clearly above the baseline and close to the mistake-free curve of fig16 (art)");
    report
}

/// Table 6: percentage of injected expert mistakes that the confirmation
/// check detects (and lets the expert correct), per dataset and mistake
/// probability.
pub fn tab06_mistake_detection() -> Report {
    let mut report = Report::new(
        "tab06",
        "Table 6: percentage of detected mistakes in expert validation",
        &["dataset", "p=0.15", "p=0.20", "p=0.25", "p=0.30"],
    );
    for data in all_replicas() {
        let n = data.dataset.answers().num_objects();
        let budget = (n / 5).max(10); // 20 % effort keeps the runtime modest
        let mut row = vec![data.dataset.name().to_string()];
        for (idx, p) in [0.15f64, 0.20, 0.25, 0.30].into_iter().enumerate() {
            let settings = RunSettings {
                budget: Some(budget),
                goal: ValidationGoal::ExhaustBudget,
                mistake_probability: p,
                confirmation_interval: Some((n / 100).max(1)),
                seed: 600 + idx as u64,
                ..RunSettings::default()
            };
            let (trace, erred_on) = run_guided(&data.dataset, GuidanceKind::Hybrid, settings);
            if erred_on.is_empty() {
                row.push("100.0".into());
                continue;
            }
            // A mistake counts as detected when the object's final validation
            // (after reconsideration) carries the correct label.
            let truth = data.dataset.ground_truth();
            let corrected = erred_on
                .iter()
                .filter(|&&o| {
                    trace
                        .steps
                        .iter()
                        .rev()
                        .find(|s| s.object == o)
                        .is_some_and(|s| s.label == truth.label(o))
                })
                .count();
            row.push(format!(
                "{:.1}",
                100.0 * corrected as f64 / erred_on.len() as f64
            ));
        }
        report.add_row(row);
    }
    report.add_note("expected shape: the vast majority of injected mistakes is detected (the paper reports 79-100 %)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_has_one_row_per_effort_level() {
        // Structural check only (the full experiment is exercised by the
        // experiments binary); run a cheap variant on a small budget.
        let data = replica(ReplicaName::Article);
        let settings = RunSettings {
            budget: Some(5),
            goal: ValidationGoal::ExhaustBudget,
            mistake_probability: 0.2,
            confirmation_interval: Some(1),
            seed: 1,
            ..RunSettings::default()
        };
        let (trace, _) = run_guided(&data.dataset, GuidanceKind::Baseline, settings);
        assert!(trace.len() >= 5);
    }
}
