//! Table 4: statistics of the (replica) real-world datasets.

use crate::report::Report;
use crate::runner::initial_precision;
use crowdval_sim::all_replicas;

/// Regenerates Table 4 (plus the calibrated starting precision of each
/// replica, which anchors all precision-vs-effort figures).
pub fn tab04_dataset_statistics() -> Report {
    let mut report = Report::new(
        "tab04",
        "Table 4: statistics for the real-world dataset replicas",
        &[
            "dataset",
            "domain",
            "objects",
            "workers",
            "labels",
            "answers",
            "initial precision",
        ],
    );
    for replica in all_replicas() {
        let stats = replica.dataset.stats();
        report.add_row(vec![
            stats.name.clone(),
            stats.domain.clone(),
            stats.objects.to_string(),
            stats.workers.to_string(),
            stats.labels.to_string(),
            stats.answers.to_string(),
            crate::report::f3(initial_precision(&replica.dataset)),
        ]);
    }
    report.add_note(
        "replica datasets: same shapes as the paper's Table 4, worker quality calibrated so the \
         aggregated starting precision matches the Fig. 10/16 intercepts (see DESIGN.md)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab04_lists_all_five_datasets_with_paper_shapes() {
        let report = tab04_dataset_statistics();
        assert_eq!(report.rows.len(), 5);
        let rte = report.rows.iter().find(|r| r[0] == "rte").unwrap();
        assert_eq!(rte[2], "800");
        assert_eq!(rte[3], "164");
        assert_eq!(rte[4], "2");
    }
}
