//! Runtime experiments: Fig. 4 (response time per validation iteration,
//! serial vs. parallel) and Table 5 (matrix-partitioning start-up time).

use crate::report::Report;
use crowdval_aggregation::{Aggregator, IncrementalEm};
use crowdval_core::{
    partition_answer_matrix, SelectionStrategy, StrategyContext, UncertaintyDriven,
};
use crowdval_model::ExpertValidation;
use crowdval_sim::SyntheticConfig;
use crowdval_spammer::SpammerDetector;
use std::time::Instant;

/// Fig. 4: response time of one guidance iteration (information-gain scoring
/// over all unvalidated objects) as the number of objects grows, with and
/// without parallel candidate scoring.
pub fn fig04_response_time() -> Report {
    let mut report = Report::new(
        "fig04",
        "Figure 4: response time per validation iteration (seconds)",
        &["objects", "serial (s)", "parallel (s)", "speedup"],
    );
    const REPS: usize = 3;
    for objects in [20, 30, 40, 50] {
        let synth = SyntheticConfig {
            num_objects: objects,
            ..SyntheticConfig::paper_default(4000 + objects as u64)
        }
        .generate();
        let answers = synth.dataset.answers().clone();
        let expert = ExpertValidation::empty(objects);
        let aggregator = IncrementalEm::default();
        let current = aggregator.conclude(&answers, &expert, None);
        let detector = SpammerDetector::default();
        let candidates = expert.unvalidated_objects();

        let measure = |parallel: bool| {
            let mut strategy = UncertaintyDriven::exhaustive();
            let mut total = 0.0;
            for _ in 0..REPS {
                let ctx = StrategyContext {
                    answers: &answers,
                    expert: &expert,
                    current: &current,
                    aggregator: &aggregator,
                    detector: &detector,
                    candidates: &candidates,
                    parallel,
                    entropy_cache: None,
                    guidance_cache: None,
                };
                let start = Instant::now();
                let _ = strategy.select(&ctx);
                total += start.elapsed().as_secs_f64();
            }
            total / REPS as f64
        };
        let serial = measure(false);
        let parallel = measure(true);
        report.add_row(vec![
            objects.to_string(),
            format!("{serial:.4}"),
            format!("{parallel:.4}"),
            format!("{:.2}x", serial / parallel.max(1e-12)),
        ]);
    }
    report.add_note("expected shape: response time grows with the number of objects, parallel < serial, well below interactive latency budgets");
    report
}

/// Table 5: start-up time of the sparse-matrix partitioning for a large
/// answer matrix (16 000 questions, 1 000 workers) at different sparsity
/// levels (maximum number of questions per worker).
pub fn tab05_partitioning_startup() -> Report {
    let mut report = Report::new(
        "tab05",
        "Table 5: computation time for matrix ordering (seconds)",
        &["questions per worker", "answers", "time (s)"],
    );
    for cap in [10usize, 20, 40, 60] {
        let answers_per_object = ((1000 * cap) / 16_000).max(1);
        let synth = SyntheticConfig {
            name: format!("partition-{cap}"),
            num_objects: 16_000,
            num_workers: 1000,
            answers_per_object: Some(answers_per_object),
            max_answers_per_worker: Some(cap),
            ..SyntheticConfig::paper_default(5000 + cap as u64)
        }
        .generate();
        let answers = synth.dataset.answers();
        let start = Instant::now();
        let partition = partition_answer_matrix(answers, 50);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(partition.num_objects(), 16_000);
        report.add_row(vec![
            cap.to_string(),
            answers.matrix().num_answers().to_string(),
            format!("{elapsed:.3}"),
        ]);
    }
    report.add_note("expected shape: start-up time grows with the number of answers per worker and stays in the range of a few seconds");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig04_reports_four_sizes() {
        let r = fig04_response_time();
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.rows[0][0], "20");
    }
}
