//! Tabular experiment reports: pretty printing and JSON persistence.

use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// A labelled table of results regenerating one of the paper's tables or
/// figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Experiment id (`fig10`, `tab05`, …).
    pub id: String,
    /// Human-readable title, typically referencing the paper's figure/table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes: substitutions, parameters, expected shape.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (values are formatted by the caller).
    pub fn add_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Appends a note shown below the table.
    pub fn add_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Formats the report as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let width = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!(" {cell:>width$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().map(|w| w + 3).sum::<usize>()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Writes the report as JSON into `dir/<id>.json` and as text into
    /// `dir/<id>.txt`, creating the directory if needed.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let json_path = dir.join(format!("{}.json", self.id));
        let json = serde_json::to_string_pretty(self).expect("reports are always serializable");
        fs::write(&json_path, json)?;
        fs::write(dir.join(format!("{}.txt", self.id)), self.to_text())?;
        Ok(json_path)
    }
}

/// Formats a float with three decimals (the precision used throughout the
/// reports).
pub fn f3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(value: f64) -> String {
    format!("{:.1}", 100.0 * value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_text_and_json() {
        let mut r = Report::new("figX", "demo", &["effort", "precision"]);
        r.add_row(vec!["10".into(), f3(0.91234)]);
        r.add_row(vec!["20".into(), f3(0.95)]);
        r.add_note("synthetic data");
        let text = r.to_text();
        assert!(text.contains("figX"));
        assert!(text.contains("0.912"));
        assert!(text.contains("note: synthetic data"));

        let dir = std::env::temp_dir().join(format!("crowdval-report-{}", std::process::id()));
        let path = r.save(&dir).unwrap();
        let loaded: Report = serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(loaded, r);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.0 / 3.0), "0.333");
        assert_eq!(pct(0.25), "25.0");
    }
}
