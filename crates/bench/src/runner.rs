//! Shared machinery for the experiments: strategy construction, guided
//! validation runs, precision-vs-effort tables and cost curves.

use crowdval_aggregation::{Aggregator, BatchEm, IncrementalEm};
use crowdval_core::{
    ConfirmationCheck, EntropyBaseline, ExpertSource, HybridStrategy, ProcessConfig,
    RandomSelection, SelectionStrategy, UncertaintyDriven, ValidationGoal, ValidationProcess,
    ValidationTrace, WorkerDriven,
};
use crowdval_model::{Dataset, ExpertValidation, GroundTruth, LabelId, ObjectId};
use crowdval_sim::augment::{augment_with_answers, thin_to_answers_per_object};
use crowdval_sim::{SimulatedExpert, SyntheticDataset};

use crate::report::Report;

/// Which guidance strategy an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuidanceKind {
    /// The paper's combined strategy (Algorithm 1).
    Hybrid,
    /// The highest-entropy baseline used throughout §6.6 / Appendix C.
    Baseline,
    /// Uniform random selection.
    Random,
    /// Pure information-gain selection (§5.2).
    UncertaintyDriven,
    /// Pure expected-detection selection (§5.3).
    WorkerDriven,
}

impl GuidanceKind {
    /// Display name used in report columns.
    pub fn label(self) -> &'static str {
        match self {
            GuidanceKind::Hybrid => "hybrid",
            GuidanceKind::Baseline => "baseline",
            GuidanceKind::Random => "random",
            GuidanceKind::UncertaintyDriven => "uncertainty",
            GuidanceKind::WorkerDriven => "worker",
        }
    }

    /// Builds the strategy object.
    pub fn build(self, seed: u64) -> Box<dyn SelectionStrategy> {
        match self {
            GuidanceKind::Hybrid => Box::new(HybridStrategy::new(seed)),
            GuidanceKind::Baseline => Box::new(EntropyBaseline),
            GuidanceKind::Random => Box::new(RandomSelection::new(seed)),
            GuidanceKind::UncertaintyDriven => Box::new(UncertaintyDriven::new()),
            GuidanceKind::WorkerDriven => Box::new(WorkerDriven),
        }
    }
}

/// Settings of one guided validation run.
#[derive(Debug, Clone, Copy)]
pub struct RunSettings {
    /// Maximum number of validations (`None` = up to every object).
    pub budget: Option<usize>,
    /// Stopping goal.
    pub goal: ValidationGoal,
    /// Parallel candidate scoring.
    pub parallel: bool,
    /// Probability that the simulated expert answers incorrectly.
    pub mistake_probability: f64,
    /// Confirmation-check interval in validations (`None` disables it).
    pub confirmation_interval: Option<usize>,
    /// Seed for the strategy and the simulated expert.
    pub seed: u64,
}

impl Default for RunSettings {
    fn default() -> Self {
        Self {
            budget: None,
            goal: ValidationGoal::TargetPrecision(1.0),
            parallel: true,
            mistake_probability: 0.0,
            confirmation_interval: None,
            seed: 1,
        }
    }
}

/// Expert source wrapping [`SimulatedExpert`] that remembers on which objects
/// it erred and answers correctly when asked to reconsider.
pub struct RecordingExpert {
    expert: SimulatedExpert,
    /// Objects that received an erroneous validation at least once.
    pub erred_on: Vec<ObjectId>,
}

impl RecordingExpert {
    /// Builds the expert for a dataset.
    pub fn new(truth: GroundTruth, num_labels: usize, mistake_probability: f64, seed: u64) -> Self {
        Self {
            expert: SimulatedExpert::with_mistakes(truth, num_labels, mistake_probability, seed),
            erred_on: Vec::new(),
        }
    }
}

impl ExpertSource for RecordingExpert {
    fn provide_label(&mut self, object: ObjectId) -> LabelId {
        let label = self.expert.validate(object);
        if label != self.expert.correct_label(object) && !self.erred_on.contains(&object) {
            self.erred_on.push(object);
        }
        label
    }

    fn reconsider(&mut self, object: ObjectId) -> LabelId {
        self.expert.correct_label(object)
    }
}

/// Runs one guided validation pass over a dataset and returns the trace plus
/// the objects on which the (simulated) expert erred.
pub fn run_guided(
    dataset: &Dataset,
    kind: GuidanceKind,
    settings: RunSettings,
) -> (ValidationTrace, Vec<ObjectId>) {
    let truth = dataset.ground_truth().clone();
    let mut process = ValidationProcess::builder(dataset.answers().clone())
        .strategy(kind.build(settings.seed))
        .config(ProcessConfig {
            budget: settings.budget,
            goal: settings.goal,
            parallel: settings.parallel,
            confirmation_check: settings.confirmation_interval.map(ConfirmationCheck::every),
            ..ProcessConfig::default()
        })
        .ground_truth(truth.clone())
        .build();
    let mut expert = RecordingExpert::new(
        truth,
        dataset.answers().num_labels(),
        settings.mistake_probability,
        settings.seed ^ 0x9e37_79b9,
    );
    process
        .run(&mut expert)
        .expect("simulated labels are in range");
    (process.trace().clone(), expert.erred_on)
}

/// Adds one precision-vs-effort row per effort level for each named trace.
pub fn precision_table(
    report: &mut Report,
    efforts_pct: &[usize],
    traces: &[(&str, &ValidationTrace)],
) {
    for &effort in efforts_pct {
        let mut row = vec![format!("{effort}")];
        for (_, trace) in traces {
            let p = trace.precision_at_effort(effort as f64 / 100.0);
            row.push(p.map_or("-".into(), crate::report::f3));
        }
        report.add_row(row);
    }
}

/// One point of a cost-quality curve.
#[derive(Debug, Clone, Copy)]
pub struct CurvePoint {
    pub cost_per_object: f64,
    pub precision: f64,
    pub improvement: f64,
}

/// EV curve: starting from `phi0` answers per object, validate with the given
/// strategy and report precision (improvement) at a set of validation counts.
/// The cost axis is `phi0 + theta · i / n`.
pub fn ev_curve(
    source: &SyntheticDataset,
    phi0: usize,
    theta: f64,
    validation_counts: &[usize],
    kind: GuidanceKind,
    seed: u64,
) -> Vec<CurvePoint> {
    let dataset = thin_to_answers_per_object(source, phi0, seed);
    let n = dataset.answers().num_objects();
    let (trace, _) = run_guided(
        &dataset,
        kind,
        RunSettings {
            budget: Some(*validation_counts.iter().max().unwrap_or(&0)),
            goal: ValidationGoal::ExhaustBudget,
            seed,
            ..RunSettings::default()
        },
    );
    let p0 = trace.initial_precision.unwrap_or(0.0);
    validation_counts
        .iter()
        .map(|&i| {
            let effort = i as f64 / n as f64;
            let precision = trace.precision_at_effort(effort).unwrap_or(p0);
            CurvePoint {
                cost_per_object: phi0 as f64 + theta * i as f64 / n as f64,
                precision,
                improvement: GroundTruth::precision_improvement(p0, precision),
            }
        })
        .collect()
}

/// WO curve: keep adding crowd answers (up to `phi` per object) and aggregate
/// with batch EM. Improvement is measured against the same `phi0` starting
/// point as the EV curve.
pub fn wo_curve(
    source: &SyntheticDataset,
    phi0: usize,
    phis: &[usize],
    seed: u64,
) -> Vec<CurvePoint> {
    let truth = source.dataset.ground_truth();
    let aggregate_precision = |dataset: &Dataset| {
        let p = BatchEm::default().conclude(
            dataset.answers(),
            &ExpertValidation::empty(dataset.answers().num_objects()),
            None,
        );
        truth.precision(&p.instantiate())
    };
    let base = thin_to_answers_per_object(source, phi0, seed);
    let p0 = aggregate_precision(&base);
    phis.iter()
        .map(|&phi| {
            let dataset = if phi <= phi0 {
                thin_to_answers_per_object(source, phi, seed)
            } else {
                augment_with_answers(source, phi, seed.wrapping_add(phi as u64))
            };
            let precision = aggregate_precision(&dataset);
            CurvePoint {
                cost_per_object: phi as f64,
                precision,
                improvement: GroundTruth::precision_improvement(p0, precision),
            }
        })
        .collect()
}

/// Batch (non-incremental) aggregation precision of a dataset without any
/// expert input — the "0 % effort" reference of several experiments.
pub fn initial_precision(dataset: &Dataset) -> f64 {
    let p = IncrementalEm::default().conclude(
        dataset.answers(),
        &ExpertValidation::empty(dataset.answers().num_objects()),
        None,
    );
    dataset.ground_truth().precision(&p.instantiate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_sim::SyntheticConfig;

    fn small() -> SyntheticDataset {
        SyntheticConfig {
            num_objects: 20,
            ..SyntheticConfig::paper_default(71)
        }
        .generate()
    }

    #[test]
    fn run_guided_produces_a_complete_trace() {
        let data = small();
        let (trace, erred) = run_guided(
            &data.dataset,
            GuidanceKind::Baseline,
            RunSettings {
                budget: Some(5),
                goal: ValidationGoal::ExhaustBudget,
                ..RunSettings::default()
            },
        );
        assert_eq!(trace.len(), 5);
        assert!(erred.is_empty());
        assert!(trace.initial_precision.is_some());
    }

    #[test]
    fn erroneous_experts_are_recorded() {
        let data = small();
        let (_, erred) = run_guided(
            &data.dataset,
            GuidanceKind::Random,
            RunSettings {
                budget: Some(20),
                goal: ValidationGoal::ExhaustBudget,
                mistake_probability: 0.5,
                ..RunSettings::default()
            },
        );
        assert!(
            !erred.is_empty(),
            "a 50 % error rate over 20 validations should err at least once"
        );
    }

    #[test]
    fn ev_and_wo_curves_have_monotone_costs() {
        let data = small();
        let ev = ev_curve(&data, 5, 12.5, &[0, 5, 10], GuidanceKind::Baseline, 3);
        assert_eq!(ev.len(), 3);
        assert!(ev
            .windows(2)
            .all(|w| w[0].cost_per_object < w[1].cost_per_object));
        let wo = wo_curve(&data, 5, &[5, 10, 20], 3);
        assert_eq!(wo.len(), 3);
        assert!(wo
            .windows(2)
            .all(|w| w[0].cost_per_object < w[1].cost_per_object));
        // At phi = phi0 the WO improvement is zero by construction.
        assert!(wo[0].improvement.abs() < 1e-9);
    }

    #[test]
    fn guidance_kinds_build_their_strategies() {
        for kind in [
            GuidanceKind::Hybrid,
            GuidanceKind::Baseline,
            GuidanceKind::Random,
            GuidanceKind::UncertaintyDriven,
            GuidanceKind::WorkerDriven,
        ] {
            let s = kind.build(1);
            assert!(!kind.label().is_empty());
            assert!(!s.name().is_empty());
        }
    }
}
