//! Experiment runner: regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments all              # run every experiment
//! experiments fig10 tab06      # run selected experiments
//! experiments --list           # list available experiment ids
//! ```
//!
//! Reports are printed to stdout and written as JSON/text under
//! `target/experiments/`.

use crowdval_bench::{run_experiment, ALL_EXPERIMENTS};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: experiments [all | --list | <id>...]  (ids: {})",
            ALL_EXPERIMENTS.join(", ")
        );
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let out_dir = PathBuf::from("target/experiments");
    let mut failures = 0;
    for id in ids {
        let start = Instant::now();
        match run_experiment(id) {
            Some(report) => {
                println!("{}", report.to_text());
                println!(
                    "[{} finished in {:.1}s]\n",
                    id,
                    start.elapsed().as_secs_f64()
                );
                if let Err(err) = report.save(&out_dir) {
                    eprintln!("warning: could not save report {id}: {err}");
                }
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
