//! Guidance hot-path benchmark: measures the warm hypothesis fan-out of a
//! validation step in all three evaluation paths and records the result as
//! `BENCH_guidance.json`, so the delta-propagation speedup is a tracked
//! number rather than a claim.
//!
//! Paths compared (single-threaded on purpose — the win must be algorithmic,
//! not core-count):
//!
//! * `legacy`  — `ExpertValidation::clone()` + [`Aggregator::conclude_warm`]
//!   per hypothesis: the pre-workspace semantics (full-corpus EM, fresh
//!   allocations every iteration).
//! * `exact`   — [`Aggregator::conclude_hypothesis`] in
//!   [`ScoringMode::Exact`]: borrowed overlay + workspace buffers + cached
//!   log tables, still full-corpus EM.
//! * `delta`   — [`ScoringMode::Delta`]: neighborhood-scoped propagation
//!   with the full-map polish.
//!
//! Usage: `bench_guidance [--quick] [--check] [--out <path>]`
//!
//! `--quick` shrinks the scenario for CI smoke runs; `--check` exits
//! non-zero if the delta path is slower than the exact path — judged by the
//! deterministic EM-iteration totals plus a noise-tolerant wall-clock
//! comparison (the CI `bench-smoke` gate).

use crowdval_aggregation::{Aggregator, IncrementalEm, ScoringMode};
use crowdval_model::{
    AnswerSet, ExpertValidation, HypothesisOverlay, LabelId, ObjectId, ProbabilisticAnswerSet,
};
use crowdval_sim::SyntheticConfig;
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// System allocator wrapper counting every allocation/reallocation, so the
/// report can state how many the workspace path avoids.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[derive(Debug, Serialize)]
struct PathReport {
    /// Hypotheses evaluated per second of wall time.
    candidates_per_sec: f64,
    /// Total wall time for all repetitions, in seconds.
    wall_seconds: f64,
    /// Total EM iterations spent (scoped delta rounds count as iterations).
    em_iterations: usize,
    /// Heap allocations performed during the measured runs.
    allocations: usize,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    scenario: String,
    num_objects: usize,
    num_workers: usize,
    num_labels: usize,
    validated: usize,
    hypotheses_per_rep: usize,
    reps: usize,
    legacy: PathReport,
    exact: PathReport,
    delta: PathReport,
    /// Headline number: delta vs exact throughput (both on the workspace).
    speedup_delta_vs_exact: f64,
    /// Delta vs the pre-workspace clone-per-hypothesis path.
    speedup_delta_vs_legacy: f64,
    /// Allocations the workspace path avoids relative to the legacy path.
    allocations_saved_vs_legacy: usize,
}

struct Fixture {
    answers: AnswerSet,
    expert: ExpertValidation,
    current: ProbabilisticAnswerSet,
    aggregator: IncrementalEm,
    hypotheses: Vec<(ObjectId, LabelId)>,
}

fn fixture(num_candidates: usize, seed: u64) -> Fixture {
    let validated = 10usize;
    let synth = SyntheticConfig {
        num_objects: num_candidates + validated,
        ..SyntheticConfig::paper_default(seed)
    }
    .generate();
    let answers = synth.dataset.answers().clone();
    let truth = synth.dataset.ground_truth().clone();
    let aggregator = IncrementalEm::default();
    let mut expert = ExpertValidation::empty(answers.num_objects());
    for o in 0..validated {
        expert.set(ObjectId(o), truth.label(ObjectId(o)));
    }
    let current = aggregator.conclude(&answers, &expert, None);
    // The fan-out of one §5.2 selection step: every plausible
    // (candidate, label) pair, exactly as the scoring engine enumerates them.
    let mut hypotheses = Vec::new();
    for object in expert.unvalidated_objects() {
        for l in 0..answers.num_labels() {
            let label = LabelId(l);
            if current.assignment().prob(object, label) > 1e-6 {
                hypotheses.push((object, label));
            }
        }
    }
    Fixture {
        answers,
        expert,
        current,
        aggregator,
        hypotheses,
    }
}

fn measure(
    f: &Fixture,
    reps: usize,
    mut eval: impl FnMut(&Fixture, ObjectId, LabelId) -> usize,
) -> PathReport {
    // One untimed warm-up pass so thread-local workspaces are sized before
    // the allocation counter starts.
    let (o, l) = f.hypotheses[0];
    eval(f, o, l);

    let alloc_before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut em_iterations = 0usize;
    let start = Instant::now();
    for _ in 0..reps {
        for &(object, label) in &f.hypotheses {
            em_iterations += eval(f, object, label);
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - alloc_before;
    PathReport {
        candidates_per_sec: (reps * f.hypotheses.len()) as f64 / wall.max(1e-12),
        wall_seconds: wall,
        em_iterations,
        allocations,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_guidance.json".to_string());

    let (num_candidates, reps) = if quick { (24, 2) } else { (64, 5) };
    let f = fixture(num_candidates, 70_000);

    let legacy = measure(&f, reps, |f, object, label| {
        let mut hypothetical = f.expert.clone();
        hypothetical.set(object, label);
        f.aggregator
            .conclude_warm(&f.answers, &hypothetical, &f.current)
            .em_iterations()
    });
    let exact = measure(&f, reps, |f, object, label| {
        let hypothesis = HypothesisOverlay::new(&f.expert, object, label);
        f.aggregator
            .conclude_hypothesis(&f.answers, &hypothesis, &f.current, ScoringMode::Exact)
            .em_iterations()
    });
    let delta = measure(&f, reps, |f, object, label| {
        let hypothesis = HypothesisOverlay::new(&f.expert, object, label);
        f.aggregator
            .conclude_hypothesis(&f.answers, &hypothesis, &f.current, ScoringMode::Delta)
            .em_iterations()
    });

    let report = BenchReport {
        scenario: format!(
            "paper-default mix, seed 70000, single-threaded{}",
            if quick { " (quick)" } else { "" }
        ),
        num_objects: f.answers.num_objects(),
        num_workers: f.answers.num_workers(),
        num_labels: f.answers.num_labels(),
        validated: f.expert.count(),
        hypotheses_per_rep: f.hypotheses.len(),
        reps,
        speedup_delta_vs_exact: delta.candidates_per_sec / exact.candidates_per_sec.max(1e-12),
        speedup_delta_vs_legacy: delta.candidates_per_sec / legacy.candidates_per_sec.max(1e-12),
        allocations_saved_vs_legacy: legacy.allocations.saturating_sub(delta.allocations),
        legacy,
        exact,
        delta,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write BENCH_guidance.json");
    println!("{json}");
    println!(
        "\nlegacy {:.1}/s | exact {:.1}/s | delta {:.1}/s  (delta vs exact {:.2}x, vs legacy {:.2}x) -> {}",
        report.legacy.candidates_per_sec,
        report.exact.candidates_per_sec,
        report.delta.candidates_per_sec,
        report.speedup_delta_vs_exact,
        report.speedup_delta_vs_legacy,
        out_path
    );

    if check {
        // Two-part gate: the EM-iteration comparison is deterministic (no
        // wall-clock noise on a shared CI runner), the throughput comparison
        // keeps a 20 % noise margin so only a real regression trips it.
        let mut failed = false;
        if report.delta.em_iterations > report.exact.em_iterations {
            eprintln!(
                "FAIL: delta path spends more EM iterations than exact ({} > {})",
                report.delta.em_iterations, report.exact.em_iterations
            );
            failed = true;
        }
        if report.speedup_delta_vs_exact < 0.8 {
            eprintln!(
                "FAIL: delta path is slower than exact beyond the noise margin ({:.2}x < 0.8x)",
                report.speedup_delta_vs_exact
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
