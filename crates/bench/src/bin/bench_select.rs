//! Selection-loop benchmark: measures how fast the guidance loop —
//! `select_next` + `integrate`, the paper's Algorithm 1 driven to a full
//! expert budget — runs with the cross-step guidance cache against the eager
//! re-score-everything baseline, and records the result as
//! `BENCH_select.json` so the across-step view-maintenance win is a tracked
//! number rather than a claim.
//!
//! Paths compared (single-threaded on purpose — the win must be algorithmic,
//! not core-count):
//!
//! * `cached` — `ProcessConfig::guidance_cache = true`: per-candidate
//!   information-gain scores are retained across selection steps, invalidated
//!   by the converged dirty frontier of each re-aggregation, and selection
//!   is lazy bound-based (CELF-style): candidates are re-evaluated in
//!   descending stale-bound order until the best fresh score strictly
//!   dominates the next bound.
//! * `eager` — the pre-cache shape of the pipeline: every selection step
//!   re-scores the entire entropy shortlist with hypothesis EM runs.
//!
//! Both sessions are driven through the identical schedule (same arrival
//! batches, same truth labels) and the benchmark **asserts** that they pick
//! the identical object at every step — the cached path's lazy bounds must
//! not change the selection order, only skip provably dominated evaluations.
//!
//! Usage: `bench_select [--quick] [--check] [--out <path>]`
//!
//! `--quick` shrinks the scenario for CI smoke runs; `--check` exits
//! non-zero if the cached loop is slower than the eager one beyond the noise
//! margin, or if the cache stops serving a meaningful share of candidate
//! evaluations at steady state (the CI `select-smoke` gate).

use crowdval_core::{
    GuidanceTelemetry, ProcessConfig, ScoringEngine, UncertaintyDriven, ValidationSession,
    ValidationSessionBuilder,
};
use crowdval_model::ObjectId;
use crowdval_sim::{StreamingConfig, StreamingScenario, SyntheticConfig};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct PathReport {
    /// Validation steps driven (same for both paths).
    selections: usize,
    /// Full loop steps (select + integrate) per second of wall time.
    selections_per_sec: f64,
    /// Select-only wall time across all steps, in seconds.
    select_wall_seconds: f64,
    /// Select + integrate wall time across all steps, in seconds.
    loop_wall_seconds: f64,
    /// Mean select latency over the steady-state window (second half), ms.
    select_ms_steady: f64,
    /// Mean full-step (select + integrate) latency over the steady-state
    /// window, ms.
    step_ms_steady: f64,
    /// Candidates evaluated exactly across all selection steps (0 reported
    /// for the eager path, which does not run the telemetry).
    candidates_evaluated: usize,
    /// Candidate evaluations served from the cache across all steps.
    served_from_cache: usize,
    /// Hypothesis EM iterations spent by selection across all steps.
    hypothesis_em_iterations: usize,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    scenario: String,
    total_votes: usize,
    batches: usize,
    final_objects: usize,
    final_workers: usize,
    validations: usize,
    shortlist: usize,
    cached: PathReport,
    eager: PathReport,
    /// Headline number: full validation steps (select + integrate) per
    /// second over the steady-state window — the regime the cross-step
    /// cache targets (the first half of the run is dominated by arrival
    /// batches whose re-aggregations genuinely invalidate most retained
    /// scores, on both paths alike).
    speedup_steady_state: f64,
    /// Full-loop throughput across the whole budget, cached vs eager.
    speedup_end_to_end: f64,
    /// Select-only speedup (the part the cache accelerates).
    speedup_select_only: f64,
    /// Cached-path hit rate across the whole run.
    cache_hit_rate: f64,
    /// Cached-path hit rate over the steady-state window (second half of
    /// the validation steps) — the acceptance number.
    cache_hit_rate_steady: f64,
    /// Selection order was bit-identical between the two paths (asserted;
    /// recorded so the JSON is self-describing).
    selection_order_identical: bool,
}

struct DriveResult {
    picks: Vec<ObjectId>,
    select_walls: Vec<f64>,
    /// Per-step select + integrate wall time.
    step_walls: Vec<f64>,
    loop_wall: f64,
    /// Per-step guidance telemetry (zeros on the eager path).
    steps: Vec<GuidanceTelemetry>,
    final_objects: usize,
    final_workers: usize,
}

/// Drives one session through the full schedule: initial snapshot, two
/// orientation anchors, then arrival batches interleaved with validations
/// until the budget is spent.
fn drive(
    scenario: &StreamingScenario,
    cached: bool,
    shortlist: usize,
    per_batch: usize,
    budget: usize,
) -> DriveResult {
    let truth = &scenario.truth;
    let mut session = ValidationSessionBuilder::empty(scenario.num_labels)
        .strategy(Box::new(UncertaintyDriven::with_engine(
            ScoringEngine::with_shortlist(shortlist),
        )))
        .config(ProcessConfig {
            guidance_cache: cached,
            ..ProcessConfig::default()
        })
        .build();
    session
        .ingest(&scenario.initial)
        .expect("initial snapshot ingests");

    // Two early validations anchor the label orientation (below two anchors
    // the hypothesis scorer falls back to the exact path).
    let mut anchors: Vec<ObjectId> = Vec::new();
    for vote in &scenario.initial {
        if !anchors.contains(&vote.object) {
            anchors.push(vote.object);
        }
        if anchors.len() == 2 {
            break;
        }
    }
    assert_eq!(anchors.len(), 2, "stream too small to anchor");
    for &o in &anchors {
        session
            .integrate(o, truth.label(o))
            .expect("truth labels are in range");
    }

    let mut picks = Vec::new();
    let mut select_walls = Vec::new();
    let mut step_walls = Vec::new();
    let mut steps = Vec::new();
    let loop_start = Instant::now();
    let validate = |session: &mut ValidationSession,
                    picks: &mut Vec<ObjectId>,
                    select_walls: &mut Vec<f64>,
                    step_walls: &mut Vec<f64>,
                    steps: &mut Vec<GuidanceTelemetry>| {
        if picks.len() >= budget {
            return;
        }
        let start = Instant::now();
        let Some(o) = session.select_next() else {
            return;
        };
        select_walls.push(start.elapsed().as_secs_f64());
        steps.push(session.last_guidance_telemetry());
        picks.push(o);
        session
            .integrate(o, truth.label(o))
            .expect("truth labels are in range");
        step_walls.push(start.elapsed().as_secs_f64());
    };
    for batch in &scenario.batches {
        session.ingest(batch).expect("stream batches ingest");
        for _ in 0..per_batch {
            validate(
                &mut session,
                &mut picks,
                &mut select_walls,
                &mut step_walls,
                &mut steps,
            );
        }
    }
    while picks.len() < budget {
        let before = picks.len();
        validate(
            &mut session,
            &mut picks,
            &mut select_walls,
            &mut step_walls,
            &mut steps,
        );
        if picks.len() == before {
            break; // every object validated
        }
    }
    let loop_wall = loop_start.elapsed().as_secs_f64();
    DriveResult {
        picks,
        select_walls,
        step_walls,
        loop_wall,
        steps,
        final_objects: session.answers().num_objects(),
        final_workers: session.answers().num_workers(),
    }
}

fn path_report(result: &DriveResult) -> PathReport {
    let select_wall: f64 = result.select_walls.iter().sum();
    let steady_from = result.select_walls.len() / 2;
    let steady: &[f64] = &result.select_walls[steady_from..];
    let totals = result
        .steps
        .iter()
        .fold(GuidanceTelemetry::default(), |mut acc, s| {
            acc.absorb(s);
            acc
        });
    PathReport {
        selections: result.picks.len(),
        selections_per_sec: result.picks.len() as f64 / result.loop_wall.max(1e-12),
        select_wall_seconds: select_wall,
        loop_wall_seconds: result.loop_wall,
        select_ms_steady: steady.iter().sum::<f64>() * 1e3 / steady.len().max(1) as f64,
        step_ms_steady: {
            let steady_steps: &[f64] = &result.step_walls[result.step_walls.len() / 2..];
            steady_steps.iter().sum::<f64>() * 1e3 / steady_steps.len().max(1) as f64
        },
        candidates_evaluated: totals.evaluated,
        served_from_cache: totals.served_from_cache,
        hypothesis_em_iterations: totals.em_iterations,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_select.json".to_string());

    // The paper-default streaming scenario of bench_ingest, so the numbers
    // are comparable across the three benchmarks.
    // Two validations per arrival batch (the expert validates continuously
    // while the stream arrives), then the remaining budget on the settled
    // corpus.
    let (num_objects, num_workers, batch_size, budget, per_batch) = if quick {
        (60, 20, 60, 45, 3)
    } else {
        (150, 32, 100, 135, 3)
    };
    // The engine-default pre-filter width (the paper-default configuration;
    // bench_ingest narrows it to 16 as a latency knob, but the selection
    // comparison should measure the default select step).
    let shortlist = crowdval_core::scoring::DEFAULT_SHORTLIST;
    let scenario = StreamingConfig {
        base: SyntheticConfig {
            num_objects,
            num_workers,
            ..SyntheticConfig::paper_default(92_000)
        },
        initial_fraction: 0.3,
        batch_size,
        late_object_fraction: 0.3,
        late_worker_fraction: 0.25,
    }
    .generate();

    let cached = drive(&scenario, true, shortlist, per_batch, budget);
    let eager = drive(&scenario, false, shortlist, per_batch, budget);

    assert_eq!(
        cached.picks, eager.picks,
        "cached selection order diverged from the eager path"
    );

    let cached_report = path_report(&cached);
    let eager_report = path_report(&eager);
    let steady_from = cached.steps.len() / 2;
    let steady_totals =
        cached.steps[steady_from..]
            .iter()
            .fold(GuidanceTelemetry::default(), |mut acc, s| {
                acc.absorb(s);
                acc
            });
    let overall_totals = cached
        .steps
        .iter()
        .fold(GuidanceTelemetry::default(), |mut acc, s| {
            acc.absorb(s);
            acc
        });
    let cached_steady_ms = cached_report.step_ms_steady;
    let eager_steady_ms = eager_report.step_ms_steady;
    let report = BenchReport {
        scenario: format!(
            "paper-default stream, seed 92000, single-threaded{}",
            if quick { " (quick)" } else { "" }
        ),
        total_votes: scenario.total_votes(),
        batches: scenario.batches.len(),
        final_objects: cached.final_objects,
        final_workers: cached.final_workers,
        validations: cached.picks.len(),
        shortlist,
        speedup_steady_state: eager_steady_ms / cached_steady_ms.max(1e-12),
        speedup_end_to_end: cached_report.selections_per_sec
            / eager_report.selections_per_sec.max(1e-12),
        speedup_select_only: eager_report.select_wall_seconds
            / cached_report.select_wall_seconds.max(1e-12),
        cache_hit_rate: overall_totals.hit_rate(),
        cache_hit_rate_steady: steady_totals.hit_rate(),
        selection_order_identical: true,
        cached: cached_report,
        eager: eager_report,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("report written");
    println!("{json}");
    println!(
        "\ncached {:.1}/s | eager {:.1}/s  (steady-state {:.2}x, overall {:.2}x, select-only {:.2}x) | steady hit rate {:.0}% -> {}",
        report.cached.selections_per_sec,
        report.eager.selections_per_sec,
        report.speedup_steady_state,
        report.speedup_end_to_end,
        report.speedup_select_only,
        report.cache_hit_rate_steady * 100.0,
        out_path
    );

    if check {
        // Three-part gate: the selection-order assert above is the
        // correctness half; the evaluated-candidates comparison is
        // deterministic (no wall-clock noise on a shared CI runner); the
        // throughput comparison keeps a noise margin so only a real
        // regression trips it.
        let mut failed = false;
        // Deterministic gate (no wall-clock noise): at steady state more
        // than half of all candidate evaluations must be served from the
        // cache. The quick smoke scenario is smaller and more volatile —
        // each validation shifts a larger share of its model, so retained
        // scores survive fewer steps — and gates at a meaningful share
        // instead.
        let min_steady_hits = if quick { 0.30 } else { 0.50 };
        if report.cache_hit_rate_steady <= min_steady_hits {
            eprintln!(
                "FAIL: steady-state cache hit rate {:.0}% is at or below the {:.0}% gate",
                report.cache_hit_rate_steady * 100.0,
                min_steady_hits * 100.0
            );
            failed = true;
        }
        if report.speedup_steady_state < 0.9 {
            eprintln!(
                "FAIL: cached selection loop is slower than eager at steady state beyond \
                 the noise margin ({:.2}x < 0.9x)",
                report.speedup_steady_state
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
