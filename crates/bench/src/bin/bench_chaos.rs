//! Chaos harness for the self-healing shard runtime: drives the paper
//! crowd — [`crowdval_sim::ChaosConfig`]'s multi-tenant scripts over the
//! paper-default synthetic population — through a supervised
//! [`ShardRuntime`] while a seeded [`FaultPlan`] kills **every shard at
//! least once** mid-stream, then proves the recovered state is
//! bit-identical to a serial replay of exactly the acknowledged requests,
//! and records the cost of the crashes as `BENCH_chaos.json` (restarts,
//! recovery latency, requests lost and shed, accuracy delta against an
//! unfailed run of the full script).
//!
//! Usage: `bench_chaos [--quick] [--check] [--out <path>]`
//!
//! `--quick` trims the crowd for CI smoke runs; `--check` exits non-zero
//! unless the recovered state equals the serial replay *and* every shard
//! was restarted at least once (the CI `chaos-smoke` gate — a chaos run
//! in which no shard died proves nothing).

use crowdval_service::{
    ClientVote, Dispatch, FaultKind, FaultPlan, OverloadPolicy, Reply, ReplyOutcome, Request,
    RequestEnvelope, Response, RuntimeConfig, ServiceError, ShardRuntime, StrategyChoice,
    SupervisionConfig, TaskConfig, UnavailableReason, ValidationService,
};
use crowdval_sim::{ChaosConfig, ChaosStep, ChaosTenant};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

const SHARDS: usize = 2;
const SEED: u64 = 0xC0FF_EE00;

/// One tenant's script as wire requests: create (WAL + triage on, so
/// recovery exercises the delta log and triage scorer), then the chaos
/// steps in arrival order.
fn tenant_requests(tenant: &ChaosTenant, index: usize) -> Vec<Request> {
    let mut requests = vec![Request::CreateTask {
        task: tenant.task.clone(),
        labels: tenant.labels.clone(),
        config: TaskConfig {
            strategy: match index % 3 {
                0 => StrategyChoice::Hybrid,
                1 => StrategyChoice::UncertaintyDriven,
                _ => StrategyChoice::EntropyBaseline,
            },
            seed: index as u64,
            shortlist: Some(6),
            wal: true,
            triage: true,
            ..TaskConfig::default()
        },
    }];
    for step in &tenant.steps {
        requests.push(match step {
            ChaosStep::Votes(batch) => Request::SubmitVotes {
                task: tenant.task.clone(),
                votes: batch
                    .iter()
                    .map(|v| ClientVote {
                        worker: v.worker.clone(),
                        object: v.object.clone(),
                        label: v.label.clone(),
                    })
                    .collect(),
            },
            ChaosStep::Guidance => Request::RequestGuidance {
                task: tenant.task.clone(),
            },
            ChaosStep::Validate { object, label } => Request::SubmitValidation {
                task: tenant.task.clone(),
                object: object.clone(),
                label: label.clone(),
            },
            ChaosStep::Probe { object } => Request::QueryPosterior {
                task: tenant.task.clone(),
                object: object.clone(),
            },
        });
    }
    requests
}

/// The verification probes of one tenant: every object's posterior, the
/// worker-trust ledger and the triage stats — the full observable state
/// the equality gate compares.
fn probe_requests(tenant: &ChaosTenant) -> Vec<Request> {
    let mut list: Vec<Request> = tenant
        .truth
        .iter()
        .map(|(object, _)| Request::QueryPosterior {
            task: tenant.task.clone(),
            object: object.clone(),
        })
        .collect();
    list.push(Request::QueryWorkerTrust {
        task: tenant.task.clone(),
    });
    list.push(Request::TriageStats {
        task: tenant.task.clone(),
    });
    list
}

/// Decision accuracy of a set of posterior replies against ground truth.
fn accuracy(replies: &[(String, Reply)], truth: &HashMap<(String, String), String>) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (task, reply) in replies {
        if let ReplyOutcome::Ok(Response::Posterior { object, label, .. }) = &reply.outcome {
            if let Some(expected) = truth.get(&(task.clone(), object.clone())) {
                total += 1;
                if expected == label {
                    correct += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[derive(Debug, Serialize)]
struct ShardReport {
    shard: usize,
    restarts: u64,
    panics_isolated: u64,
    recovery_us: u64,
}

#[derive(Debug, Serialize)]
struct ChaosReport {
    quick: bool,
    seed: u64,
    shards: usize,
    tenants: usize,
    total_requests: usize,
    acknowledged: usize,
    requests_lost: usize,
    requests_shed: usize,
    faults_injected: usize,
    restarts_total: u64,
    min_restarts_per_shard: u64,
    recovery_us_total: u64,
    mean_recovery_us_per_restart: f64,
    per_shard: Vec<ShardReport>,
    state_identical: bool,
    accuracy_chaos: f64,
    accuracy_unfailed: f64,
    accuracy_delta: f64,
    ingest_wall_s: f64,
    drain_wall_s: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());

    let config = if quick {
        ChaosConfig::quick(SEED)
    } else {
        ChaosConfig::paper_default(SEED)
    };
    let workload = config.generate();
    let scripts: Vec<(String, Vec<Request>)> = workload
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| (t.task.clone(), tenant_requests(t, i)))
        .collect();
    let truth: HashMap<(String, String), String> = workload
        .tenants
        .iter()
        .flat_map(|t| {
            t.truth
                .iter()
                .map(|(o, l)| ((t.task.clone(), o.clone()), l.clone()))
        })
        .collect();

    // A crash plan that hits every shard while its mutation stream is
    // still flowing: each shard dies once early (Panic or Kill, seeded),
    // stalls once, then dies a second time — all within the first dozen
    // worker arrivals, which every shard is guaranteed to see (checked
    // below) because each tenant script alone is longer than that.
    let mut plan = FaultPlan::seeded_crashes(SEED, SHARDS, 2, 6);
    for shard in 0..SHARDS {
        plan.push(shard, 8, FaultKind::Stall { ms: 1 });
        plan.push(shard, 10 + shard as u64, FaultKind::Panic);
    }
    let faults_injected = plan.faults.len();
    // Every shard must own at least one tenant: the settling loop below
    // advances each shard's fault-arrival counter with per-tenant traffic,
    // so a tenant-less shard would hold its pending faults forever.
    for shard in 0..SHARDS {
        assert!(
            scripts
                .iter()
                .any(|(task, _)| crowdval_service::runtime::shard_for_task(task, SHARDS) == shard),
            "shard {shard} owns no tenant; pick different tenant names"
        );
    }

    // A small mailbox on purpose: back-pressure keeps the dispatcher in
    // step with the workers, so crashes interleave with live traffic
    // instead of flushing one giant pre-queued backlog.
    let (runtime, replies) = ShardRuntime::start(RuntimeConfig {
        num_shards: SHARDS,
        mailbox_capacity: 8,
        overload: OverloadPolicy::Block,
        supervision: SupervisionConfig {
            checkpoint_every: 4, // small: recovery exercises anchor + delta log
            ..SupervisionConfig::chaos()
        },
    });
    assert_eq!(
        runtime.submit(RequestEnvelope::new(1, Request::FaultInject { plan })),
        Dispatch::Answered
    );

    // Interleave the tenant streams round-robin and record every envelope,
    // so the acknowledged subset can be replayed serially afterwards.
    let mut submitted: HashMap<u64, (usize, Request)> = HashMap::new();
    let mut shed_dispatch = 0usize;
    let mut next_id = 2u64;
    let mut cursors = vec![0usize; scripts.len()];
    let ingest_clock = Instant::now();
    loop {
        let mut progressed = false;
        for (tenant, (_, script)) in scripts.iter().enumerate() {
            if cursors[tenant] < script.len() {
                let request = script[cursors[tenant]].clone();
                submitted.insert(next_id, (tenant, request.clone()));
                if let Dispatch::Shed { .. } =
                    runtime.submit(RequestEnvelope::new(next_id, request))
                {
                    shed_dispatch += 1;
                }
                next_id += 1;
                cursors[tenant] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let ingest_wall_s = ingest_clock.elapsed().as_secs_f64();

    // Drain, settle, heal. Two effects interleave here: (a) workers run
    // behind the dispatcher, so replies lag the submissions; (b) a crash
    // flushes its queued mailbox as `RequestLost` — flushed requests never
    // reach a worker and therefore never advance the fault-arrival
    // counters, so with a short script the later faults can still be
    // pending after every scripted request is answered. Alternate between
    // `Health` heartbeats (restart dead shards, flush their reply-less
    // requests) and sacrificial read-only probes (push every shard's
    // arrival counter forward) until every submitted id has exactly one
    // reply *and* the fault registry reports zero pending faults.
    let drain_clock = Instant::now();
    let mut seen: HashMap<u64, Reply> = HashMap::new();
    let collect = |seen: &mut HashMap<u64, Reply>, replies: &Receiver<Reply>| {
        while let Ok(reply) = replies.recv_timeout(Duration::from_millis(20)) {
            assert!(
                seen.insert(reply.request_id, reply).is_none(),
                "duplicate reply for a correlation id"
            );
        }
    };
    let drain_deadline = Instant::now() + Duration::from_secs(120);
    loop {
        collect(&mut seen, &replies);
        assert!(
            Instant::now() < drain_deadline,
            "replies never drained: {} of {}",
            seen.len(),
            next_id - 1
        );
        if !(1..next_id).all(|id| seen.contains_key(&id)) {
            runtime.submit(RequestEnvelope::new(next_id, Request::Health));
            next_id += 1;
            continue;
        }
        // Everything answered — are all injected faults spent? (An empty
        // plan arms nothing; the reply carries the pending count.)
        let poll_id = next_id;
        runtime.submit(RequestEnvelope::new(
            poll_id,
            Request::FaultInject {
                plan: FaultPlan::new(),
            },
        ));
        next_id += 1;
        while !seen.contains_key(&poll_id) {
            collect(&mut seen, &replies);
            assert!(
                Instant::now() < drain_deadline,
                "fault poll reply never arrived"
            );
        }
        let pending = match &seen[&poll_id].outcome {
            ReplyOutcome::Ok(Response::FaultInjected { pending, .. }) => *pending,
            other => panic!("fault poll failed: {other:?}"),
        };
        if pending == 0 {
            break;
        }
        for tenant in &workload.tenants {
            runtime.submit(RequestEnvelope::new(
                next_id,
                Request::QueryPosterior {
                    task: tenant.task.clone(),
                    object: tenant.truth[0].0.clone(),
                },
            ));
            next_id += 1;
        }
    }
    let drain_wall_s = drain_clock.elapsed().as_secs_f64();

    // All faults are spent, so the probes observe final recovered state.
    // Probes are read-only and idempotent, and `TriageStats` is sheddable:
    // under the small chaos mailbox a probe burst can cross the shed
    // watermark, so shed probes are resubmitted after the advertised
    // `retry_after_ms` — exactly the client retry contract the protocol
    // documents.
    let mut probe_ids: HashMap<u64, (usize, Request)> = HashMap::new();
    let mut outstanding: Vec<(usize, Request)> = workload
        .tenants
        .iter()
        .enumerate()
        .flat_map(|(tenant_index, tenant)| {
            probe_requests(tenant)
                .into_iter()
                .map(move |request| (tenant_index, request))
        })
        .collect();
    while !outstanding.is_empty() {
        let mut batch: Vec<u64> = Vec::new();
        for (tenant_index, request) in outstanding.drain(..) {
            probe_ids.insert(next_id, (tenant_index, request.clone()));
            runtime.submit(RequestEnvelope::new(next_id, request));
            batch.push(next_id);
            next_id += 1;
        }
        loop {
            collect(&mut seen, &replies);
            if batch.iter().all(|id| seen.contains_key(id)) {
                break;
            }
            assert!(
                Instant::now() < drain_deadline,
                "probe replies never drained"
            );
        }
        let mut backoff_ms = 0u64;
        for id in batch {
            if let Err(ServiceError::Unavailable {
                reason: UnavailableReason::Shed,
                retry_after_ms,
                ..
            }) = seen[&id].result()
            {
                backoff_ms = backoff_ms.max(*retry_after_ms);
                // Retire the shed attempt; only the successful retry takes
                // part in the equality comparison.
                let retry = probe_ids.remove(&id).expect("own probe id");
                outstanding.push(retry);
            }
        }
        if !outstanding.is_empty() {
            std::thread::sleep(Duration::from_millis(backoff_ms.max(1)));
        }
    }
    let health_id = next_id;
    runtime.submit(RequestEnvelope::new(health_id, Request::Health));
    next_id += 1;
    let report = runtime.shutdown();
    for reply in replies {
        assert!(
            seen.insert(reply.request_id, reply).is_none(),
            "duplicate reply for a correlation id"
        );
    }
    assert_eq!(seen.len() as u64, next_id - 1, "a reply per request");
    assert!(
        report.is_clean(),
        "shutdown after healing must be clean: {report:?}"
    );

    let shards_health = match &seen[&health_id].outcome {
        ReplyOutcome::Ok(Response::Health { shards }) => shards.clone(),
        other => panic!("health probe failed: {other:?}"),
    };
    let per_shard: Vec<ShardReport> = shards_health
        .iter()
        .map(|h| ShardReport {
            shard: h.shard,
            restarts: h.restarts,
            panics_isolated: h.panics_isolated,
            recovery_us: h.recovery_us,
        })
        .collect();
    let restarts_total: u64 = per_shard.iter().map(|s| s.restarts).sum();
    let min_restarts = per_shard.iter().map(|s| s.restarts).min().unwrap_or(0);
    let recovery_us_total: u64 = per_shard.iter().map(|s| s.recovery_us).sum();

    // Lost/shed tallies cover the scripted traffic only — the sacrificial
    // settling probes are harness overhead, not workload.
    let requests_lost = submitted
        .keys()
        .filter(|id| {
            matches!(
                seen[id].result(),
                Err(ServiceError::Unavailable {
                    reason: UnavailableReason::RequestLost,
                    ..
                })
            )
        })
        .count();
    // Dispatch-shed requests also get a typed `Unavailable { Shed }` reply,
    // so the reply count is the full tally; the dispatch count cross-checks
    // that no shed happened reply-lessly.
    let requests_shed = submitted
        .keys()
        .filter(|id| {
            matches!(
                seen[id].result(),
                Err(ServiceError::Unavailable {
                    reason: UnavailableReason::Shed,
                    ..
                })
            )
        })
        .count();
    assert!(
        requests_shed >= shed_dispatch,
        "shed replies cover dispatch sheds"
    );
    let acknowledged = submitted
        .keys()
        .filter(|id| seen[id].result().is_ok())
        .count();

    // Serial ground truth: per tenant, replay only the Ok-replied mutating
    // requests in correlation-id order on a fresh single-threaded service,
    // then compare the serialized probe responses bit-for-bit.
    let mut state_identical = true;
    let mut chaos_posteriors: Vec<(String, Reply)> = Vec::new();
    for (tenant_index, tenant) in workload.tenants.iter().enumerate() {
        let mut service = ValidationService::new();
        let mut ids: Vec<u64> = submitted
            .iter()
            .filter(|(_, (t, _))| *t == tenant_index)
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let (_, request) = &submitted[&id];
            if !request.is_mutating() || seen[&id].result().is_err() {
                continue;
            }
            let replay = service.reply(&RequestEnvelope::latest(request.clone()));
            assert!(
                replay.result().is_ok(),
                "acknowledged request {id} must replay cleanly: {:?}",
                replay.result()
            );
        }
        let mut probe_list: Vec<u64> = probe_ids
            .iter()
            .filter(|(_, (t, _))| *t == tenant_index)
            .map(|(id, _)| *id)
            .collect();
        probe_list.sort_unstable();
        for id in probe_list {
            let (_, request) = &probe_ids[&id];
            let serial = service.reply(&RequestEnvelope::latest(request.clone()));
            let chaos_json = serde_json::to_string(&seen[&id].outcome).unwrap();
            let serial_json = serde_json::to_string(&serial.outcome).unwrap();
            if chaos_json != serial_json {
                eprintln!(
                    "DIVERGED task {}: {request:?}\n  chaos : {chaos_json}\n  serial: {serial_json}",
                    tenant.task
                );
                state_identical = false;
            }
            if matches!(request, Request::QueryPosterior { .. }) {
                chaos_posteriors.push((tenant.task.clone(), seen[&id].clone()));
            }
        }
    }

    // The unfailed baseline: the FULL script (nothing lost or shed) run
    // serially — its decision accuracy minus the chaos run's is the price
    // of the sustained fault load.
    let mut unfailed_posteriors: Vec<(String, Reply)> = Vec::new();
    for tenant in &workload.tenants {
        let mut service = ValidationService::new();
        let script = tenant_requests(
            tenant,
            workload
                .tenants
                .iter()
                .position(|t| t.task == tenant.task)
                .unwrap(),
        );
        for request in script {
            let _ = service.reply(&RequestEnvelope::latest(request));
        }
        for request in probe_requests(tenant) {
            let reply = service.reply(&RequestEnvelope::latest(request));
            unfailed_posteriors.push((tenant.task.clone(), reply));
        }
    }
    let accuracy_chaos = accuracy(&chaos_posteriors, &truth);
    let accuracy_unfailed = accuracy(&unfailed_posteriors, &truth);

    let report = ChaosReport {
        quick,
        seed: SEED,
        shards: SHARDS,
        tenants: workload.tenants.len(),
        total_requests: submitted.len(),
        acknowledged,
        requests_lost,
        requests_shed,
        faults_injected,
        restarts_total,
        min_restarts_per_shard: min_restarts,
        recovery_us_total,
        mean_recovery_us_per_restart: if restarts_total == 0 {
            0.0
        } else {
            recovery_us_total as f64 / restarts_total as f64
        },
        per_shard,
        state_identical,
        accuracy_chaos,
        accuracy_unfailed,
        accuracy_delta: accuracy_unfailed - accuracy_chaos,
        ingest_wall_s,
        drain_wall_s,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("report written");
    println!("{json}");

    if check {
        if !report.state_identical {
            eprintln!("CHECK FAILED: recovered state diverged from the serial replay");
            std::process::exit(1);
        }
        if report.min_restarts_per_shard < 1 {
            eprintln!("CHECK FAILED: a shard was never restarted — the chaos run proved nothing");
            std::process::exit(1);
        }
        println!(
            "chaos check passed: {} restarts across {} shards, state identical",
            report.restarts_total, report.shards
        );
    }
}
