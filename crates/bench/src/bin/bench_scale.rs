//! Million-scale corpus benchmark: drives the storage and aggregation
//! engine at the corpus size the paper's crowdsourcing settings imply
//! (10^6 objects, 10^5 workers) and records the result as
//! `BENCH_scale.json`, so "the engine holds up at a million objects" is a
//! tracked number rather than a claim.
//!
//! Four measurements:
//!
//! * **Ingest** — streaming `record_arrival` throughput (votes/sec, with a
//!   steady-state window over the second half of the stream) and the
//!   resident bytes per vote from [`AnswerMatrix::memory_footprint`], for
//!   the paged-only arenas vs the CSR-mirrored matrix (the CSR arm pays
//!   `sync_compact_views` at every batch boundary — the price of flat rows).
//! * **E-step** — ns per vote of one expectation step over the full corpus,
//!   in a 2×2 grid: paged chains vs compact CSR rows, serial vs parallel
//!   (`set_em_threads(0)` = auto; on a one-core runner the parallel cell
//!   degenerates to serial, which is why the `--check` gate only asks for
//!   ≥ 0.9x there).
//! * **Snapshot stall** — p99 wall time of a full [`ValidationSession`]
//!   snapshot (O(corpus) clone) vs a delta snapshot (O(events) since the
//!   last full-snapshot anchor), each sampled right after a small re-vote
//!   batch. Delta samples deliberately let the event log grow between full
//!   anchors, so the p99 covers the *largest* delta in the cadence, not
//!   just a one-event log.
//! * **Session memory** — [`ValidationSession::memory_bytes`] of the fully
//!   grown session, the per-shard gauge `ShardStats.memory_bytes` reports.
//!
//! Usage: `bench_scale [--quick] [--check] [--out <path>]`
//!
//! `--quick` shrinks the corpus for CI smoke runs (still above both
//! parallel gates, so the blocked kernels genuinely engage); `--check`
//! exits non-zero when the CSR E-step speedup drops below 1.3x, the
//! parallel arm falls below 0.9x serial, or a delta snapshot stalls as
//! long as a full one (the CI `scale-smoke` gate).

use crowdval_aggregation::em::expectation_step;
use crowdval_aggregation::{em_threads, set_em_threads, EmConfig, IncrementalEm};
use crowdval_core::{ProcessConfig, RandomSelection, ValidationSessionBuilder};
use crowdval_model::{
    AnswerSet, ConfusionMatrix, ExpertValidation, LabelId, ObjectId, Vote, WorkerId,
};
use serde::Serialize;
use std::time::Instant;

/// Deterministic xorshift stream, the same generator the parallel-identity
/// test uses — no RNG crate in the hot loop, fully reproducible.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Synthesizes the vote stream: `votes_per_object` votes per object,
/// workers drawn uniformly, ~70 % agreement with a rotating ground truth —
/// enough signal that EM converges instead of thrashing.
///
/// The stream is then shuffled into **interleaved arrival order**. This is
/// what a live platform sees (workers answer whatever task is open, not one
/// object at a time), and it is load-bearing for the paged-vs-CSR
/// comparison: under object-major arrival every row's chunks happen to be
/// allocated contiguously, handing the paged chains an accidentally
/// sequential layout no production stream provides. Interleaved arrival
/// scatters each row's chunks across the arena — the access pattern the
/// compact views exist to flatten.
fn synthesize(n: usize, k: usize, m: usize, votes_per_object: usize) -> Vec<Vote> {
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    let mut votes = Vec::with_capacity(n * votes_per_object);
    for o in 0..n {
        let truth = o % m;
        for _ in 0..votes_per_object {
            let w = (rng.next() as usize) % k;
            let label = if rng.next() % 10 < 7 {
                truth
            } else {
                (rng.next() as usize) % m
            };
            votes.push(Vote {
                object: ObjectId(o),
                worker: WorkerId(w),
                label: LabelId(label),
            });
        }
    }
    for i in (1..votes.len()).rev() {
        let j = (rng.next() as usize) % (i + 1);
        votes.swap(i, j);
    }
    votes
}

#[derive(Debug, Serialize)]
struct IngestArm {
    votes_per_sec: f64,
    /// Throughput over the second half of the stream, where the matrix is
    /// large and every batch grows warm structures.
    votes_per_sec_steady: f64,
    wall_seconds: f64,
    /// Resident heap bytes per stored vote (allocator capacities).
    bytes_per_vote: f64,
    paged_bytes: usize,
    compact_bytes: usize,
    mask_bytes: usize,
}

#[derive(Debug, Serialize)]
struct EStepCell {
    ns_per_vote: f64,
    votes_per_sec: f64,
    reps: usize,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    scenario: String,
    num_objects: usize,
    num_workers: usize,
    num_labels: usize,
    total_votes: usize,
    /// Effective thread count of the parallel E-step cells (1 on a
    /// one-core runner — the parallel arm then measures gate overhead).
    em_threads_parallel: usize,
    ingest_paged: IngestArm,
    ingest_csr: IngestArm,
    e_step_paged_serial: EStepCell,
    e_step_paged_parallel: EStepCell,
    e_step_csr_serial: EStepCell,
    e_step_csr_parallel: EStepCell,
    /// Headline number: CSR vs paged E-step throughput, single-threaded.
    csr_speedup_serial: f64,
    csr_speedup_parallel: f64,
    /// Parallel vs serial on the CSR path (≈ 1.0 on one core).
    parallel_speedup_csr: f64,
    /// One bulk ingest of the whole stream into a validation session
    /// (bounded-iteration cold EM), wall seconds and iterations spent.
    session_build_seconds: f64,
    session_build_em_iterations: usize,
    /// `ValidationSession::memory_bytes` of the grown session — the gauge
    /// `ShardStats.memory_bytes` surfaces per shard.
    session_memory_bytes: usize,
    snapshot_full_p99_ms: f64,
    snapshot_full_max_ms: f64,
    snapshot_delta_p99_ms: f64,
    snapshot_delta_max_ms: f64,
    /// Headline number: full-snapshot p99 stall over delta-snapshot p99.
    snapshot_stall_ratio_p99: f64,
    /// Events in the last (largest) delta of the sampling cadence.
    last_delta_events: usize,
    full_snapshot_samples: usize,
    delta_snapshot_samples: usize,
}

/// Streams `votes` into a fresh answer set in `batches` batches with a
/// capacity hint per batch, returning the timing arm. `compact` toggles the
/// CSR mirrors; the CSR arm re-syncs them at every batch boundary.
fn ingest_arm(votes: &[Vote], num_labels: usize, batches: usize, compact: bool) -> IngestArm {
    let mut answers = AnswerSet::new(0, 0, num_labels);
    answers.set_compact_enabled(compact);
    let batch_size = votes.len().div_ceil(batches);
    let mut walls = Vec::with_capacity(batches);
    let mut counts = Vec::with_capacity(batches);
    for batch in votes.chunks(batch_size) {
        let start = Instant::now();
        answers.reserve_answers(batch.len());
        for &vote in batch {
            answers.record_arrival(vote).expect("labels are in range");
        }
        if compact {
            answers.sync_compact_views();
        }
        walls.push(start.elapsed().as_secs_f64());
        counts.push(batch.len());
    }
    let wall: f64 = walls.iter().sum();
    let steady_from = walls.len() / 2;
    let steady_wall: f64 = walls[steady_from..].iter().sum();
    let steady_votes: usize = counts[steady_from..].iter().sum();
    let footprint = answers.matrix().memory_footprint();
    IngestArm {
        votes_per_sec: votes.len() as f64 / wall.max(1e-12),
        votes_per_sec_steady: steady_votes as f64 / steady_wall.max(1e-12),
        wall_seconds: wall,
        bytes_per_vote: footprint.total_bytes() as f64 / votes.len().max(1) as f64,
        paged_bytes: footprint.paged_bytes,
        compact_bytes: footprint.compact_bytes,
        mask_bytes: footprint.mask_bytes,
    }
}

/// Times `reps` expectation steps over the corpus (one unmeasured warm-up
/// call first, so thread-local workspace buffers are allocated) and returns
/// ns per vote of the *fastest* rep — the min is the standard noise-robust
/// estimator on a shared runner, where any slowdown is interference, not
/// the kernel.
fn e_step_cell(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    confusions: &[ConfusionMatrix],
    priors: &[f64],
    reps: usize,
) -> EStepCell {
    let votes = answers.matrix().num_answers();
    let _ = expectation_step(answers, expert, confusions, priors);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let _ = expectation_step(answers, expert, confusions, priors);
        best = best.min(start.elapsed().as_secs_f64());
    }
    let ns_per_vote = best * 1e9 / votes.max(1) as f64;
    EStepCell {
        ns_per_vote,
        votes_per_sec: votes as f64 / best.max(1e-12),
        reps,
    }
}

/// p99 of a sample set in milliseconds (nearest-rank; the max for fewer
/// than 100 samples — stall gates should be pessimistic, not smoothed).
fn p99_ms(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("stall times are finite"));
    let rank = ((sorted.len() as f64) * 0.99).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1] * 1e3
}

fn max_ms(samples: &[f64]) -> f64 {
    samples.iter().fold(0.0f64, |a, &b| a.max(b)) * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_scale.json".to_string());

    // Quick tier sits just above both parallel gates (PAR_MIN_OBJECTS /
    // PAR_MIN_WORKERS), so even the CI smoke run exercises the blocked
    // kernels rather than the serial fallback.
    // The quick corpus must already be cache-hostile (the CSR win is a
    // locality win — a corpus that fits in L2 shows none of it) and large
    // enough that per-rep timing noise stays under the gate margins.
    let (n, k, batches, reps, full_samples, delta_samples) = if quick {
        (65_536, 8_192, 16, 10, 8, 32)
    } else {
        (1_000_000, 100_000, 64, 7, 12, 48)
    };
    let m = 3usize;
    let votes_per_object = 3usize;

    eprintln!("synthesizing {n} objects x {k} workers, {votes_per_object} votes/object ...");
    let votes = synthesize(n, k, m, votes_per_object);
    let total_votes = votes.len();

    // -------------------------------------------------------------------
    // Ingest: paged-only vs CSR-mirrored streaming throughput.
    // -------------------------------------------------------------------
    eprintln!("ingest arm: paged ...");
    let ingest_paged = ingest_arm(&votes, m, batches, false);
    eprintln!("ingest arm: csr ...");
    let ingest_csr = ingest_arm(&votes, m, batches, true);

    // -------------------------------------------------------------------
    // E-step grid over one shared corpus. CSR cells run first (the corpus
    // is built with live mirrors); the paged cells then disable the
    // mirrors so the kernels walk the chains.
    // -------------------------------------------------------------------
    let mut corpus = AnswerSet::new(0, 0, m);
    corpus.reserve_answers(total_votes);
    for &vote in &votes {
        corpus.record_arrival(vote).expect("labels are in range");
    }
    corpus.sync_compact_views();
    let expert = ExpertValidation::empty(n);
    let confusions = vec![ConfusionMatrix::diagonal(m, 0.7); k];
    let priors = vec![1.0 / m as f64; m];

    eprintln!("e-step grid: csr ...");
    set_em_threads(1);
    let e_step_csr_serial = e_step_cell(&corpus, &expert, &confusions, &priors, reps);
    set_em_threads(0);
    let em_threads_parallel = em_threads();
    let e_step_csr_parallel = e_step_cell(&corpus, &expert, &confusions, &priors, reps);

    eprintln!("e-step grid: paged ...");
    corpus.set_compact_enabled(false);
    set_em_threads(1);
    let e_step_paged_serial = e_step_cell(&corpus, &expert, &confusions, &priors, reps);
    set_em_threads(0);
    let e_step_paged_parallel = e_step_cell(&corpus, &expert, &confusions, &priors, reps);
    set_em_threads(1);
    drop(corpus);

    // -------------------------------------------------------------------
    // Snapshot stall: a grown session, small re-vote batches, full vs
    // delta snapshot wall times. Cold EM is iteration-bounded: the arm
    // measures snapshot stalls, not convergence patience.
    // -------------------------------------------------------------------
    eprintln!("session build ({total_votes} votes, bounded cold EM) ...");
    let mut session = ValidationSessionBuilder::empty(m)
        .aggregator(Box::new(IncrementalEm::new(EmConfig {
            smoothing_alpha: 0.01,
            max_iterations: 20,
            tolerance: 1e-3,
        })))
        .strategy(Box::new(RandomSelection::new(7)))
        .config(ProcessConfig {
            handle_faulty_workers: false,
            guidance_cache: false,
            ..ProcessConfig::default()
        })
        .build();
    let build_start = Instant::now();
    let update = session.ingest(&votes).expect("stream ingests");
    let session_build_seconds = build_start.elapsed().as_secs_f64();
    let session_build_em_iterations = update.em_iterations;
    drop(votes);
    session.enable_delta_log();

    let mut rng = XorShift(0x51ed_270b);
    let revote_batch = |rng: &mut XorShift| -> Vec<Vote> {
        (0..256)
            .map(|_| Vote {
                object: ObjectId((rng.next() as usize) % n),
                worker: WorkerId((rng.next() as usize) % k),
                label: LabelId((rng.next() as usize) % m),
            })
            .collect()
    };

    eprintln!("snapshot stalls: full x {full_samples} ...");
    let mut full_walls = Vec::with_capacity(full_samples);
    for _ in 0..full_samples {
        let batch = revote_batch(&mut rng);
        session.ingest(&batch).expect("re-votes ingest");
        let start = Instant::now();
        let snapshot = session.snapshot().expect("session snapshots");
        full_walls.push(start.elapsed().as_secs_f64());
        drop(snapshot);
    }

    eprintln!("snapshot stalls: delta x {delta_samples} ...");
    let mut delta_walls = Vec::with_capacity(delta_samples);
    let mut last_delta_events = 0usize;
    for _ in 0..delta_samples {
        let batch = revote_batch(&mut rng);
        session.ingest(&batch).expect("re-votes ingest");
        let start = Instant::now();
        let delta = session.delta_snapshot().expect("delta log is enabled");
        delta_walls.push(start.elapsed().as_secs_f64());
        last_delta_events = delta.events.len();
    }

    let snapshot_full_p99_ms = p99_ms(&full_walls);
    let snapshot_delta_p99_ms = p99_ms(&delta_walls);
    let report = BenchReport {
        scenario: format!(
            "synthetic million-scale stream, xorshift seed 0x9e3779b97f4a7c15{}",
            if quick { " (quick)" } else { "" }
        ),
        num_objects: n,
        num_workers: k,
        num_labels: m,
        total_votes,
        em_threads_parallel,
        csr_speedup_serial: e_step_paged_serial.ns_per_vote
            / e_step_csr_serial.ns_per_vote.max(1e-12),
        csr_speedup_parallel: e_step_paged_parallel.ns_per_vote
            / e_step_csr_parallel.ns_per_vote.max(1e-12),
        parallel_speedup_csr: e_step_csr_serial.ns_per_vote
            / e_step_csr_parallel.ns_per_vote.max(1e-12),
        ingest_paged,
        ingest_csr,
        e_step_paged_serial,
        e_step_paged_parallel,
        e_step_csr_serial,
        e_step_csr_parallel,
        session_build_seconds,
        session_build_em_iterations,
        session_memory_bytes: session.memory_bytes(),
        snapshot_full_p99_ms,
        snapshot_full_max_ms: max_ms(&full_walls),
        snapshot_delta_p99_ms,
        snapshot_delta_max_ms: max_ms(&delta_walls),
        snapshot_stall_ratio_p99: snapshot_full_p99_ms / snapshot_delta_p99_ms.max(1e-12),
        last_delta_events,
        full_snapshot_samples: full_samples,
        delta_snapshot_samples: delta_samples,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write BENCH_scale.json");
    println!("{json}");
    println!(
        "\ne-step csr {:.1} ns/vote vs paged {:.1} ns/vote ({:.2}x) | parallel {:.2}x ({} threads) | snapshot p99 full {:.1} ms vs delta {:.3} ms ({:.0}x) -> {}",
        report.e_step_csr_serial.ns_per_vote,
        report.e_step_paged_serial.ns_per_vote,
        report.csr_speedup_serial,
        report.parallel_speedup_csr,
        report.em_threads_parallel,
        report.snapshot_full_p99_ms,
        report.snapshot_delta_p99_ms,
        report.snapshot_stall_ratio_p99,
        out_path
    );

    if check {
        // Ratio gates only — two arms of the same run share the runner's
        // noise, so ratios are far more stable than absolute wall times.
        let mut failed = false;
        if report.csr_speedup_serial < 1.3 {
            eprintln!(
                "FAIL: CSR e-step speedup below the 1.3x floor ({:.2}x)",
                report.csr_speedup_serial
            );
            failed = true;
        }
        if report.parallel_speedup_csr < 0.9 {
            eprintln!(
                "FAIL: parallel e-step slower than 0.9x serial ({:.2}x, {} threads)",
                report.parallel_speedup_csr, report.em_threads_parallel
            );
            failed = true;
        }
        if report.snapshot_delta_p99_ms >= report.snapshot_full_p99_ms {
            eprintln!(
                "FAIL: delta snapshot p99 stall not below full snapshot p99 ({:.3} ms >= {:.3} ms)",
                report.snapshot_delta_p99_ms, report.snapshot_full_p99_ms
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
