//! Streaming-ingestion benchmark: measures how fast a validation session
//! absorbs an arriving vote stream compared to rebuilding the aggregation
//! from scratch on every batch, and records the result as
//! `BENCH_ingest.json` so the view-maintenance win is a tracked number
//! rather than a claim.
//!
//! Paths compared (single-threaded on purpose — the win must be algorithmic,
//! not core-count):
//!
//! * `incremental` — [`ValidationSession::ingest`]: the matrix grows in
//!   place, the delta path's dirty set is seeded from the touched objects,
//!   frontier-scoped EM rounds plus the Aitken-polished full-map phase
//!   certify the batch path's convergence criterion, and only the moved
//!   entropy-shortlist entries are invalidated.
//! * `rebuild` — the pre-session shape of the pipeline: append the batch to
//!   an answer set and re-run the full cold aggregation
//!   (majority-vote-initialized EM) over everything seen so far.
//!
//! Also reported: the guidance latency (one `select_next` over the grown
//! candidate set) at steady state, since the point of ingestion being cheap
//! is that the expert never waits.
//!
//! Usage: `bench_ingest [--quick] [--check] [--out <path>]`
//!
//! `--quick` shrinks the stream for CI smoke runs; `--check` exits non-zero
//! if incremental ingestion is slower than rebuild-from-scratch — judged by
//! the deterministic EM-iteration totals plus a noise-tolerant wall-clock
//! comparison (the CI `ingest-smoke` gate).

use crowdval_aggregation::{Aggregator, IncrementalEm};
use crowdval_core::{ProcessConfig, ScoringEngine, UncertaintyDriven, ValidationSessionBuilder};
use crowdval_model::{AnswerSet, ExpertValidation, ObjectId};
use crowdval_sim::{StreamingConfig, SyntheticConfig};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct PathReport {
    /// Votes absorbed per second of wall time, across all batches.
    votes_per_sec: f64,
    /// Votes per second over the steady-state window (second half of the
    /// stream, where the corpus is large and warm).
    votes_per_sec_steady: f64,
    /// Total wall time across all batches, in seconds.
    wall_seconds: f64,
    /// Total EM iterations spent integrating the stream.
    em_iterations: usize,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    scenario: String,
    total_votes: usize,
    initial_votes: usize,
    batches: usize,
    batch_size: usize,
    final_objects: usize,
    final_workers: usize,
    incremental: PathReport,
    rebuild: PathReport,
    /// Headline number: incremental vs rebuild ingest throughput at steady
    /// state.
    speedup_steady_state: f64,
    /// Incremental vs rebuild across the whole stream.
    speedup_overall: f64,
    /// One guided selection (entropy shortlist + information-gain fan-out)
    /// on the fully grown session, in milliseconds — the latency the expert
    /// sees right after an arrival batch.
    guidance_latency_ms: f64,
    /// Entropy-shortlist entries invalidated by the last arrival batch
    /// (out of `final_objects`) — how local the update stayed.
    last_batch_invalidated_entries: usize,
}

fn path_report(batch_walls: &[f64], batch_votes: &[usize], em_iterations: usize) -> PathReport {
    let wall: f64 = batch_walls.iter().sum();
    let votes: usize = batch_votes.iter().sum();
    let steady_from = batch_walls.len() / 2;
    let steady_wall: f64 = batch_walls[steady_from..].iter().sum();
    let steady_votes: usize = batch_votes[steady_from..].iter().sum();
    PathReport {
        votes_per_sec: votes as f64 / wall.max(1e-12),
        votes_per_sec_steady: steady_votes as f64 / steady_wall.max(1e-12),
        wall_seconds: wall,
        em_iterations,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_ingest.json".to_string());

    let (num_objects, num_workers, batch_size) = if quick { (60, 20, 60) } else { (150, 32, 100) };
    let stream_cfg = StreamingConfig {
        base: SyntheticConfig {
            num_objects,
            num_workers,
            ..SyntheticConfig::paper_default(90_000)
        },
        // 0.3 (not 0.25) so the session's doubling re-anchor fires at 60 %
        // of the stream — before the steady-state window — instead of on the
        // very last batch (2^k x 0.25 hits 1.0 exactly).
        initial_fraction: 0.3,
        batch_size,
        late_object_fraction: 0.3,
        late_worker_fraction: 0.25,
    };
    let scenario = stream_cfg.generate();
    let truth = scenario.truth.clone();

    // Two early validations anchor the label orientation on both paths (the
    // delta path engages its scoped rounds from the second anchor on, so
    // the anchors must be two *distinct* objects).
    let mut anchor_objects: Vec<ObjectId> = Vec::new();
    for vote in &scenario.initial {
        if !anchor_objects.contains(&vote.object) {
            anchor_objects.push(vote.object);
        }
        if anchor_objects.len() == 2 {
            break;
        }
    }
    assert_eq!(anchor_objects.len(), 2, "stream too small to anchor");

    // ---------------------------------------------------------------------
    // Incremental path: one session, ingest batch by batch.
    // ---------------------------------------------------------------------
    let mut session = ValidationSessionBuilder::empty(scenario.num_labels)
        .strategy(Box::new(UncertaintyDriven::with_engine(
            ScoringEngine::with_shortlist(16),
        )))
        .config(ProcessConfig::default())
        .build();
    session
        .ingest(&scenario.initial)
        .expect("initial snapshot ingests");
    for &o in &anchor_objects {
        session
            .integrate(o, truth.label(o))
            .expect("truth labels are in range");
    }
    let mut inc_walls = Vec::new();
    let mut batch_votes = Vec::new();
    let mut inc_iterations = 0usize;
    let mut last_invalidated = 0usize;
    for batch in &scenario.batches {
        let start = Instant::now();
        let update = session.ingest(batch).expect("stream batches ingest");
        inc_walls.push(start.elapsed().as_secs_f64());
        batch_votes.push(batch.len());
        inc_iterations += update.em_iterations;
        last_invalidated = update.invalidated_entries;
    }
    let guidance_start = Instant::now();
    let _selected = session.select_next();
    let guidance_latency_ms = guidance_start.elapsed().as_secs_f64() * 1e3;
    let incremental = path_report(&inc_walls, &batch_votes, inc_iterations);

    // ---------------------------------------------------------------------
    // Rebuild path: append the batch, re-aggregate everything from scratch.
    // ---------------------------------------------------------------------
    let aggregator = IncrementalEm::default();
    let mut answers = AnswerSet::new(0, 0, scenario.num_labels);
    for &vote in &scenario.initial {
        answers
            .record_arrival(vote)
            .expect("initial votes are valid");
    }
    let mut expert = ExpertValidation::empty(answers.num_objects());
    for &o in &anchor_objects {
        expert.set(o, truth.label(o));
    }
    let mut reb_walls = Vec::new();
    let mut reb_iterations = 0usize;
    for batch in &scenario.batches {
        let start = Instant::now();
        for &vote in batch {
            answers
                .record_arrival(vote)
                .expect("stream votes are valid");
        }
        expert.ensure_domain(answers.num_objects());
        let state = aggregator.conclude(&answers, &expert, None);
        reb_walls.push(start.elapsed().as_secs_f64());
        reb_iterations += state.em_iterations();
    }
    let rebuild = path_report(&reb_walls, &batch_votes, reb_iterations);

    let report = BenchReport {
        scenario: format!(
            "paper-default stream, seed 90000, single-threaded{}",
            if quick { " (quick)" } else { "" }
        ),
        total_votes: scenario.total_votes(),
        initial_votes: scenario.initial.len(),
        batches: scenario.batches.len(),
        batch_size,
        final_objects: session.answers().num_objects(),
        final_workers: session.answers().num_workers(),
        speedup_steady_state: incremental.votes_per_sec_steady
            / rebuild.votes_per_sec_steady.max(1e-12),
        speedup_overall: incremental.votes_per_sec / rebuild.votes_per_sec.max(1e-12),
        guidance_latency_ms,
        last_batch_invalidated_entries: last_invalidated,
        incremental,
        rebuild,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write BENCH_ingest.json");
    println!("{json}");
    println!(
        "\nincremental {:.0}/s | rebuild {:.0}/s  (steady-state {:.2}x, overall {:.2}x) | guidance {:.1} ms -> {}",
        report.incremental.votes_per_sec_steady,
        report.rebuild.votes_per_sec_steady,
        report.speedup_steady_state,
        report.speedup_overall,
        report.guidance_latency_ms,
        out_path
    );

    if check {
        // Two-part gate: the EM-iteration comparison is deterministic (no
        // wall-clock noise on a shared CI runner), the throughput comparison
        // keeps a 20 % noise margin so only a real regression trips it.
        let mut failed = false;
        if report.incremental.em_iterations > report.rebuild.em_iterations {
            eprintln!(
                "FAIL: incremental ingestion spends more EM iterations than rebuild ({} > {})",
                report.incremental.em_iterations, report.rebuild.em_iterations
            );
            failed = true;
        }
        if report.speedup_steady_state < 0.8 {
            eprintln!(
                "FAIL: incremental ingestion is slower than rebuild beyond the noise margin ({:.2}x < 0.8x)",
                report.speedup_steady_state
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
